"""Traffic matrices, traces and workload generators."""

from .geant_trace import (
    GEANT_INTERVAL_S,
    GEANT_TRACE_DAYS,
    diurnal_factor,
    generate_geant_trace,
    trace_time_labels,
    weekly_factor,
)
from .google_trace import (
    GOOGLE_INTERVAL_S,
    GOOGLE_TRACE_DAYS,
    google_trace,
    google_volume_series,
    relative_changes,
)
from .gravity import gravity_fractions, gravity_matrix, node_weights
from .matrix import (
    Pair,
    TrafficMatrix,
    all_pairs,
    select_pairs_among_subset,
    select_random_pairs,
)
from .aggregate import (
    aggregate_matrix,
    aggregate_trace,
    aggregation_map,
    nearest_ancestor,
)
from .replay import TraceInterval, TrafficTrace
from .scaling import (
    calibrate_max_load,
    calibration_cache_stats,
    clear_calibration_cache,
    utilisation_matrix,
    utilisation_sweep,
)
from .sinewave import fattree_sine_pairs, sine_fraction, sine_wave_trace

__all__ = [
    "GEANT_INTERVAL_S",
    "GEANT_TRACE_DAYS",
    "diurnal_factor",
    "generate_geant_trace",
    "trace_time_labels",
    "weekly_factor",
    "GOOGLE_INTERVAL_S",
    "GOOGLE_TRACE_DAYS",
    "google_trace",
    "google_volume_series",
    "relative_changes",
    "gravity_fractions",
    "gravity_matrix",
    "node_weights",
    "Pair",
    "TrafficMatrix",
    "all_pairs",
    "select_pairs_among_subset",
    "select_random_pairs",
    "TraceInterval",
    "TrafficTrace",
    "aggregate_matrix",
    "aggregate_trace",
    "aggregation_map",
    "nearest_ancestor",
    "calibrate_max_load",
    "calibration_cache_stats",
    "clear_calibration_cache",
    "utilisation_matrix",
    "utilisation_sweep",
    "fattree_sine_pairs",
    "sine_fraction",
    "sine_wave_trace",
]
