"""Load calibration: finding the 100 % utilisation point of a topology.

Section 5.1: "we first compute the maximum traffic load as the traffic volume
that the optimal routing can accommodate if the gravity-determined
proportions are kept.  We do this by incrementally increasing the traffic
demand by 10 % up to a point where CPLEX cannot find a routing that can
accommodate the traffic.  Then, we mark the largest feasible traffic demand
as the 100 % load."

The feasibility oracle here is the splittable multi-commodity-flow LP
(:func:`repro.routing.mcf.is_demand_feasible`), which is what "a routing that
can accommodate the traffic" means once the on/off energy variables are
dropped.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Dict, List, Optional

from ..exceptions import TrafficError
from ..obs import metrics, trace
from ..topology.base import Topology
from .matrix import TrafficMatrix

FeasibilityOracle = Callable[[Topology, TrafficMatrix], bool]


def _default_oracle(topology: Topology, demands: TrafficMatrix) -> bool:
    from ..routing.mcf import is_demand_feasible

    return is_demand_feasible(topology, demands)


#: Process-wide memo of calibration results keyed by the canonical hash of
#: (topology content, base matrix, growth parameters).  A campaign grid
#: typically repeats the same dozen calibrations across every group and
#: worker chunk; each MCF-backed calibration is a pure function of the
#: hashed inputs, so reusing the scale factor is bit-identical to
#: recomputing it.  Only default-oracle calls are memoised — a custom
#: oracle is not part of the key and must never be served a cached value.
_CALIBRATION_CACHE: Dict[str, float] = {}

#: Hit/miss counters live on the process-wide metrics registry; the
#: :func:`calibration_cache_stats` / :func:`clear_calibration_cache`
#: functions below stay as thin compatibility wrappers over them.
_CALIBRATION_HITS = metrics.counter(
    "repro_calibration_cache_hits_total", "Calibration memo hits"
)
_CALIBRATION_MISSES = metrics.counter(
    "repro_calibration_cache_misses_total", "Calibration memo misses"
)


def _calibration_key(
    topology: Topology,
    base_matrix: TrafficMatrix,
    growth_step: float,
    initial_scale: float,
    max_iterations: int,
) -> str:
    """Canonical content hash of every input the calibration depends on.

    Float inputs are serialised with ``repr`` (shortest exact round-trip),
    so two topologies/matrices hash equal exactly when the MCF oracle would
    see bit-identical numbers.
    """
    payload = {
        "nodes": sorted(
            (node, n.kind, n.level, n.always_powered)
            for node, n in ((name, topology.node(name)) for name in topology.nodes())
        ),
        "links": sorted(
            (
                link.u,
                link.v,
                repr(link.capacity_bps),
                repr(link.reverse_capacity_bps),
            )
            for link in topology.links()
        ),
        "matrix": sorted(
            (origin, destination, repr(demand))
            for (origin, destination), demand in base_matrix.items()
        ),
        "growth_step": repr(float(growth_step)),
        "initial_scale": repr(float(initial_scale)),
        "max_iterations": int(max_iterations),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def clear_calibration_cache() -> None:
    """Drop all memoised calibrations (tests and long-lived services)."""
    _CALIBRATION_CACHE.clear()
    _CALIBRATION_HITS.reset()
    _CALIBRATION_MISSES.reset()


def calibration_cache_stats() -> Dict[str, int]:
    """Hit/miss counters of the calibration memo (a registry snapshot)."""
    return {
        "hits": int(_CALIBRATION_HITS.value),
        "misses": int(_CALIBRATION_MISSES.value),
    }


def calibrate_max_load(
    topology: Topology,
    base_matrix: TrafficMatrix,
    growth_step: float = 0.10,
    initial_scale: float = 1.0,
    max_iterations: int = 200,
    oracle: Optional[FeasibilityOracle] = None,
) -> float:
    """Find the largest feasible multiple of *base_matrix*.

    The base matrix's proportions are kept fixed; the total volume is grown
    multiplicatively by *growth_step* per iteration until the feasibility
    oracle rejects it, exactly as the paper calibrates the "100 % load".

    Args:
        topology: The network whose capacity bounds the load.
        base_matrix: A matrix encoding the (gravity-determined) proportions.
        growth_step: Fractional increase per iteration (the paper uses 10 %).
        initial_scale: Multiple of the base matrix to start from.
        max_iterations: Safety bound on the number of growth steps.
        oracle: Feasibility test; defaults to the MCF LP.

    Returns:
        The largest feasible scale factor relative to *base_matrix*.

    Raises:
        TrafficError: If even ``initial_scale`` is infeasible or the base
            matrix is empty.
    """
    if len(base_matrix) == 0 or base_matrix.total_bps <= 0:
        raise TrafficError("base matrix carries no traffic; nothing to calibrate")
    if growth_step <= 0:
        raise TrafficError(f"growth step must be positive, got {growth_step}")
    check = oracle or _default_oracle

    key: Optional[str] = None
    if oracle is None:
        key = _calibration_key(
            topology, base_matrix, growth_step, initial_scale, max_iterations
        )
        cached = _CALIBRATION_CACHE.get(key)
        if cached is not None:
            _CALIBRATION_HITS.inc()
            return cached
        _CALIBRATION_MISSES.inc()

    with trace.span("traffic.calibrate", memoised=oracle is None) as calibrate_span:
        scale = float(initial_scale)
        if not check(topology, base_matrix.scaled(scale)):
            raise TrafficError(
                "the initial demand is already infeasible; lower initial_scale"
            )
        growth_iterations = 0
        for _ in range(max_iterations):
            candidate = scale * (1.0 + growth_step)
            if not check(topology, base_matrix.scaled(candidate)):
                break
            scale = candidate
            growth_iterations += 1
        calibrate_span.set(growth_iterations=growth_iterations, scale=scale)
    if key is not None:
        _CALIBRATION_CACHE[key] = scale
    return scale


def utilisation_matrix(
    base_matrix: TrafficMatrix,
    max_scale: float,
    utilisation_percent: float,
) -> TrafficMatrix:
    """The matrix corresponding to ``util-X``: X % of the calibrated maximum."""
    if utilisation_percent < 0:
        raise TrafficError(
            f"utilisation percent must be non-negative, got {utilisation_percent}"
        )
    return base_matrix.scaled(max_scale * utilisation_percent / 100.0).scaled(1.0)


def utilisation_sweep(
    topology: Topology,
    base_matrix: TrafficMatrix,
    levels_percent: List[float],
    growth_step: float = 0.10,
    oracle: Optional[FeasibilityOracle] = None,
) -> Dict[float, TrafficMatrix]:
    """Matrices for a sweep of utilisation levels (e.g. util-10/50/100).

    Returns a mapping ``{level_percent: matrix}`` where the 100 % level is the
    calibrated maximum feasible volume with the base matrix's proportions.
    """
    max_scale = calibrate_max_load(
        topology, base_matrix, growth_step=growth_step, oracle=oracle
    )
    return {
        level: utilisation_matrix(base_matrix, max_scale, level)
        for level in levels_percent
    }
