"""Load calibration: finding the 100 % utilisation point of a topology.

Section 5.1: "we first compute the maximum traffic load as the traffic volume
that the optimal routing can accommodate if the gravity-determined
proportions are kept.  We do this by incrementally increasing the traffic
demand by 10 % up to a point where CPLEX cannot find a routing that can
accommodate the traffic.  Then, we mark the largest feasible traffic demand
as the 100 % load."

The feasibility oracle here is the splittable multi-commodity-flow LP
(:func:`repro.routing.mcf.is_demand_feasible`), which is what "a routing that
can accommodate the traffic" means once the on/off energy variables are
dropped.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..exceptions import TrafficError
from ..topology.base import Topology
from .matrix import TrafficMatrix

FeasibilityOracle = Callable[[Topology, TrafficMatrix], bool]


def _default_oracle(topology: Topology, demands: TrafficMatrix) -> bool:
    from ..routing.mcf import is_demand_feasible

    return is_demand_feasible(topology, demands)


def calibrate_max_load(
    topology: Topology,
    base_matrix: TrafficMatrix,
    growth_step: float = 0.10,
    initial_scale: float = 1.0,
    max_iterations: int = 200,
    oracle: Optional[FeasibilityOracle] = None,
) -> float:
    """Find the largest feasible multiple of *base_matrix*.

    The base matrix's proportions are kept fixed; the total volume is grown
    multiplicatively by *growth_step* per iteration until the feasibility
    oracle rejects it, exactly as the paper calibrates the "100 % load".

    Args:
        topology: The network whose capacity bounds the load.
        base_matrix: A matrix encoding the (gravity-determined) proportions.
        growth_step: Fractional increase per iteration (the paper uses 10 %).
        initial_scale: Multiple of the base matrix to start from.
        max_iterations: Safety bound on the number of growth steps.
        oracle: Feasibility test; defaults to the MCF LP.

    Returns:
        The largest feasible scale factor relative to *base_matrix*.

    Raises:
        TrafficError: If even ``initial_scale`` is infeasible or the base
            matrix is empty.
    """
    if len(base_matrix) == 0 or base_matrix.total_bps <= 0:
        raise TrafficError("base matrix carries no traffic; nothing to calibrate")
    if growth_step <= 0:
        raise TrafficError(f"growth step must be positive, got {growth_step}")
    check = oracle or _default_oracle

    scale = float(initial_scale)
    if not check(topology, base_matrix.scaled(scale)):
        raise TrafficError(
            "the initial demand is already infeasible; lower initial_scale"
        )
    for _ in range(max_iterations):
        candidate = scale * (1.0 + growth_step)
        if not check(topology, base_matrix.scaled(candidate)):
            return scale
        scale = candidate
    return scale


def utilisation_matrix(
    base_matrix: TrafficMatrix,
    max_scale: float,
    utilisation_percent: float,
) -> TrafficMatrix:
    """The matrix corresponding to ``util-X``: X % of the calibrated maximum."""
    if utilisation_percent < 0:
        raise TrafficError(
            f"utilisation percent must be non-negative, got {utilisation_percent}"
        )
    return base_matrix.scaled(max_scale * utilisation_percent / 100.0).scaled(1.0)


def utilisation_sweep(
    topology: Topology,
    base_matrix: TrafficMatrix,
    levels_percent: List[float],
    growth_step: float = 0.10,
    oracle: Optional[FeasibilityOracle] = None,
) -> Dict[float, TrafficMatrix]:
    """Matrices for a sweep of utilisation levels (e.g. util-10/50/100).

    Returns a mapping ``{level_percent: matrix}`` where the 100 % level is the
    calibrated maximum feasible volume with the base matrix's proportions.
    """
    max_scale = calibrate_max_load(
        topology, base_matrix, growth_step=growth_step, oracle=oracle
    )
    return {
        level: utilisation_matrix(base_matrix, max_scale, level)
        for level in levels_percent
    }
