"""Demand aggregation: host-level matrices coarsened to pod/PoP aggregates.

"Millions of users" demand is massively redundant at the matrix level too:
every host under one edge switch (fat-tree) or one metro router (PoP
access) injects its traffic through the same attachment point, so the
scenario layer can carry one aggregate pair per attachment-point pair
instead of one pair per host pair.  This module maps each endpoint to its
nearest ancestor at a named topology level (deterministically — breadth
first by hop distance, ties broken by node name) and merges demands per
aggregate pair in sorted-pair order, so the aggregation is reproducible
bit for bit across runs.

Conservation contract: every original demand lands in exactly one output
entry, and pairs whose endpoints collapse to the same aggregate are kept at
their original granularity (their traffic never reaches the aggregation
level, so coarsening them would silently drop it).  The allocation-level
exact-equivalence contract (aggregate then allocate == allocate then sum)
lives in :mod:`repro.simulator.aggregate`, which this module feeds.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..exceptions import TrafficError
from ..topology.base import Topology
from .matrix import Pair, TrafficMatrix
from .replay import TrafficTrace


def nearest_ancestor(topology: Topology, node: str, level: str) -> str:
    """The closest node at *level*, breadth first, ties broken by name.

    A node already at *level* is its own ancestor.  Distance rings are
    explored one hop at a time; within the first ring containing any
    *level* node the lexicographically smallest name wins, so the mapping
    is deterministic regardless of adjacency iteration order.
    """
    if topology.node(node).level == level:
        return node
    visited = {node}
    frontier: List[str] = [node]
    while frontier:
        next_frontier: List[str] = []
        candidates: List[str] = []
        for current in frontier:
            for neighbor in topology.neighbors(current):
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                next_frontier.append(neighbor)
                if topology.node(neighbor).level == level:
                    candidates.append(neighbor)
        if candidates:
            return min(candidates)
        frontier = next_frontier
    raise TrafficError(
        f"no node at level {level!r} is reachable from {node!r}"
    )


def aggregation_map(
    topology: Topology, nodes: Iterable[str], level: str
) -> Dict[str, str]:
    """``node -> nearest ancestor at level`` for every listed node."""
    return {
        node: nearest_ancestor(topology, node, level) for node in sorted(set(nodes))
    }


def aggregate_matrix(
    topology: Topology, matrix: TrafficMatrix, level: str
) -> TrafficMatrix:
    """Merge a matrix's demands into aggregate-level pairs.

    Demands are accumulated in sorted original-pair order (a deterministic
    float summation order), and intra-aggregate pairs — both endpoints
    mapping to the same ancestor — stay at their original granularity.
    """
    endpoints = {node for pair in matrix.pairs() for node in pair}
    mapping = aggregation_map(topology, endpoints, level)
    merged: Dict[Pair, float] = {}
    for (origin, destination), demand in sorted(matrix.items()):
        key = (mapping[origin], mapping[destination])
        if key[0] == key[1]:
            key = (origin, destination)
        merged[key] = merged.get(key, 0.0) + demand
    return TrafficMatrix(merged, name=f"{matrix.name}@{level}")


def aggregate_trace(
    topology: Topology, trace: TrafficTrace, level: str
) -> TrafficTrace:
    """Aggregate every matrix of a trace to *level* (interval grid kept)."""
    return trace.mapped(
        lambda matrix: aggregate_matrix(topology, matrix, level),
        name=f"{trace.name}@{level}",
    )
