"""Synthetic GÉANT-like traffic-matrix trace.

The paper replays "a 15-day long trace from 25 May 2005" of GÉANT traffic
matrices measured over 15-minute intervals (Uhlig et al. [33]).  The original
matrices are not redistributable, so this generator produces a trace with the
same structure and the statistical features the paper's analysis relies on:

* strong diurnal variation (busy European daytime, quiet nights),
* a weekly pattern (weekend dip),
* per-pair lognormal short-term variability at the 15-minute timescale,
* occasional demand spikes (flash events) that force extra capacity,
* gravity-like spatial structure (big PoPs exchange the most traffic).

The generator is fully deterministic given its seed.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import TrafficError
from ..topology.base import Topology
from ..units import DAY, gbps, minutes
from .gravity import gravity_fractions
from .matrix import Pair, TrafficMatrix, select_random_pairs
from .replay import TrafficTrace

#: Trace geometry of the paper's GÉANT dataset.
GEANT_INTERVAL_S = minutes(15)
GEANT_TRACE_DAYS = 15

#: Default peak aggregate demand.  The 2005 GÉANT network carried a few
#: gigabits per second in aggregate; the exact value only sets the operating
#: point relative to link capacities.
DEFAULT_PEAK_TOTAL_BPS = gbps(18)

#: Start date used for human-readable timestamps (25 May 2005, as in the paper).
TRACE_START_LABEL = "2005-05-25"


def diurnal_factor(time_s: float) -> float:
    """Relative demand level as a function of time of day, in ``[0.25, 1.0]``.

    The shape is a smooth double-humped European business-day profile: a
    morning ramp, a mid-day plateau, an evening peak and a deep night trough.
    """
    hour = (time_s % DAY) / 3_600.0
    base = 0.25
    business = 0.45 * math.exp(-((hour - 14.0) ** 2) / (2.0 * 4.0**2))
    evening = 0.30 * math.exp(-((hour - 20.5) ** 2) / (2.0 * 2.0**2))
    return min(1.0, base + business + evening)


def weekly_factor(time_s: float, weekend_level: float = 0.7) -> float:
    """Relative demand level as a function of day of week.

    Days 5 and 6 (Saturday, Sunday relative to the trace start) are scaled by
    *weekend_level*.
    """
    day_index = int(time_s // DAY) % 7
    return weekend_level if day_index in (5, 6) else 1.0


def generate_geant_trace(
    topology: Topology,
    num_days: int = GEANT_TRACE_DAYS,
    interval_s: float = GEANT_INTERVAL_S,
    peak_total_bps: float = DEFAULT_PEAK_TOTAL_BPS,
    num_pairs: Optional[int] = None,
    pairs: Optional[Sequence[Pair]] = None,
    pair_noise_sigma: float = 0.25,
    spike_probability: float = 0.01,
    spike_magnitude: float = 2.5,
    seed: int = 2005,
) -> TrafficTrace:
    """Generate the synthetic GÉANT-like 15-minute traffic-matrix trace.

    Args:
        topology: The GÉANT-like topology (used for gravity weights and the
            PoP name set).
        num_days: Trace length in days (the paper uses 15).
        interval_s: Measurement interval (the paper's dataset uses 15 min).
        peak_total_bps: Aggregate demand at the busiest instant of a weekday.
        num_pairs: When given, restrict the matrix to this many random
            origin-destination pairs (the paper selects random subsets of
            origins and destinations); ``None`` keeps all pairs.
        pairs: Explicit origin-destination pairs to use (overrides
            *num_pairs*); lets experiments share one pair selection between
            the trace and the REsPoNse plan.
        pair_noise_sigma: Standard deviation of the per-pair lognormal noise
            applied every interval — the source of short-term variability.
        spike_probability: Per-interval probability that some pair experiences
            a flash-crowd spike.
        spike_magnitude: Multiplier applied to a spiking pair's demand.
        seed: Seed of the deterministic generator.

    Returns:
        A :class:`TrafficTrace` of ``num_days * 86400 / interval_s`` matrices.
    """
    if num_days <= 0:
        raise TrafficError(f"num_days must be positive, got {num_days}")
    rng = np.random.default_rng(seed)

    selected: Sequence[Pair]
    if pairs is not None:
        selected = list(pairs)
        fractions = gravity_fractions(topology, pairs=selected)
    elif num_pairs is None:
        fractions = gravity_fractions(topology)
        selected = list(fractions)
    else:
        selected = select_random_pairs(topology.routers(), num_pairs, seed=seed)
        fractions = gravity_fractions(topology, pairs=selected)

    pair_list: List[Pair] = list(selected)
    base_fraction = np.array([fractions[pair] for pair in pair_list])
    base_fraction = base_fraction / base_fraction.sum()

    intervals_per_day = int(round(DAY / interval_s))
    num_intervals = num_days * intervals_per_day

    # Slowly varying per-pair popularity (an AR(1) process in log space) so
    # that which paths are "critical" can drift over the trace, as real
    # matrices do, while the gravity structure dominates.
    log_popularity = np.zeros(len(pair_list))
    popularity_phi = 0.98
    popularity_sigma = 0.05

    matrices: List[TrafficMatrix] = []
    for index in range(num_intervals):
        time_s = index * interval_s
        level = diurnal_factor(time_s) * weekly_factor(time_s)

        log_popularity = popularity_phi * log_popularity + rng.normal(
            0.0, popularity_sigma, size=len(pair_list)
        )
        noise = rng.lognormal(mean=0.0, sigma=pair_noise_sigma, size=len(pair_list))
        weights = base_fraction * np.exp(log_popularity) * noise

        if rng.random() < spike_probability:
            spike_index = int(rng.integers(0, len(pair_list)))
            weights[spike_index] *= spike_magnitude

        weights = weights / weights.sum()
        total = peak_total_bps * level
        demands: Dict[Pair, float] = {
            pair: float(total * weight) for pair, weight in zip(pair_list, weights, strict=True)
        }
        matrices.append(TrafficMatrix(demands, name=f"geant-{index}"))

    return TrafficTrace(
        matrices, interval_s=interval_s, name=f"geant-{num_days}d"
    )


def trace_time_labels(trace: TrafficTrace) -> List[str]:
    """Human-readable "May-28"-style labels for a GÉANT trace's intervals.

    Only used for reporting; the trace itself works in seconds since start.
    """
    from datetime import datetime, timedelta

    start = datetime.strptime(TRACE_START_LABEL, "%Y-%m-%d")
    labels = []
    for timestamp in trace.timestamps():
        moment = start + timedelta(seconds=timestamp)
        labels.append(moment.strftime("%b-%d %H:%M"))
    return labels
