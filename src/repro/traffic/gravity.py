"""Capacity-based gravity traffic model.

For the Rocketfuel topologies the paper infers demands "using a
capacity-based gravity model (as in [9, 14]), where the incoming/outgoing
flow from each PoP is proportional to the combined capacity of adjacent
links".  The demand between an origin ``O`` and a destination ``D`` is then

.. math::

    d(O, D) = T \\cdot \\frac{w_O \\, w_D}{\\sum_{(o, d), o \\ne d} w_o w_d}

where ``w_i`` is the combined adjacent capacity of PoP ``i`` and ``T`` the
total offered traffic.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..exceptions import TrafficError
from ..topology.base import Topology
from .matrix import Pair, TrafficMatrix


def node_weights(topology: Topology, nodes: Optional[Sequence[str]] = None) -> Dict[str, float]:
    """Gravity weights: combined capacity of the links adjacent to each node."""
    names = list(nodes) if nodes is not None else topology.routers()
    weights = {name: topology.total_capacity_bps(name) for name in names}
    total = sum(weights.values())
    if total <= 0:
        raise TrafficError("gravity weights are all zero; topology has no capacity")
    return weights


def gravity_matrix(
    topology: Topology,
    total_traffic_bps: float,
    pairs: Optional[Iterable[Pair]] = None,
    nodes: Optional[Sequence[str]] = None,
    name: str = "gravity",
) -> TrafficMatrix:
    """Build a gravity-model traffic matrix carrying *total_traffic_bps*.

    Args:
        topology: Topology whose adjacent-capacity sums define the weights.
        total_traffic_bps: Total offered load summed over all pairs.
        pairs: Restrict the matrix to these origin-destination pairs
            (the paper selects random subsets of origins and destinations);
            defaults to all ordered pairs of the selected nodes.
        nodes: Restrict origins/destinations to these nodes; defaults to all
            non-host nodes.
        name: Name for the resulting matrix.

    Returns:
        A :class:`TrafficMatrix` whose demands sum to *total_traffic_bps*
        (up to floating-point rounding) and are proportional to the product
        of endpoint weights.
    """
    if total_traffic_bps < 0:
        raise TrafficError(f"total traffic must be non-negative, got {total_traffic_bps}")
    weights = node_weights(topology, nodes)
    if pairs is None:
        names = list(weights)
        selected: List[Pair] = [(o, d) for o in names for d in names if o != d]
    else:
        selected = list(pairs)
        for origin, destination in selected:
            if origin not in weights or destination not in weights:
                missing = origin if origin not in weights else destination
                raise TrafficError(f"pair endpoint {missing!r} has no gravity weight")
    if not selected:
        return TrafficMatrix.zero(name=name)

    products = {
        (origin, destination): weights[origin] * weights[destination]
        for origin, destination in selected
    }
    normaliser = sum(products.values())
    if normaliser <= 0:
        raise TrafficError("gravity normaliser is zero; check capacities")
    demands = {
        pair: total_traffic_bps * product / normaliser for pair, product in products.items()
    }
    return TrafficMatrix(demands, name=name)


def gravity_fractions(
    topology: Topology,
    pairs: Optional[Iterable[Pair]] = None,
    nodes: Optional[Sequence[str]] = None,
) -> Dict[Pair, float]:
    """Per-pair fractions of the total load under the gravity model.

    Useful when an experiment sweeps the total volume while keeping the
    gravity-determined proportions fixed, as the paper does when calibrating
    the 100 % utilisation level.
    """
    matrix = gravity_matrix(topology, total_traffic_bps=1.0, pairs=pairs, nodes=nodes)
    return matrix.as_dict()
