"""Traffic traces: time-ordered sequences of traffic matrices.

The evaluation replays demand traces (GÉANT 15-minute matrices, Google
datacenter 5-minute volumes, sine-wave datacenter demand).  A
:class:`TrafficTrace` is the common container: a fixed measurement interval
and one :class:`~repro.traffic.matrix.TrafficMatrix` per interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence

from ..exceptions import TrafficError
from .matrix import TrafficMatrix


@dataclass(frozen=True)
class TraceInterval:
    """One interval of a trace: start time (seconds) and its traffic matrix."""

    start_s: float
    matrix: TrafficMatrix


class TrafficTrace:
    """A time-ordered sequence of traffic matrices at a fixed interval."""

    def __init__(
        self,
        matrices: Sequence[TrafficMatrix],
        interval_s: float,
        start_s: float = 0.0,
        name: str = "trace",
    ) -> None:
        if interval_s <= 0:
            raise TrafficError(f"interval must be positive, got {interval_s}")
        if not matrices:
            raise TrafficError("a trace needs at least one matrix")
        self._matrices: List[TrafficMatrix] = list(matrices)
        self.interval_s = float(interval_s)
        self.start_s = float(start_s)
        self.name = name

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._matrices)

    def __iter__(self) -> Iterator[TraceInterval]:
        for index, matrix in enumerate(self._matrices):
            yield TraceInterval(self.start_s + index * self.interval_s, matrix)

    def __getitem__(self, index: int) -> TrafficMatrix:
        return self._matrices[index]

    def matrices(self) -> List[TrafficMatrix]:
        """All matrices in order."""
        return list(self._matrices)

    def timestamps(self) -> List[float]:
        """Interval start times in seconds."""
        return [self.start_s + index * self.interval_s for index in range(len(self))]

    @property
    def duration_s(self) -> float:
        """Total covered duration in seconds."""
        return len(self._matrices) * self.interval_s

    def total_series(self) -> List[float]:
        """Total demand (bps) per interval — the aggregate volume time series."""
        return [matrix.total_bps for matrix in self._matrices]

    def matrix_at(self, time_s: float) -> TrafficMatrix:
        """The matrix in effect at wall-clock time *time_s*.

        Times before the trace start clamp to the first matrix; times past the
        end clamp to the last one.
        """
        if time_s <= self.start_s:
            return self._matrices[0]
        index = int((time_s - self.start_s) // self.interval_s)
        if index >= len(self._matrices):
            index = len(self._matrices) - 1
        return self._matrices[index]

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def scaled(self, factor: float) -> "TrafficTrace":
        """A trace with every matrix scaled by *factor*."""
        return TrafficTrace(
            [matrix.scaled(factor) for matrix in self._matrices],
            interval_s=self.interval_s,
            start_s=self.start_s,
            name=f"{self.name}×{factor:g}",
        )

    def subsampled(self, stride: int) -> "TrafficTrace":
        """Keep every *stride*-th matrix (useful to shorten experiments)."""
        if stride <= 0:
            raise TrafficError(f"stride must be positive, got {stride}")
        return TrafficTrace(
            self._matrices[::stride],
            interval_s=self.interval_s * stride,
            start_s=self.start_s,
            name=f"{self.name}/{stride}",
        )

    def sliced(self, start_index: int, end_index: Optional[int] = None) -> "TrafficTrace":
        """A trace covering the intervals ``[start_index, end_index)``."""
        matrices = self._matrices[start_index:end_index]
        if not matrices:
            raise TrafficError("slice produced an empty trace")
        return TrafficTrace(
            matrices,
            interval_s=self.interval_s,
            start_s=self.start_s + start_index * self.interval_s,
            name=f"{self.name}[{start_index}:{end_index}]",
        )

    def mapped(
        self, transform: Callable[[TrafficMatrix], TrafficMatrix], name: Optional[str] = None
    ) -> "TrafficTrace":
        """Apply *transform* to every matrix."""
        return TrafficTrace(
            [transform(matrix) for matrix in self._matrices],
            interval_s=self.interval_s,
            start_s=self.start_s,
            name=name or f"{self.name}-mapped",
        )

    def peak_matrix(self) -> TrafficMatrix:
        """The element-wise peak over the whole trace.

        This is the ``d_peak`` input used when computing on-demand paths with
        knowledge of the peak-hour traffic matrix (Section 4.2).
        """
        peak: dict = {}
        for matrix in self._matrices:
            for pair, demand in matrix.items():
                if demand > peak.get(pair, 0.0):
                    peak[pair] = demand
        return TrafficMatrix(peak, name=f"{self.name}-peak")

    def offpeak_matrix(self, quantile: float = 0.1) -> TrafficMatrix:
        """An element-wise low quantile over the trace (the ``d_low`` input)."""
        import numpy as np

        if not 0.0 <= quantile <= 1.0:
            raise TrafficError(f"quantile must be in [0, 1], got {quantile}")
        per_pair: dict = {}
        for matrix in self._matrices:
            for pair, demand in matrix.items():
                per_pair.setdefault(pair, []).append(demand)
        demands = {
            pair: float(np.quantile(np.array(values), quantile))
            for pair, values in per_pair.items()
        }
        return TrafficMatrix(demands, name=f"{self.name}-offpeak")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TrafficTrace(name={self.name!r}, intervals={len(self)}, "
            f"interval_s={self.interval_s})"
        )
