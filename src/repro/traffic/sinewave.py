"""Sine-wave diurnal datacenter demand (Section 5.1 of the paper).

"We experiment with the same sine-wave demand as in [ElasticTree] to have a
fair comparison ... This demand mimics the diurnal traffic variation in a
datacenter where each flow takes a value from [0, 1 Gbps] range, following
the sin-wave.  We considered two cases: near (highly localized) traffic
matrices, where servers communicate only with other servers in the same pod,
and far (non-localized) traffic matrices where servers communicate mostly
with servers in other pods, through the network core."
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from ..exceptions import TrafficError
from ..topology.base import Topology
from ..topology.fattree import hosts, pod_of
from ..units import gbps
from .matrix import Pair, TrafficMatrix
from .replay import TrafficTrace

#: Default per-flow peak demand (the paper's [0, 1 Gbps] range).
DEFAULT_PEAK_FLOW_BPS = gbps(1.0)

#: Default sine period: one "day" compressed into the experiment duration.
DEFAULT_PERIOD_INTERVALS = 10


def sine_fraction(interval_index: int, period_intervals: int, phase: float = 0.0) -> float:
    """Demand fraction in ``[0, 1]`` following a raised sine wave.

    The wave starts at its minimum (0) for ``interval_index = 0`` so that an
    experiment begins in the low-traffic regime, mirroring Figure 4 where the
    power curve starts low, peaks mid-experiment and falls again.
    """
    if period_intervals <= 0:
        raise TrafficError(f"period must be positive, got {period_intervals}")
    angle = 2.0 * math.pi * interval_index / period_intervals + phase
    return 0.5 * (1.0 - math.cos(angle))


def _near_pairs(topology: Topology, rng: np.random.Generator) -> List[Pair]:
    """Pairs of hosts within the same pod (highly localised traffic)."""
    pairs: List[Pair] = []
    host_names = hosts(topology)
    if not host_names:
        raise TrafficError("topology has no hosts; build the fat-tree with hosts")
    by_pod: dict = {}
    for host in host_names:
        by_pod.setdefault(pod_of(host), []).append(host)
    for pod_hosts in by_pod.values():
        shuffled = list(pod_hosts)
        rng.shuffle(shuffled)
        for source, destination in zip(shuffled, shuffled[1:] + shuffled[:1], strict=True):
            if source != destination:
                pairs.append((source, destination))
    return pairs


def _far_pairs(topology: Topology, rng: np.random.Generator) -> List[Pair]:
    """Pairs of hosts in different pods (traffic crosses the core).

    The mapping is a bijection (every host sends exactly one flow and
    receives exactly one flow), so the peak demand never oversubscribes a
    host access link — matching the all-to-all-style workload ElasticTree
    evaluates.  Hosts are sorted by pod and paired with the host half the
    ring away, which always lands in a different pod; the per-pod host order
    is shuffled so different seeds exercise different pairings.
    """
    host_names = hosts(topology)
    if not host_names:
        raise TrafficError("topology has no hosts; build the fat-tree with hosts")
    by_pod: dict = {}
    for host in host_names:
        by_pod.setdefault(pod_of(host), []).append(host)
    ordered: List[str] = []
    for pod in sorted(by_pod):
        pod_hosts = sorted(by_pod[pod])
        rng.shuffle(pod_hosts)
        ordered.extend(pod_hosts)
    num_hosts = len(ordered)
    half = num_hosts // 2
    return [
        (source, ordered[(index + half) % num_hosts])
        for index, source in enumerate(ordered)
        if source != ordered[(index + half) % num_hosts]
    ]


def fattree_sine_pairs(
    topology: Topology, mode: str, seed: Optional[int] = None
) -> List[Pair]:
    """The host pairs used by the near/far sine-wave workloads."""
    rng = np.random.default_rng(seed)
    if mode == "near":
        return _near_pairs(topology, rng)
    if mode == "far":
        return _far_pairs(topology, rng)
    raise TrafficError(f"mode must be 'near' or 'far', got {mode!r}")


def sine_wave_trace(
    topology: Topology,
    mode: str = "far",
    num_intervals: int = 11,
    period_intervals: int = DEFAULT_PERIOD_INTERVALS,
    peak_flow_bps: float = DEFAULT_PEAK_FLOW_BPS,
    interval_s: float = 60.0,
    utilisation_floor: float = 0.05,
    seed: Optional[int] = None,
    pairs: Optional[List[Pair]] = None,
) -> TrafficTrace:
    """Build the ElasticTree-style sine-wave demand trace on a fat-tree.

    Args:
        topology: A fat-tree built with hosts.
        mode: ``"near"`` (intra-pod) or ``"far"`` (inter-pod) communication.
        num_intervals: Number of trace intervals (Figure 4 spans roughly one
            period, i.e. time 0..10).
        period_intervals: Sine period expressed in intervals.
        peak_flow_bps: Per-flow demand at the top of the wave.
        interval_s: Wall-clock length of one interval.
        utilisation_floor: Minimum per-flow fraction of the peak so that the
            matrix never becomes exactly zero (flows are long-lived).
        seed: Seed for the (deterministic) pairing of hosts.
        pairs: Explicit host pairs to drive; defaults to
            :func:`fattree_sine_pairs` with the given mode and seed.  Callers
            that also need the pair list (to build plans or flows) should
            compute it once and pass it in — with ``seed=None`` a second
            :func:`fattree_sine_pairs` call would shuffle differently.

    Returns:
        A :class:`TrafficTrace` of ``num_intervals`` matrices.
    """
    if num_intervals <= 0:
        raise TrafficError(f"num_intervals must be positive, got {num_intervals}")
    if pairs is None:
        pairs = fattree_sine_pairs(topology, mode, seed=seed)
    matrices = []
    for index in range(num_intervals):
        fraction = max(sine_fraction(index, period_intervals), utilisation_floor)
        demand = peak_flow_bps * fraction
        matrices.append(
            TrafficMatrix.uniform(pairs, demand, name=f"sine-{mode}-{index}")
        )
    return TrafficTrace(
        matrices, interval_s=interval_s, name=f"sine-{mode}"
    )
