"""Traffic matrices.

A :class:`TrafficMatrix` maps origin-destination pairs to demands in bits per
second — the ``d(O, D)`` of the paper's model.  Matrices are immutable value
objects: transformations (:meth:`TrafficMatrix.scaled`,
:meth:`TrafficMatrix.with_demand`) return new instances, which keeps trace
replay and optimisation inputs free of aliasing surprises.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..exceptions import TrafficError

Pair = Tuple[str, str]


class TrafficMatrix:
    """An immutable mapping from (origin, destination) pairs to demand in bps."""

    __slots__ = ("_demands", "name")

    def __init__(
        self,
        demands: Mapping[Pair, float],
        name: str = "traffic-matrix",
    ) -> None:
        cleaned: Dict[Pair, float] = {}
        for (origin, destination), value in demands.items():
            if origin == destination:
                raise TrafficError(
                    f"demand from a node to itself is not allowed: {origin!r}"
                )
            demand = float(value)
            if demand < 0:
                raise TrafficError(
                    f"demand must be non-negative, got {demand} for {(origin, destination)}"
                )
            cleaned[(origin, destination)] = demand
        self._demands: Dict[Pair, float] = cleaned
        self.name = name

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def uniform(
        cls, pairs: Iterable[Pair], demand_bps: float, name: str = "uniform"
    ) -> "TrafficMatrix":
        """A matrix assigning the same demand to every listed pair."""
        return cls({pair: demand_bps for pair in pairs}, name=name)

    @classmethod
    def epsilon(
        cls, pairs: Iterable[Pair], epsilon_bps: float = 1.0, name: str = "epsilon"
    ) -> "TrafficMatrix":
        """The paper's demand-oblivious input: every flow set to a tiny value.

        Section 4.1: "assuming no knowledge of the traffic matrix ... one can
        set all flows d(O,D) equal to a small value ε (e.g., 1 bit/s) to
        obtain a minimal-power routing with full connectivity".
        """
        return cls.uniform(pairs, epsilon_bps, name=name)

    @classmethod
    def zero(cls, name: str = "zero") -> "TrafficMatrix":
        """The empty matrix."""
        return cls({}, name=name)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def pairs(self) -> List[Pair]:
        """All origin-destination pairs with an entry (including zero demand)."""
        return list(self._demands)

    def nonzero_pairs(self) -> List[Pair]:
        """Pairs whose demand is strictly positive."""
        return [pair for pair, demand in self._demands.items() if demand > 0.0]

    def demand(self, origin: str, destination: str) -> float:
        """Demand for a pair, zero when the pair has no entry."""
        return self._demands.get((origin, destination), 0.0)

    def items(self) -> Iterator[Tuple[Pair, float]]:
        """Iterate over ``((origin, destination), demand)`` entries."""
        return iter(self._demands.items())

    @property
    def total_bps(self) -> float:
        """Sum of all demands."""
        return sum(self._demands.values())

    @property
    def max_demand_bps(self) -> float:
        """Largest single-pair demand (zero for an empty matrix)."""
        return max(self._demands.values(), default=0.0)

    def origins(self) -> List[str]:
        """Distinct origins appearing in the matrix."""
        return sorted({origin for origin, _ in self._demands})

    def destinations(self) -> List[str]:
        """Distinct destinations appearing in the matrix."""
        return sorted({destination for _, destination in self._demands})

    def nodes(self) -> List[str]:
        """Distinct nodes appearing as origin or destination."""
        names = {origin for origin, _ in self._demands}
        names |= {destination for _, destination in self._demands}
        return sorted(names)

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def scaled(self, factor: float, name: Optional[str] = None) -> "TrafficMatrix":
        """A copy with every demand multiplied by *factor*."""
        if factor < 0:
            raise TrafficError(f"scale factor must be non-negative, got {factor}")
        return TrafficMatrix(
            {pair: demand * factor for pair, demand in self._demands.items()},
            name=name or f"{self.name}×{factor:g}",
        )

    def with_demand(
        self, origin: str, destination: str, demand_bps: float
    ) -> "TrafficMatrix":
        """A copy with one pair's demand replaced (or added)."""
        demands = dict(self._demands)
        demands[(origin, destination)] = demand_bps
        return TrafficMatrix(demands, name=self.name)

    def restricted_to(self, pairs: Iterable[Pair]) -> "TrafficMatrix":
        """A copy keeping only the listed pairs."""
        wanted = set(pairs)
        return TrafficMatrix(
            {pair: demand for pair, demand in self._demands.items() if pair in wanted},
            name=f"{self.name}-restricted",
        )

    def merged_with(self, other: "TrafficMatrix") -> "TrafficMatrix":
        """Element-wise sum of two matrices."""
        demands = dict(self._demands)
        for pair, demand in other.items():
            demands[pair] = demands.get(pair, 0.0) + demand
        return TrafficMatrix(demands, name=f"{self.name}+{other.name}")

    def as_dict(self) -> Dict[Pair, float]:
        """A plain-dict copy of the demands."""
        return dict(self._demands)

    # ------------------------------------------------------------------ #
    # Dunders
    # ------------------------------------------------------------------ #
    def __getitem__(self, pair: Pair) -> float:
        return self._demands.get(pair, 0.0)

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._demands

    def __len__(self) -> int:
        return len(self._demands)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TrafficMatrix):
            return NotImplemented
        return self._demands == other._demands

    def __hash__(self) -> int:  # pragma: no cover - matrices are rarely hashed
        return hash(frozenset(self._demands.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TrafficMatrix(name={self.name!r}, pairs={len(self._demands)}, "
            f"total={self.total_bps:.3g} bps)"
        )


def all_pairs(nodes: Iterable[str]) -> List[Pair]:
    """Every ordered pair of distinct nodes."""
    names = list(nodes)
    return [(o, d) for o in names for d in names if o != d]


def select_random_pairs(
    nodes: Iterable[str],
    count: int,
    seed: Optional[int] = None,
) -> List[Pair]:
    """Select *count* random origin-destination pairs without replacement.

    The paper "select[s] the origins and destinations at random, as in [24]"
    for the ISP experiments; this helper reproduces that choice
    deterministically given a seed.
    """
    import numpy as np

    pairs = all_pairs(nodes)
    if count >= len(pairs):
        return pairs
    if count < 0:
        raise TrafficError(f"pair count must be non-negative, got {count}")
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(pairs), size=count, replace=False)
    return [pairs[int(index)] for index in sorted(chosen)]


def select_pairs_among_subset(
    nodes: Iterable[str],
    num_endpoints: int,
    num_pairs: int,
    seed: Optional[int] = None,
) -> List[Pair]:
    """Select random pairs whose endpoints come from a random node subset.

    The evaluation selects "random subsets of origins and destinations as in
    [24]": not every PoP terminates traffic, which is what lets REsPoNse put
    entire routers (not just links) to sleep.  This helper first draws
    ``num_endpoints`` candidate endpoints and then ``num_pairs`` ordered pairs
    among them.
    """
    import numpy as np

    names = sorted(nodes)
    if num_endpoints < 2:
        raise TrafficError(f"need at least 2 endpoints, got {num_endpoints}")
    rng = np.random.default_rng(seed)
    if num_endpoints < len(names):
        chosen_nodes = [
            names[int(index)]
            for index in rng.choice(len(names), size=num_endpoints, replace=False)
        ]
    else:
        chosen_nodes = names
    return select_random_pairs(chosen_nodes, num_pairs, seed=seed)
