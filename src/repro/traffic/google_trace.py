"""Synthetic Google-datacenter-like 5-minute traffic trace.

Figure 1a of the paper analyses "network traffic measured at 5-min intervals
at a production Google datacenter" over 8 days and shows that "in almost 50 %
cases the traffic changes at least by 20 % percent over a 5-min interval".
Figure 2b re-uses the same 8-day volume series to drive a fat-tree workload.

The production traces are proprietary, so this module generates a synthetic
volume series calibrated to reproduce the published change statistics: a
diurnal baseline modulated by a mean-reverting multiplicative jump process
whose 5-minute relative-change CCDF matches the shape of Figure 1a (median
relative change around 20 %, a tail of much larger swings).
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from ..exceptions import TrafficError
from ..units import DAY, gbps, minutes
from .matrix import Pair, TrafficMatrix
from .replay import TrafficTrace

#: Trace geometry from the paper.
GOOGLE_INTERVAL_S = minutes(5)
GOOGLE_TRACE_DAYS = 8

#: Default peak aggregate volume of the synthetic datacenter trace.
DEFAULT_PEAK_TOTAL_BPS = gbps(8)

#: Calibrated so that ~50 % of 5-minute intervals change by at least 20 %.
DEFAULT_CHANGE_SIGMA = 0.30

#: Probability and scale of large bursts (job arrivals / completions).
DEFAULT_BURST_PROBABILITY = 0.05
DEFAULT_BURST_SIGMA = 0.8


def google_volume_series(
    num_days: int = GOOGLE_TRACE_DAYS,
    interval_s: float = GOOGLE_INTERVAL_S,
    peak_total_bps: float = DEFAULT_PEAK_TOTAL_BPS,
    change_sigma: float = DEFAULT_CHANGE_SIGMA,
    burst_probability: float = DEFAULT_BURST_PROBABILITY,
    burst_sigma: float = DEFAULT_BURST_SIGMA,
    seed: int = 25,
) -> np.ndarray:
    """Generate the aggregate 5-minute volume series (bits per second).

    The series is a diurnal baseline multiplied by a mean-reverting lognormal
    factor with occasional heavy bursts.  Mean reversion keeps the series
    anchored to the diurnal shape over days while preserving large
    interval-to-interval changes.
    """
    if num_days <= 0:
        raise TrafficError(f"num_days must be positive, got {num_days}")
    rng = np.random.default_rng(seed)
    intervals_per_day = int(round(DAY / interval_s))
    num_intervals = num_days * intervals_per_day

    log_factor = 0.0
    reversion = 0.5
    values = np.empty(num_intervals)
    for index in range(num_intervals):
        time_s = index * interval_s
        hour = (time_s % DAY) / 3_600.0
        baseline = 0.45 + 0.35 * math.sin(2.0 * math.pi * (hour - 6.0) / 24.0) ** 2
        shock = rng.normal(0.0, change_sigma)
        if rng.random() < burst_probability:
            shock += rng.normal(0.0, burst_sigma)
        log_factor = (1.0 - reversion) * log_factor + shock
        values[index] = peak_total_bps * baseline * math.exp(log_factor)
    # Normalise so the maximum equals the requested peak.
    values *= peak_total_bps / values.max()
    return values


def relative_changes(series: Sequence[float]) -> np.ndarray:
    """Relative change between consecutive intervals, ``|v[t+1]-v[t]| / v[t]``.

    This is the quantity whose CCDF the paper plots in Figure 1a.
    """
    values = np.asarray(series, dtype=float)
    if values.size < 2:
        raise TrafficError("need at least two intervals to compute changes")
    previous = values[:-1]
    nonzero = np.where(previous == 0.0, np.finfo(float).eps, previous)
    return np.abs(np.diff(values)) / nonzero


def google_trace(
    pairs: Sequence[Pair],
    num_days: int = GOOGLE_TRACE_DAYS,
    interval_s: float = GOOGLE_INTERVAL_S,
    peak_total_bps: float = DEFAULT_PEAK_TOTAL_BPS,
    pair_churn_sigma: float = 0.35,
    seed: int = 25,
) -> TrafficTrace:
    """Generate a per-pair traffic-matrix trace driven by the volume series.

    The aggregate volume follows :func:`google_volume_series`; its split
    across the given pairs follows slowly drifting random weights, so that
    both the volume and the spatial pattern change over the trace (the reason
    a fat-tree needs about five energy-critical paths in Figure 2b).

    Args:
        pairs: Origin-destination pairs carrying the traffic (typically host
            or edge-switch pairs of a fat-tree).
        num_days: Trace length in days.
        interval_s: Interval length in seconds.
        peak_total_bps: Aggregate volume at the busiest interval.
        pair_churn_sigma: Standard deviation of the per-interval lognormal
            perturbation of pair weights; larger values move traffic between
            pairs faster.
        seed: Seed of the deterministic generator.
    """
    pair_list: List[Pair] = list(pairs)
    if not pair_list:
        raise TrafficError("need at least one origin-destination pair")
    rng = np.random.default_rng(seed)
    volumes = google_volume_series(
        num_days=num_days,
        interval_s=interval_s,
        peak_total_bps=peak_total_bps,
        seed=seed,
    )

    log_weights = rng.normal(0.0, 1.0, size=len(pair_list))
    matrices: List[TrafficMatrix] = []
    for index, volume in enumerate(volumes):
        log_weights = 0.97 * log_weights + rng.normal(
            0.0, pair_churn_sigma, size=len(pair_list)
        )
        weights = np.exp(log_weights)
        weights = weights / weights.sum()
        demands = {
            pair: float(volume * weight) for pair, weight in zip(pair_list, weights, strict=True)
        }
        matrices.append(TrafficMatrix(demands, name=f"google-{index}"))
    return TrafficTrace(matrices, interval_s=interval_s, name=f"google-{num_days}d")
