"""Exception hierarchy for the REsPoNse reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class TopologyError(ReproError):
    """A topology is malformed or an operation referenced a missing element."""


class UnknownNodeError(TopologyError):
    """An operation referenced a node that is not part of the topology."""

    def __init__(self, node: str) -> None:
        super().__init__(f"unknown node: {node!r}")
        self.node = node


class UnknownArcError(TopologyError):
    """An operation referenced a directed arc that does not exist."""

    def __init__(self, src: str, dst: str) -> None:
        super().__init__(f"unknown arc: {src!r} -> {dst!r}")
        self.src = src
        self.dst = dst


class DuplicateElementError(TopologyError):
    """A node or link was added twice to a topology."""


class TrafficError(ReproError):
    """A traffic matrix or trace is malformed."""


class RoutingError(ReproError):
    """A routing table is invalid or a path could not be found."""


class PathNotFoundError(RoutingError):
    """No path exists between an origin and a destination."""

    def __init__(self, origin: str, destination: str) -> None:
        super().__init__(f"no path from {origin!r} to {destination!r}")
        self.origin = origin
        self.destination = destination


class InfeasibleError(ReproError):
    """An optimisation problem has no feasible solution for the given demand."""


class SolverError(ReproError):
    """The underlying solver failed for a reason other than infeasibility."""


class SimulationError(ReproError):
    """The flow-level simulator was driven into an invalid state."""


class ConfigurationError(ReproError):
    """A framework component received inconsistent configuration parameters."""
