"""Figure 2b: traffic coverage of the top-X energy-critical paths per pair.

Paper result: on GÉANT, 2 precomputed paths per pair cover almost 98 % of the
traffic and 3 cover essentially all of it; a fat-tree datacenter driven by
the Google volume trace needs about 5 paths because of its much higher path
diversity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.critical_paths import coverage_curve, paths_needed_for_coverage, rank_paths_by_traffic
from ..power.model import PowerModel
from ..scenario import (
    PowerSpec,
    ScenarioSpec,
    SchemeSpec,
    TopologySpec,
    TrafficSpec,
    build_scenario,
    scheme_outcomes,
)
from .common import routings_of


@dataclass
class Fig2bResult:
    """Coverage curves of the Figure 2b reproduction.

    Attributes:
        coverage: Per-network list of coverage fractions for 1..max_paths
            energy-critical paths per pair (keys ``"geant"``, ``"fattree"``).
        paths_for_98_percent: Number of per-pair paths needed to cover 98 %
            of the traffic, per network.
    """

    coverage: Dict[str, List[float]]
    paths_for_98_percent: Dict[str, int]

    def rows(self) -> List[tuple]:
        """Plotted rows: (number of paths, coverage geant, coverage fattree)."""
        geant = self.coverage.get("geant", [])
        fattree = self.coverage.get("fattree", [])
        length = max(len(geant), len(fattree))
        rows = []
        for index in range(length):
            rows.append(
                (
                    index + 1,
                    geant[index] if index < len(geant) else None,
                    fattree[index] if index < len(fattree) else None,
                )
            )
        return rows


def _coverage_of(
    spec: ScenarioSpec,
    max_paths: int,
    power_model: Optional[PowerModel] = None,
) -> tuple:
    """Coverage curve and 98 %-coverage path count of one network scenario."""
    built = build_scenario(spec, power_model=power_model)
    solutions = scheme_outcomes(built)["greente"].details["solutions"]
    ranked = rank_paths_by_traffic(built.trace, routings_of(solutions))
    return (
        coverage_curve(ranked, max_paths=max_paths),
        paths_needed_for_coverage(ranked, 0.98, max_paths=max_paths),
    )


def run_fig2b(
    geant_days: int = 2,
    geant_pairs: int = 110,
    geant_endpoints: int = 16,
    geant_peak_total_bps: float = 80e9,
    fattree_k: int = 4,
    fattree_days: int = 1,
    fattree_peak_total_bps: float = 12e9,
    max_paths: int = 5,
    candidate_k: int = 6,
    power_model: Optional[PowerModel] = None,
    seed: int = 2005,
) -> Fig2bResult:
    """Reproduce Figure 2b for both a GÉANT-like ISP and a fat-tree datacenter.

    Both networks are declarative scenarios sharing the per-interval GreenTE
    scheme; only the topology × traffic × power composition differs.

    Args:
        geant_days: Days of the GÉANT-like trace to replay.
        geant_pairs: Random origin-destination pairs on GÉANT.
        fattree_k: Fat-tree arity (the paper uses 36 core switches, i.e.
            ``k=12``; the default keeps the benchmark small — the qualitative
            gap between ISP and datacenter survives at ``k=4``).
        fattree_days: Days of the Google-like volume trace driving the
            fat-tree workload.
        max_paths: Largest number of per-pair paths on the x-axis.
        candidate_k: Candidate paths per pair available to the per-interval
            solver (must exceed ``max_paths`` for the curve to be meaningful).
        power_model: ISP power model; the fat-tree uses the commodity model.
        seed: Trace generator seed.
    """
    coverage: Dict[str, List[float]] = {}
    needed: Dict[str, int] = {}

    # GÉANT-like ISP network.
    geant_spec = ScenarioSpec(
        name="fig2b-geant",
        topology=TopologySpec("geant"),
        traffic=TrafficSpec(
            "geant-trace",
            num_days=geant_days,
            num_pairs=geant_pairs,
            num_endpoints=geant_endpoints,
            peak_total_bps=geant_peak_total_bps,
            seed=seed,
        ),
        power=PowerSpec("cisco"),
        schemes=(SchemeSpec("greente", k=candidate_k),),
    )
    coverage["geant"], needed["geant"] = _coverage_of(
        geant_spec, max_paths, power_model=power_model
    )

    # Fat-tree datacenter driven by the Google-like volume series.
    fattree_spec = ScenarioSpec(
        name="fig2b-fattree",
        topology=TopologySpec("fattree", k=fattree_k),
        traffic=TrafficSpec(
            "google-trace",
            num_days=fattree_days,
            peak_total_bps=fattree_peak_total_bps,
            seed=seed,
        ),
        power=PowerSpec("commodity", ports_at_peak=fattree_k),
        schemes=(SchemeSpec("greente", k=candidate_k + 2),),
    )
    coverage["fattree"], needed["fattree"] = _coverage_of(fattree_spec, max_paths)

    return Fig2bResult(coverage=coverage, paths_for_98_percent=needed)
