"""Figure 2b: traffic coverage of the top-X energy-critical paths per pair.

Paper result: on GÉANT, 2 precomputed paths per pair cover almost 98 % of the
traffic and 3 cover essentially all of it; a fat-tree datacenter driven by
the Google volume trace needs about 5 paths because of its much higher path
diversity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.critical_paths import coverage_curve, paths_needed_for_coverage, rank_paths_by_traffic
from ..power.cisco import CiscoRouterPowerModel
from ..power.commodity import CommoditySwitchPowerModel
from ..power.model import PowerModel
from ..topology.fattree import build_fattree, hosts
from ..topology.geant import build_geant
from ..traffic.geant_trace import generate_geant_trace
from ..traffic.google_trace import google_trace
from ..traffic.matrix import select_pairs_among_subset
from .common import per_interval_solutions, routings_of


@dataclass
class Fig2bResult:
    """Coverage curves of the Figure 2b reproduction.

    Attributes:
        coverage: Per-network list of coverage fractions for 1..max_paths
            energy-critical paths per pair (keys ``"geant"``, ``"fattree"``).
        paths_for_98_percent: Number of per-pair paths needed to cover 98 %
            of the traffic, per network.
    """

    coverage: Dict[str, List[float]]
    paths_for_98_percent: Dict[str, int]

    def rows(self) -> List[tuple]:
        """Plotted rows: (number of paths, coverage geant, coverage fattree)."""
        geant = self.coverage.get("geant", [])
        fattree = self.coverage.get("fattree", [])
        length = max(len(geant), len(fattree))
        rows = []
        for index in range(length):
            rows.append(
                (
                    index + 1,
                    geant[index] if index < len(geant) else None,
                    fattree[index] if index < len(fattree) else None,
                )
            )
        return rows


def run_fig2b(
    geant_days: int = 2,
    geant_pairs: int = 110,
    geant_endpoints: int = 16,
    geant_peak_total_bps: float = 80e9,
    fattree_k: int = 4,
    fattree_days: int = 1,
    fattree_peak_total_bps: float = 12e9,
    max_paths: int = 5,
    candidate_k: int = 6,
    power_model: Optional[PowerModel] = None,
    seed: int = 2005,
) -> Fig2bResult:
    """Reproduce Figure 2b for both a GÉANT-like ISP and a fat-tree datacenter.

    Args:
        geant_days: Days of the GÉANT-like trace to replay.
        geant_pairs: Random origin-destination pairs on GÉANT.
        fattree_k: Fat-tree arity (the paper uses 36 core switches, i.e.
            ``k=12``; the default keeps the benchmark small — the qualitative
            gap between ISP and datacenter survives at ``k=4``).
        fattree_days: Days of the Google-like volume trace driving the
            fat-tree workload.
        max_paths: Largest number of per-pair paths on the x-axis.
        candidate_k: Candidate paths per pair available to the per-interval
            solver (must exceed ``max_paths`` for the curve to be meaningful).
        power_model: ISP power model; the fat-tree uses the commodity model.
        seed: Trace generator seed.
    """
    coverage: Dict[str, List[float]] = {}
    needed: Dict[str, int] = {}

    # GÉANT-like ISP network.
    geant = build_geant()
    isp_model = power_model or CiscoRouterPowerModel()
    geant_pair_set = select_pairs_among_subset(
        geant.routers(), geant_endpoints, geant_pairs, seed=seed
    )
    geant_trace = generate_geant_trace(
        geant,
        num_days=geant_days,
        pairs=geant_pair_set,
        peak_total_bps=geant_peak_total_bps,
        seed=seed,
    )
    geant_solutions = per_interval_solutions(geant, isp_model, geant_trace, k=candidate_k)
    geant_ranked = rank_paths_by_traffic(geant_trace, routings_of(geant_solutions))
    coverage["geant"] = coverage_curve(geant_ranked, max_paths=max_paths)
    needed["geant"] = paths_needed_for_coverage(geant_ranked, 0.98, max_paths=max_paths)

    # Fat-tree datacenter driven by the Google-like volume series.
    fattree = build_fattree(fattree_k)
    dc_model = CommoditySwitchPowerModel(ports_at_peak=fattree_k)
    host_names = hosts(fattree)
    pairs = [
        (host_names[index], host_names[(index + len(host_names) // 2) % len(host_names)])
        for index in range(len(host_names))
    ]
    dc_trace = google_trace(
        pairs, num_days=fattree_days, peak_total_bps=fattree_peak_total_bps, seed=seed
    )
    dc_solutions = per_interval_solutions(fattree, dc_model, dc_trace, k=candidate_k + 2)
    dc_ranked = rank_paths_by_traffic(dc_trace, routings_of(dc_solutions))
    coverage["fattree"] = coverage_curve(dc_ranked, max_paths=max_paths)
    needed["fattree"] = paths_needed_for_coverage(dc_ranked, 0.98, max_paths=max_paths)

    return Fig2bResult(coverage=coverage, paths_for_98_percent=needed)
