"""Figure 8b: ns-2-style simulation of a fat-tree datacenter.

Paper setup: a fat-tree topology whose demands follow the sine-wave pattern
and change every 30 seconds, with a 5 s port wake-up time.  Result: because
datacenter RTTs are tiny, the sending rates track the demand almost
immediately; the only visible lag is the wake-up of on-demand resources at
t = 30 s when the rising sine wave first exceeds what the always-on paths can
carry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.response import ResponseConfig, build_response_plan
from ..core.te import ResponseTEController, TEConfig
from ..power.commodity import CommoditySwitchPowerModel
from ..simulator.engine import SimulationEngine
from ..simulator.flows import Flow, stepped_demand
from ..simulator.network import SimulatedNetwork
from ..topology.fattree import build_fattree
from ..traffic.sinewave import fattree_sine_pairs, sine_fraction
from ..units import gbps
from .fig8a import Fig8Result, _measure_wake_stall


def run_fig8b(
    k: int = 4,
    step_duration_s: float = 30.0,
    num_steps: int = 10,
    wake_delay_s: float = 5.0,
    peak_flow_bps: float = gbps(1.0),
    utilisation_threshold: float = 0.9,
    time_step_s: float = 0.25,
    mode: str = "far",
    seed: int = 8,
) -> Fig8Result:
    """Reproduce the fat-tree ns-2 experiment on the flow-level simulator."""
    topology = build_fattree(k)
    power_model = CommoditySwitchPowerModel(ports_at_peak=k)
    pairs = fattree_sine_pairs(topology, mode, seed=seed)

    # The datacenter plan uses traffic-aware (peak-matrix) on-demand paths: a
    # fat-tree's path diversity means the demand-oblivious stress heuristic
    # would fold the on-demand paths onto a single extra spanning tree, which
    # cannot absorb the sine wave's peak (the same reason Figure 2b needs ~5
    # energy-critical paths for the fat-tree but only ~3 for GÉANT).
    from ..traffic.matrix import TrafficMatrix

    peak_matrix = TrafficMatrix.uniform(pairs, peak_flow_bps, name="fattree-peak")
    plan = build_response_plan(
        topology,
        power_model,
        pairs=pairs,
        peak_matrix=peak_matrix,
        config=ResponseConfig(num_paths=3, k=6, on_demand_method="peak"),
    )

    network = SimulatedNetwork(topology, power_model, wake_delay_s=wake_delay_s)
    flows: List[Flow] = []
    for origin, destination in pairs:
        steps = [
            (
                index * step_duration_s,
                peak_flow_bps * max(sine_fraction(index, num_steps), 0.05),
            )
            for index in range(num_steps)
        ]
        flows.append(
            Flow(f"{origin}->{destination}", origin, destination, stepped_demand(steps))
        )

    controller = ResponseTEController(
        plan,
        TEConfig(utilisation_threshold=utilisation_threshold, release_threshold=0.6),
    )
    engine = SimulationEngine(
        network,
        flows,
        controller,
        time_step_s=time_step_s,
        sample_interval_s=time_step_s,
    )
    result = engine.run(duration_s=num_steps * step_duration_s)

    times = result.times()
    demand = result.series("total_demand_bps")
    rate = result.series("total_rate_bps")
    return Fig8Result(
        times_s=times,
        demand_bps=demand,
        sending_rate_bps=rate,
        power_percent=result.power_series(),
        wake_stall_s=_measure_wake_stall(times, demand, rate),
    )
