"""Figure 8b: ns-2-style simulation of a fat-tree datacenter.

Paper setup: a fat-tree topology whose demands follow the sine-wave pattern
and change every 30 seconds, with a 5 s port wake-up time.  Result: because
datacenter RTTs are tiny, the sending rates track the demand almost
immediately; the only visible lag is the wake-up of on-demand resources at
t = 30 s when the rising sine wave first exceeds what the always-on paths can
carry.
"""

from __future__ import annotations

from typing import List

from ..core.response import ResponseConfig, build_response_plan
from ..core.te import ResponseTEController, TEConfig
from ..scenario import (
    PowerSpec,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
    build_scenario,
)
from ..simulator.engine import SimulationEngine
from ..simulator.flows import Flow, stepped_demand
from ..simulator.network import SimulatedNetwork
from ..units import gbps
from .fig8a import Fig8Result, _demand_levels_to_steps, _measure_wake_stall


def run_fig8b(
    k: int = 4,
    step_duration_s: float = 30.0,
    num_steps: int = 10,
    wake_delay_s: float = 5.0,
    peak_flow_bps: float = gbps(1.0),
    utilisation_threshold: float = 0.9,
    time_step_s: float = 0.25,
    mode: str = "far",
    seed: int = 8,
) -> Fig8Result:
    """Reproduce the fat-tree ns-2 experiment on the flow-level simulator.

    The stack (fat-tree × stepped sine-wave demand × commodity power) is
    declarative; the flow-level simulation runs on the built scenario.
    """
    spec = ScenarioSpec(
        name="fig8b",
        topology=TopologySpec("fattree", k=k),
        traffic=TrafficSpec(
            "sinewave",
            mode=mode,
            num_intervals=num_steps,
            period_intervals=num_steps,
            peak_flow_bps=peak_flow_bps,
            interval_s=step_duration_s,
            seed=seed,
        ),
        power=PowerSpec("commodity", ports_at_peak=k),
        utilisation_threshold=utilisation_threshold,
    )
    built = build_scenario(spec)
    topology, power_model = built.topology, built.power_model

    # The datacenter plan uses traffic-aware (peak-matrix) on-demand paths: a
    # fat-tree's path diversity means the demand-oblivious stress heuristic
    # would fold the on-demand paths onto a single extra spanning tree, which
    # cannot absorb the sine wave's peak (the same reason Figure 2b needs ~5
    # energy-critical paths for the fat-tree but only ~3 for GÉANT).
    plan = build_response_plan(
        topology,
        power_model,
        pairs=built.pairs,
        peak_matrix=built.peak_matrix(),
        config=ResponseConfig(num_paths=3, k=6, on_demand_method="peak"),
    )

    network = SimulatedNetwork(topology, power_model, wake_delay_s=wake_delay_s)
    steps = _demand_levels_to_steps(built.trace.matrices(), step_duration_s)
    flows: List[Flow] = [
        Flow(f"{origin}->{destination}", origin, destination, stepped_demand(pair_steps))
        for (origin, destination), pair_steps in steps.items()
    ]

    controller = ResponseTEController(
        plan,
        TEConfig(utilisation_threshold=utilisation_threshold, release_threshold=0.6),
    )
    engine = SimulationEngine(
        network,
        flows,
        controller,
        time_step_s=time_step_s,
        sample_interval_s=time_step_s,
    )
    result = engine.run(duration_s=num_steps * step_duration_s)

    times = result.times()
    demand = result.series("total_demand_bps")
    rate = result.series("total_rate_bps")
    return Fig8Result(
        times_s=times,
        demand_bps=demand,
        sending_rate_bps=rate,
        power_percent=result.power_series(),
        wake_stall_s=_measure_wake_stall(times, demand, rate),
    )
