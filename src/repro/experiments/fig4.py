"""Figure 4: power versus time for sinusoidal traffic in a k=4 fat-tree.

Paper result: REsPoNse matches ElasticTree's formal solution (their curves
coincide); with *near* (intra-pod) traffic the power drops to a small
fraction of the original at the trough and stays well below 100 % even at the
peak, with *far* (inter-pod) traffic the network must keep the core awake at
the peak so savings shrink there, and ECMP stays flat at ~100 % because it
spreads load over every element.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.planner import activate_paths
from ..core.response import ResponseConfig, build_response_plan
from ..optim.elastictree import elastictree_subset
from ..power.accounting import full_power, network_power
from ..power.commodity import CommoditySwitchPowerModel
from ..routing.ecmp import ecmp_active_elements
from ..topology.fattree import build_fattree, hosts
from ..traffic.sinewave import fattree_sine_pairs, sine_wave_trace
from .runner import Sweep


@dataclass
class Fig4Result:
    """Power time series of the Figure 4 reproduction.

    Attributes:
        times: Interval indices (the x-axis of the figure).
        power_percent: Power (% of original) per technique:
            ``"ecmp"``, ``"response_near"``, ``"response_far"``,
            ``"elastictree_near"``, ``"elastictree_far"``.
    """

    times: List[float]
    power_percent: Dict[str, List[float]]

    def rows(self) -> List[tuple]:
        """Plotted rows: (time, ecmp, response_far, response_near)."""
        return [
            (
                time,
                self.power_percent["ecmp"][index],
                self.power_percent["response_far"][index],
                self.power_percent["response_near"][index],
            )
            for index, time in enumerate(self.times)
        ]

    def mean_savings_percent(self, technique: str) -> float:
        """Average savings of a technique over the experiment."""
        series = self.power_percent[technique]
        return 100.0 - sum(series) / len(series)


def _fig4_mode_power(
    k: int,
    mode: str,
    num_intervals: int,
    utilisation_threshold: float,
    include_elastictree: bool,
    seed: int,
) -> Dict[str, List[float]]:
    """Power series of one traffic mode (a sweep point; importable top-level)."""
    topology = build_fattree(k)
    power_model = CommoditySwitchPowerModel(ports_at_peak=k)
    baseline = full_power(topology, power_model).total_w

    trace = sine_wave_trace(topology, mode=mode, num_intervals=num_intervals, seed=seed)
    pairs = fattree_sine_pairs(topology, mode, seed=seed)
    plan = build_response_plan(
        topology,
        power_model,
        pairs=pairs,
        config=ResponseConfig(num_paths=3, k=4, include_failover=True),
    )
    series: Dict[str, List[float]] = {"response": []}
    if include_elastictree:
        series["elastictree"] = []
    for matrix in trace.matrices():
        activation = activate_paths(
            topology,
            power_model,
            plan,
            matrix,
            utilisation_threshold=utilisation_threshold,
        )
        series["response"].append(activation.power_percent)
        if include_elastictree:
            subset = elastictree_subset(topology, power_model, matrix)
            series["elastictree"].append(100.0 * subset.power_w / baseline)
    return series


def _fig4_ecmp_power(k: int, num_intervals: int, seed: int) -> List[float]:
    """ECMP power series (a sweep point; importable top-level).

    ECMP keeps every element on any shortest path active; with all-pairs
    demand that is the whole switching fabric, so its power is flat.
    """
    topology = build_fattree(k)
    power_model = CommoditySwitchPowerModel(ports_at_peak=k)
    baseline = full_power(topology, power_model).total_w
    far_trace = sine_wave_trace(topology, mode="far", num_intervals=num_intervals, seed=seed)
    power: List[float] = []
    for matrix in far_trace.matrices():
        nodes, links = ecmp_active_elements(topology, matrix)
        ecmp_power = network_power(topology, power_model, nodes, links).total_w
        power.append(100.0 * ecmp_power / baseline)
    return power


def run_fig4(
    k: int = 4,
    num_intervals: int = 11,
    utilisation_threshold: float = 0.9,
    include_elastictree: bool = True,
    seed: int = 4,
    parallel: bool = False,
    cache_dir: Optional[str] = None,
) -> Fig4Result:
    """Reproduce Figure 4 on a k-ary fat-tree with sine-wave demand.

    The near/far traffic modes and the ECMP baseline are independent sweep
    points: pass ``parallel=True`` to fan them out over processes and
    ``cache_dir`` to reuse results across runs (see
    :mod:`repro.experiments.runner`).
    """
    sweep = Sweep(cache_dir=cache_dir)
    for mode in ("near", "far"):
        sweep.add(
            _fig4_mode_power,
            label=mode,
            k=k,
            mode=mode,
            num_intervals=num_intervals,
            utilisation_threshold=utilisation_threshold,
            include_elastictree=include_elastictree,
            seed=seed,
        )
    sweep.add(_fig4_ecmp_power, label="ecmp", k=k, num_intervals=num_intervals, seed=seed)
    by_label = sweep.run_labelled(parallel=parallel)

    times = [float(index) for index in range(num_intervals)]
    power: Dict[str, List[float]] = {"ecmp": by_label["ecmp"]}
    for mode in ("near", "far"):
        power[f"response_{mode}"] = by_label[mode]["response"]
        if include_elastictree:
            power[f"elastictree_{mode}"] = by_label[mode]["elastictree"]
    return Fig4Result(times=times, power_percent=power)
