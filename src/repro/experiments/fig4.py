"""Figure 4: power versus time for sinusoidal traffic in a k=4 fat-tree.

Paper result: REsPoNse matches ElasticTree's formal solution (their curves
coincide); with *near* (intra-pod) traffic the power drops to a small
fraction of the original at the trough and stays well below 100 % even at the
peak, with *far* (inter-pod) traffic the network must keep the core awake at
the peak so savings shrink there, and ECMP stays flat at ~100 % because it
spreads load over every element.

The whole stack is declarative: each traffic mode is one
:class:`~repro.scenario.spec.ScenarioSpec` (fat-tree topology × sine-wave
traffic × commodity power × response/elastictree/ecmp schemes) fanned out as
a sweep point through :func:`repro.scenario.engine.run_scenario_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..scenario import PowerSpec, ScenarioSpec, SchemeSpec, TopologySpec, TrafficSpec
from .runner import Sweep


@dataclass
class Fig4Result:
    """Power time series of the Figure 4 reproduction.

    Attributes:
        times: Interval indices (the x-axis of the figure).
        power_percent: Power (% of original) per technique:
            ``"ecmp"``, ``"response_near"``, ``"response_far"``,
            ``"elastictree_near"``, ``"elastictree_far"``.
    """

    times: List[float]
    power_percent: Dict[str, List[float]]

    def rows(self) -> List[tuple]:
        """Plotted rows: (time, ecmp, response_far, response_near)."""
        return [
            (
                time,
                self.power_percent["ecmp"][index],
                self.power_percent["response_far"][index],
                self.power_percent["response_near"][index],
            )
            for index, time in enumerate(self.times)
        ]

    def mean_savings_percent(self, technique: str) -> float:
        """Average savings of a technique over the experiment."""
        series = self.power_percent[technique]
        return 100.0 - sum(series) / len(series)


def fig4_scenario_spec(
    mode: str,
    k: int = 4,
    num_intervals: int = 11,
    utilisation_threshold: float = 0.9,
    include_elastictree: bool = True,
    include_ecmp: bool = False,
    seed: int = 4,
) -> ScenarioSpec:
    """The declarative scenario behind one Figure 4 traffic mode."""
    schemes = [SchemeSpec("response", num_paths=3, k=4, include_failover=True)]
    if include_elastictree:
        schemes.append(SchemeSpec("elastictree"))
    if include_ecmp:
        schemes.append(SchemeSpec("ecmp"))
    return ScenarioSpec(
        name=f"fig4-{mode}",
        topology=TopologySpec("fattree", k=k),
        traffic=TrafficSpec(
            "sinewave", mode=mode, num_intervals=num_intervals, seed=seed
        ),
        power=PowerSpec("commodity", ports_at_peak=k),
        schemes=tuple(schemes),
        utilisation_threshold=utilisation_threshold,
    )


def run_fig4(
    k: int = 4,
    num_intervals: int = 11,
    utilisation_threshold: float = 0.9,
    include_elastictree: bool = True,
    seed: int = 4,
    parallel: bool = False,
    cache_dir: Optional[str] = None,
) -> Fig4Result:
    """Reproduce Figure 4 on a k-ary fat-tree with sine-wave demand.

    The near and far traffic modes are independent scenario sweep points
    (the ECMP baseline rides on the far scenario, whose trace it replays):
    pass ``parallel=True`` to fan them out over processes and ``cache_dir``
    to reuse results across runs, keyed by each scenario's config hash (see
    :mod:`repro.experiments.runner`).
    """
    sweep = Sweep(cache_dir=cache_dir)
    for mode in ("near", "far"):
        spec = fig4_scenario_spec(
            mode,
            k=k,
            num_intervals=num_intervals,
            utilisation_threshold=utilisation_threshold,
            include_elastictree=include_elastictree,
            include_ecmp=(mode == "far"),
            seed=seed,
        )
        sweep.add(
            "repro.scenario.engine:run_scenario_dict", label=mode, spec=spec.to_dict()
        )
    by_label = sweep.run_labelled(parallel=parallel)

    times = [float(index) for index in range(num_intervals)]
    power: Dict[str, List[float]] = {"ecmp": by_label["far"].power_percent["ecmp"]}
    for mode in ("near", "far"):
        power[f"response_{mode}"] = by_label[mode].power_percent["response"]
        if include_elastictree:
            power[f"elastictree_{mode}"] = by_label[mode].power_percent["elastictree"]
    return Fig4Result(times=times, power_percent=power)
