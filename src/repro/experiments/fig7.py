"""Figure 7: REsPoNseTE lets links sleep quickly and restores traffic after failure.

Paper setup (Click testbed, Section 5.3): the Figure 3 topology without
router B, 10 Mb/s links with 16.67 ms latency, routers A and C each sending
5 flows (~5 Mb/s total) toward K.  Initially the traffic is spread over the
on-demand paths; REsPoNseTE starts at t = 5 s and within about 200 ms
(2 RTTs of 6 hops × 16.67 ms) shifts all traffic onto the "middle" always-on
path E-H-K, letting the "upper" (A-D-G-K) and "lower" (C-F-J-K) paths sleep.
At t = 5.7 s the middle link E-H is failed; after the 100 ms detection delay
plus the 10 ms wake-up the traffic is restored on the previously sleeping
paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.plan import ResponsePlan
from ..core.te import ResponseTEController, TEConfig
from ..routing.paths import RoutingTable
from ..scenario import (
    EventSpec,
    PowerSpec,
    ScenarioSpec,
    SchemeSpec,
    TopologySpec,
    TrafficSpec,
    build_scenario,
    failure_schedule,
)
from ..simulator.engine import SimulationEngine, SimulationResult
from ..simulator.flows import Flow, constant_demand
from ..simulator.network import SimulatedNetwork
from ..topology.example import CLICK_LINK_LATENCY_S, example_paths
from ..units import mbps

#: The directed arcs identifying the three path groups plotted in the figure.
GROUP_ARCS = {
    "middle": ("E", "H"),
    "upper": ("D", "G"),
    "lower": ("F", "J"),
}


@dataclass
class Fig7Result:
    """Rate time series of the Figure 7 reproduction.

    Attributes:
        times_s: Sample times.
        rates_mbps: Load (Mb/s) on the arc identifying each path group:
            ``"middle"`` (always-on E-H), ``"upper"`` (on-demand D-G) and
            ``"lower"`` (on-demand F-J).
        sleep_convergence_s: Delay between the TE start and the moment the
            on-demand links went to sleep (paper: ≈0.2 s, two RTTs).
        restore_time_s: Delay between the failure and full rate restoration
            on the failover/on-demand paths (paper: ≈0.11 s).
    """

    times_s: List[float]
    rates_mbps: Dict[str, List[float]]
    sleep_convergence_s: Optional[float]
    restore_time_s: Optional[float]

    def rows(self) -> List[tuple]:
        """Plotted rows: (time, middle, lower, upper) in Mb/s."""
        return [
            (
                time,
                self.rates_mbps["middle"][index],
                self.rates_mbps["lower"][index],
                self.rates_mbps["upper"][index],
            )
            for index, time in enumerate(self.times_s)
        ]


def run_fig7(
    start_s: float = 4.0,
    te_start_s: float = 5.0,
    failure_s: float = 5.7,
    end_s: float = 6.5,
    flows_per_source: int = 5,
    flow_rate_bps: float = mbps(0.5),
    wake_delay_s: float = 0.01,
    failure_detection_delay_s: float = 0.1,
    time_step_s: float = 0.005,
) -> Fig7Result:
    """Reproduce the Click-testbed experiment on the flow-level simulator.

    The stack and the mid-run failure are declared as a scenario spec — the
    E-H link failure rides the ``events`` axis and is lowered to the
    simulator's :class:`~repro.simulator.failures.FailureSchedule` via
    :func:`~repro.scenario.timeline.failure_schedule`.
    """
    per_source_bps = flows_per_source * flow_rate_bps
    spec = ScenarioSpec(
        name="fig7",
        topology=TopologySpec("example", include_b=False),
        traffic=TrafficSpec(
            "matrix",
            demands=[["A", "K", per_source_bps], ["C", "K", per_source_bps]],
            interval_s=end_s - start_s,
        ),
        power=PowerSpec("cisco"),
        schemes=(SchemeSpec("response"),),
        events=(EventSpec("link-failure", time_s=failure_s, link=["E", "H"]),),
    )
    built = build_scenario(spec)
    topology, power_model = built.topology, built.power_model
    # The installed paths are those the paper draws in Figure 3: the middle
    # always-on path, the upper/lower on-demand paths and the (coinciding)
    # failover paths.
    installed = example_paths()
    plan = ResponsePlan.from_tables(
        topology,
        power_model,
        always_on_table=RoutingTable(installed["always_on"], name="always-on"),
        on_demand_tables=[RoutingTable(installed["on_demand"], name="on-demand")],
        failover_table=RoutingTable(installed["failover"], name="failover"),
    )

    network = SimulatedNetwork(topology, power_model, wake_delay_s=wake_delay_s)
    flows: List[Flow] = []
    for source in ("A", "C"):
        for index in range(flows_per_source):
            flows.append(
                Flow(f"{source}{index}", source, "K", constant_demand(flow_rate_bps))
            )
    controller = ResponseTEController(
        plan,
        TEConfig(
            failure_detection_delay_s=failure_detection_delay_s,
            probe_interval_s=6 * CLICK_LINK_LATENCY_S,
            start_time_s=te_start_s,
            initial_table_index=1,
        ),
    )
    failures = failure_schedule(built.spec.events)
    engine = SimulationEngine(
        network,
        flows,
        controller,
        time_step_s=time_step_s,
        sample_interval_s=time_step_s,
        failures=failures,
        monitored_arcs=list(GROUP_ARCS.values()),
    )
    result = engine.run(duration_s=end_s - start_s, start_s=start_s)

    times = result.times()
    rates = {
        group: [load / 1e6 for load in result.arc_load_series(*arc)]
        for group, arc in GROUP_ARCS.items()
    }

    sleep_convergence = _first_time(
        result, lambda sample: sample.sleeping_links >= 4, after=te_start_s
    )
    expected_rate = flows_per_source * 2 * flow_rate_bps
    restore = _first_time(
        result,
        lambda sample: sample.total_rate_bps >= 0.99 * expected_rate,
        after=failure_s + 1e-9,
    )
    return Fig7Result(
        times_s=times,
        rates_mbps=rates,
        sleep_convergence_s=(
            None if sleep_convergence is None else sleep_convergence - te_start_s
        ),
        restore_time_s=None if restore is None else restore - failure_s,
    )


def _first_time(result: SimulationResult, predicate, after: float) -> Optional[float]:
    for sample in result.samples:
        if sample.time_s >= after and predicate(sample):
            return sample.time_s
    return None
