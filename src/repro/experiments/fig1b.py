"""Figure 1b: recomputation rate of state-of-the-art approaches on GÉANT.

Paper result: recomputing the minimal network subset after every 15-minute
interval of the GÉANT trace changes the active-element set up to four times
per hour (the upper bound allowed by the trace granularity), so a network
that recomputes on every change spends much of its time reconfiguring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.recomputation import RecomputationSeries, recomputation_rate
from ..power.model import PowerModel
from ..scenario import (
    PowerSpec,
    ScenarioSpec,
    SchemeSpec,
    TopologySpec,
    TrafficSpec,
    build_scenario,
    scheme_outcomes,
)


@dataclass
class Fig1bResult:
    """Series and headline statistics of the Figure 1b reproduction."""

    series: RecomputationSeries

    @property
    def max_rate_per_hour(self) -> float:
        """Peak hourly recomputation rate (paper: up to 4/hour)."""
        return self.series.max_rate_per_hour

    @property
    def mean_rate_per_hour(self) -> float:
        """Average hourly recomputation rate."""
        return self.series.mean_rate_per_hour

    def rows(self) -> List[tuple]:
        """Plotted rows: (hour start [s], recomputations in that hour)."""
        return list(zip(
            self.series.hour_start_s,
            self.series.recomputations_per_hour,
            strict=True,
        ))


def geant_replay_spec(
    num_days: int,
    num_pairs: int,
    num_endpoints: int,
    peak_total_bps: float,
    subsample: int,
    seed: int,
    name: str = "geant-replay",
) -> ScenarioSpec:
    """The GÉANT per-interval recomputation scenario (Figures 1b and 2a)."""
    return ScenarioSpec(
        name=name,
        topology=TopologySpec("geant"),
        traffic=TrafficSpec(
            "geant-trace",
            num_days=num_days,
            num_pairs=num_pairs,
            num_endpoints=num_endpoints,
            peak_total_bps=peak_total_bps,
            subsample=subsample,
            seed=seed,
        ),
        power=PowerSpec("cisco"),
        schemes=(SchemeSpec("greente", k=5),),
    )


def run_fig1b(
    num_days: int = 3,
    num_pairs: int = 110,
    num_endpoints: int = 16,
    peak_total_bps: float = 80e9,
    subsample: int = 1,
    power_model: Optional[PowerModel] = None,
    seed: int = 2005,
) -> Fig1bResult:
    """Reproduce Figure 1b on the synthetic GÉANT trace.

    Args:
        num_days: Days of trace to replay (the paper replays 15; the default
            keeps the benchmark short while spanning several diurnal cycles).
        num_pairs: Random origin-destination pairs carrying traffic.
        num_endpoints: Size of the random subset of PoPs acting as origins
            and destinations (as in the paper's pair selection).
        peak_total_bps: Peak aggregate demand of the synthetic trace; the
            default drives the busiest links close to capacity, which is what
            forces the minimal subset to change between intervals.
        subsample: Keep every ``subsample``-th interval of the 15-minute trace.
        power_model: Power model used by the per-interval optimisation
            (a programmatic override of the scenario's ``cisco`` spec).
        seed: Trace generator seed.
    """
    spec = geant_replay_spec(
        num_days=num_days,
        num_pairs=num_pairs,
        num_endpoints=num_endpoints,
        peak_total_bps=peak_total_bps,
        subsample=subsample,
        seed=seed,
        name="fig1b",
    )
    built = build_scenario(spec, power_model=power_model)
    outcome = scheme_outcomes(built)["greente"]
    configurations = outcome.details["configurations"]
    return Fig1bResult(series=recomputation_rate(configurations, built.trace.interval_s))
