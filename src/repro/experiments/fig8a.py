"""Figure 8a: ns-2-style simulation of the PoP-access ISP topology.

Paper setup: the hierarchical Italian-ISP (PoP-access) topology, traffic
demands re-drawn from the gravity model every 30 seconds, a 5 s wake-up time
for sleeping ports.  Result: per-pair sending rates match the offered demand
within a few RTTs; only the step at t = 90 s is delayed by the 5 s needed to
wake additional on-demand resources; the network power tracks the activation
of those resources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.response import ResponseConfig, build_response_plan
from ..core.te import ResponseTEController, TEConfig
from ..scenario import (
    PowerSpec,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
    build_scenario,
)
from ..simulator.engine import SimulationEngine
from ..simulator.flows import Flow, stepped_demand
from ..simulator.network import SimulatedNetwork
from ..traffic.matrix import TrafficMatrix


@dataclass
class Fig8Result:
    """Demand / sending-rate / power time series of a Figure 8 simulation.

    Attributes:
        times_s: Sample times.
        demand_bps: Aggregate offered demand.
        sending_rate_bps: Aggregate achieved sending rate.
        power_percent: Network power as a percentage of the original.
        wake_stall_s: Longest period during which the achieved rate lagged
            the demand by more than 5 % after a demand increase (the visible
            effect of the wake-up delay).
    """

    times_s: List[float]
    demand_bps: List[float]
    sending_rate_bps: List[float]
    power_percent: List[float]
    wake_stall_s: float

    def rows(self) -> List[tuple]:
        """Plotted rows: (time, demand, sending rate, power %)."""
        return list(
            zip(
                self.times_s,
                self.demand_bps,
                self.sending_rate_bps,
                self.power_percent,
                strict=True,
            )
        )


def _demand_levels_to_steps(
    levels: Sequence[TrafficMatrix], step_duration_s: float
) -> Dict[Tuple[str, str], List[Tuple[float, float]]]:
    """Per-pair piecewise-constant demand steps from a sequence of matrices."""
    steps: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
    for index, matrix in enumerate(levels):
        start = index * step_duration_s
        for pair, demand in matrix.items():
            steps.setdefault(pair, []).append((start, demand))
    return steps


def _measure_wake_stall(
    times: List[float], demand: List[float], rate: List[float]
) -> float:
    """Longest contiguous period with rate more than 5 % below demand."""
    longest = 0.0
    current_start: Optional[float] = None
    for time, offered, achieved in zip(times, demand, rate, strict=True):
        lagging = offered > 0 and achieved < 0.95 * offered
        if lagging and current_start is None:
            current_start = time
        elif not lagging and current_start is not None:
            longest = max(longest, time - current_start)
            current_start = None
    if current_start is not None and times:
        longest = max(longest, times[-1] - current_start)
    return longest


def run_fig8a(
    num_pairs: int = 12,
    step_duration_s: float = 30.0,
    num_steps: int = 5,
    wake_delay_s: float = 5.0,
    utilisation_levels: Sequence[float] = (0.25, 0.5, 0.5, 1.0, 0.75),
    utilisation_threshold: float = 0.9,
    time_step_s: float = 0.25,
    seed: int = 8,
) -> Fig8Result:
    """Reproduce the PoP-access ns-2 experiment on the flow-level simulator.

    The stack (PoP-access topology × stepped calibrated gravity demand ×
    Cisco power) is declarative; the flow-level simulation of the REsPoNseTE
    control loop runs on top of the built scenario.

    Args:
        num_pairs: Metro-to-metro origin-destination pairs.
        step_duration_s: Seconds between demand changes (the paper uses 30 s).
        num_steps: Number of demand steps.
        wake_delay_s: Wake-up time of sleeping ports (the paper's 5 s bound).
        utilisation_levels: Fraction of the calibrated peak demand offered at
            each step; an increase large enough to need on-demand paths
            produces the wake-up stall the paper reports at t = 90 s.
        utilisation_threshold: REsPoNseTE's activation SLO.
        time_step_s: Simulation step.
        seed: Pair-selection seed.
    """
    # The peak matrix keeps the gravity proportions and is calibrated, as in
    # the paper, to the largest volume the full network can carry (util-100):
    # the step to utilisation 1.0 then genuinely needs on-demand capacity.
    spec = ScenarioSpec(
        name="fig8a",
        topology=TopologySpec("pop-access"),
        traffic=TrafficSpec(
            "gravity",
            params=dict(
                total_traffic_bps=1e9,
                num_pairs=num_pairs,
                level="metro",
                pair_method="random",
                calibrate=True,
                levels=list(utilisation_levels[:num_steps]),
                interval_s=step_duration_s,
                name="pop-access",
                seed=seed,
            ),
        ),
        power=PowerSpec("cisco"),
        utilisation_threshold=utilisation_threshold,
    )
    built = build_scenario(spec)
    topology, power_model = built.topology, built.power_model
    peak = built.peak_matrix()

    plan = build_response_plan(
        topology,
        power_model,
        pairs=built.pairs,
        peak_matrix=peak,
        config=ResponseConfig(num_paths=3, k=3),
    )

    network = SimulatedNetwork(topology, power_model, wake_delay_s=wake_delay_s)
    steps = _demand_levels_to_steps(built.trace.matrices(), step_duration_s)
    flows = [
        Flow(f"{origin}->{destination}", origin, destination, stepped_demand(pair_steps))
        for (origin, destination), pair_steps in steps.items()
    ]
    controller = ResponseTEController(
        plan,
        TEConfig(
            utilisation_threshold=utilisation_threshold,
            release_threshold=0.6,
        ),
    )
    engine = SimulationEngine(
        network,
        flows,
        controller,
        time_step_s=time_step_s,
        sample_interval_s=time_step_s,
    )
    result = engine.run(duration_s=num_steps * step_duration_s)

    times = result.times()
    demand = result.series("total_demand_bps")
    rate = result.series("total_rate_bps")
    return Fig8Result(
        times_s=times,
        demand_bps=demand,
        sending_rate_bps=rate,
        power_percent=result.power_series(),
        wake_stall_s=_measure_wake_stall(times, demand, rate),
    )
