"""Figure 6: power consumption across utilisation levels in the Genuity topology.

Paper result: at util-10 the savings are around 30 %; as the load grows the
REsPoNse variants progressively activate more resources, approaching the
fully powered network at util-100.  REsPoNse-lat trades a little of the
savings for the latency bound, REsPoNse-heuristic (traffic-aware GreenTE
on-demand paths) saves more at high load, and even REsPoNse-ospf (on-demand
paths = OSPF table) remains energy-proportional.  The optimal per-demand
recomputation lower-bounds them all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..power.model import PowerModel
from ..scenario import (
    PowerSpec,
    ScenarioSpec,
    SchemeSpec,
    TopologySpec,
    TrafficSpec,
    run_scenario,
)
from .runner import Sweep

#: Variants plotted in the figure, in its legend order.
FIG6_VARIANTS = (
    "response-lat",
    "response",
    "response-ospf",
    "response-heuristic",
    "optimal",
)


@dataclass
class Fig6Result:
    """Power per utilisation level and variant.

    Attributes:
        utilisation_levels: The evaluated levels (percent of the calibrated
            maximum load, e.g. 10/50/100).
        power_percent: ``variant -> [power % per level]``.
    """

    utilisation_levels: List[float]
    power_percent: Dict[str, List[float]]

    def rows(self) -> List[tuple]:
        """Plotted rows: (util level, then one column per variant)."""
        rows = []
        for index, level in enumerate(self.utilisation_levels):
            rows.append(
                (f"util-{int(level)}",)
                + tuple(self.power_percent[variant][index] for variant in FIG6_VARIANTS)
            )
        return rows

    def savings_at(self, variant: str, level: float) -> float:
        """Savings of a variant at a utilisation level."""
        index = self.utilisation_levels.index(level)
        return 100.0 - self.power_percent[variant][index]


def fig6_variant_scheme(
    variant: str,
    latency_beta: float = 0.25,
    k: int = 3,
) -> SchemeSpec:
    """The registered scheme behind one Figure 6 variant."""
    if variant == "optimal":
        return SchemeSpec("optimal", k=k)
    if variant == "response":
        return SchemeSpec("response", num_paths=3, k=k)
    if variant == "response-lat":
        return SchemeSpec("response-lat", num_paths=3, k=k, latency_beta=latency_beta)
    if variant in ("response-ospf", "response-heuristic"):
        return SchemeSpec(variant, num_paths=3, k=k)
    raise ValueError(f"unknown Figure 6 variant {variant!r}")


def fig6_scenario_spec(
    variant: str,
    utilisation_levels: Sequence[float] = (10.0, 50.0, 100.0),
    num_pairs: int = 150,
    num_endpoints: int = 26,
    utilisation_threshold: float = 0.95,
    latency_beta: float = 0.25,
    k: int = 3,
    seed: int = 1,
) -> ScenarioSpec:
    """One Figure 6 variant as a declarative Genuity × gravity scenario."""
    return ScenarioSpec(
        name=f"fig6-{variant}",
        topology=TopologySpec("genuity"),
        traffic=TrafficSpec(
            "gravity",
            total_traffic_bps=1e9,
            num_pairs=num_pairs,
            num_endpoints=num_endpoints,
            calibrate=True,
            levels=[level / 100.0 for level in utilisation_levels],
            seed=seed,
        ),
        power=PowerSpec("cisco"),
        schemes=(fig6_variant_scheme(variant, latency_beta=latency_beta, k=k),),
        utilisation_threshold=utilisation_threshold,
    )


def run_fig6(
    utilisation_levels: Sequence[float] = (10.0, 50.0, 100.0),
    num_pairs: int = 150,
    num_endpoints: int = 26,
    utilisation_threshold: float = 0.95,
    latency_beta: float = 0.25,
    k: int = 3,
    power_model: Optional[PowerModel] = None,
    seed: int = 1,
    parallel: bool = False,
    cache_dir: Optional[str] = None,
) -> Fig6Result:
    """Reproduce Figure 6 on the synthetic Genuity topology.

    Every variant (and the optimal lower bound) is an independent declarative
    scenario fanned out through :mod:`repro.experiments.runner`.

    Args:
        utilisation_levels: Levels (percent of the calibrated maximum load).
        num_pairs: Random origin-destination pairs carrying gravity traffic.
        num_endpoints: Size of the random subset of PoPs acting as origins
            and destinations.
        utilisation_threshold: REsPoNseTE's activation SLO during the replay.
        latency_beta: Latency bound of the REsPoNse-lat variant.
        k: Candidate paths per pair for the solvers.
        power_model: Programmatic power-model override (Cisco 12000 spec by
            default); a custom object cannot cross process boundaries, so it
            forces serial in-process execution.
        seed: Seed for the pair selection and topology generation.
        parallel: Evaluate the variants over worker processes.
        cache_dir: Cache per-variant results under this directory.
    """
    levels = tuple(utilisation_levels)
    specs = {
        variant: fig6_scenario_spec(
            variant,
            utilisation_levels=levels,
            num_pairs=num_pairs,
            num_endpoints=num_endpoints,
            utilisation_threshold=utilisation_threshold,
            latency_beta=latency_beta,
            k=k,
            seed=seed,
        )
        for variant in FIG6_VARIANTS
    }

    if (parallel or cache_dir) and power_model is None:
        # Independent per-variant scenarios: parallel workers (or cache
        # entries) each rebuild the deterministic shared setup.
        sweep = Sweep(cache_dir=cache_dir)
        for variant, spec in specs.items():
            sweep.add(
                "repro.scenario.engine:run_scenario_dict",
                label=variant,
                spec=spec.to_dict(),
            )
        results = sweep.run_labelled(parallel=parallel)
        power_percent = {
            variant: results[variant].power_percent[specs[variant].schemes[0].label]
            for variant in FIG6_VARIANTS
        }
    else:
        # Serial in-process run: one combined scenario, so the shared setup
        # (topology, gravity matrix, max-load calibration) is built once for
        # all five variants.  Variant names double as unique scheme labels.
        combined = specs[FIG6_VARIANTS[0]].with_schemes(
            *(spec.schemes[0] for spec in specs.values()), name="fig6"
        )
        result = run_scenario(combined, power_model=power_model)
        power_percent = {variant: result.power_percent[variant] for variant in FIG6_VARIANTS}

    return Fig6Result(utilisation_levels=list(levels), power_percent=power_percent)
