"""Figure 6: power consumption across utilisation levels in the Genuity topology.

Paper result: at util-10 the savings are around 30 %; as the load grows the
REsPoNse variants progressively activate more resources, approaching the
fully powered network at util-100.  REsPoNse-lat trades a little of the
savings for the latency bound, REsPoNse-heuristic (traffic-aware GreenTE
on-demand paths) saves more at high load, and even REsPoNse-ospf (on-demand
paths = OSPF table) remains energy-proportional.  The optimal per-demand
recomputation lower-bounds them all.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

from ..core.planner import activate_paths
from ..core.response import ResponseConfig, build_response_plan
from ..optim.greente import greente_heuristic
from ..optim.pathmilp import PathMilpConfig, solve_path_milp
from ..power.accounting import full_power
from ..power.cisco import CiscoRouterPowerModel
from ..power.model import PowerModel
from ..topology.rocketfuel import build_genuity
from ..traffic.gravity import gravity_matrix
from ..traffic.matrix import select_pairs_among_subset
from ..traffic.scaling import calibrate_max_load
from .runner import Sweep

#: Variants plotted in the figure, in its legend order.
FIG6_VARIANTS = (
    "response-lat",
    "response",
    "response-ospf",
    "response-heuristic",
    "optimal",
)


@dataclass
class Fig6Result:
    """Power per utilisation level and variant.

    Attributes:
        utilisation_levels: The evaluated levels (percent of the calibrated
            maximum load, e.g. 10/50/100).
        power_percent: ``variant -> [power % per level]``.
    """

    utilisation_levels: List[float]
    power_percent: Dict[str, List[float]]

    def rows(self) -> List[tuple]:
        """Plotted rows: (util level, then one column per variant)."""
        rows = []
        for index, level in enumerate(self.utilisation_levels):
            rows.append(
                (f"util-{int(level)}",)
                + tuple(self.power_percent[variant][index] for variant in FIG6_VARIANTS)
            )
        return rows

    def savings_at(self, variant: str, level: float) -> float:
        """Savings of a variant at a utilisation level."""
        index = self.utilisation_levels.index(level)
        return 100.0 - self.power_percent[variant][index]


def _fig6_setup(
    utilisation_levels: Sequence[float],
    num_pairs: int,
    num_endpoints: int,
    power_model: Optional[PowerModel],
    seed: int,
):
    """Topology, model, baseline, pairs and per-level demand matrices.

    Deterministic given the parameters, so every sweep point can rebuild
    the shared setup independently (which is what makes the variants
    embarrassingly parallel).  Within one process the result is memoised,
    so a serial sweep pays for the calibration once, like the seed did;
    the returned objects are shared and must be treated as read-only.
    """
    try:
        return _fig6_setup_cached(
            tuple(utilisation_levels), num_pairs, num_endpoints, power_model, seed
        )
    except TypeError:  # unhashable custom power model: compute uncached
        return _fig6_setup_impl(
            tuple(utilisation_levels), num_pairs, num_endpoints, power_model, seed
        )


def _fig6_setup_impl(
    utilisation_levels: Sequence[float],
    num_pairs: int,
    num_endpoints: int,
    power_model: Optional[PowerModel],
    seed: int,
):
    topology = build_genuity()
    model = power_model or CiscoRouterPowerModel()
    baseline = full_power(topology, model).total_w
    pairs = select_pairs_among_subset(
        topology.routers(), num_endpoints, num_pairs, seed=seed
    )
    base = gravity_matrix(topology, total_traffic_bps=1e9, pairs=pairs)
    max_scale = calibrate_max_load(topology, base)
    matrices = {
        level: base.scaled(max_scale * level / 100.0) for level in utilisation_levels
    }
    return topology, model, baseline, pairs, matrices


_fig6_setup_cached = lru_cache(maxsize=4)(_fig6_setup_impl)


def _fig6_variant_power(
    variant: str,
    utilisation_levels: Sequence[float],
    num_pairs: int,
    num_endpoints: int,
    utilisation_threshold: float,
    latency_beta: float,
    k: int,
    power_model: Optional[PowerModel],
    seed: int,
) -> List[float]:
    """Power series of one REsPoNse variant (a sweep point)."""
    topology, model, _baseline, pairs, matrices = _fig6_setup(
        utilisation_levels, num_pairs, num_endpoints, power_model, seed
    )
    peak_matrix = matrices[max(utilisation_levels)]
    configs = {
        "response": ResponseConfig(num_paths=3, k=k),
        "response-lat": ResponseConfig(num_paths=3, k=k, latency_beta=latency_beta),
        "response-ospf": ResponseConfig(num_paths=3, k=k, on_demand_method="ospf"),
        "response-heuristic": ResponseConfig(
            num_paths=3, k=k, on_demand_method="heuristic"
        ),
    }
    plan = build_response_plan(
        topology,
        model,
        pairs=pairs,
        peak_matrix=peak_matrix if variant == "response-heuristic" else None,
        config=configs[variant],
    )
    power: List[float] = []
    for level in utilisation_levels:
        activation = activate_paths(
            topology,
            model,
            plan,
            matrices[level],
            utilisation_threshold=utilisation_threshold,
        )
        power.append(activation.power_percent)
    return power


def _fig6_optimal_power(
    utilisation_levels: Sequence[float],
    num_pairs: int,
    num_endpoints: int,
    k: int,
    power_model: Optional[PowerModel],
    seed: int,
) -> List[float]:
    """Per-level optimal recomputation lower bound (a sweep point)."""
    topology, model, baseline, _pairs, matrices = _fig6_setup(
        utilisation_levels, num_pairs, num_endpoints, power_model, seed
    )
    power: List[float] = []
    for level in utilisation_levels:
        demands = matrices[level]
        try:
            optimal = solve_path_milp(
                topology,
                model,
                demands,
                config=PathMilpConfig(k=k, time_limit_s=60.0),
                solver_name="optimal",
            )
            optimal_power = optimal.power_w
        except Exception:
            # Fall back to the traffic-aware heuristic if the MILP cannot
            # finish within its budget for the largest instances.
            optimal_power = greente_heuristic(
                topology, model, demands, k=k, allow_overload=True
            ).power_w
        power.append(100.0 * optimal_power / baseline)
    return power


def run_fig6(
    utilisation_levels: Sequence[float] = (10.0, 50.0, 100.0),
    num_pairs: int = 150,
    num_endpoints: int = 26,
    utilisation_threshold: float = 0.95,
    latency_beta: float = 0.25,
    k: int = 3,
    power_model: Optional[PowerModel] = None,
    seed: int = 1,
    parallel: bool = False,
    cache_dir: Optional[str] = None,
) -> Fig6Result:
    """Reproduce Figure 6 on the synthetic Genuity topology.

    Every variant (and the optimal lower bound) is an independent sweep
    point fanned out through :mod:`repro.experiments.runner`.

    Args:
        utilisation_levels: Levels (percent of the calibrated maximum load).
        num_pairs: Random origin-destination pairs carrying gravity traffic.
        num_endpoints: Size of the random subset of PoPs acting as origins
            and destinations.
        utilisation_threshold: REsPoNseTE's activation SLO during the replay.
        latency_beta: Latency bound of the REsPoNse-lat variant.
        k: Candidate paths per pair for the solvers.
        power_model: Power model (Cisco 12000 by default).
        seed: Seed for the pair selection and topology generation.
        parallel: Evaluate the variants over worker processes.
        cache_dir: Cache per-variant results under this directory.
    """
    levels = tuple(utilisation_levels)
    sweep = Sweep(cache_dir=cache_dir)
    for variant in FIG6_VARIANTS:
        if variant == "optimal":
            sweep.add(
                _fig6_optimal_power,
                label=variant,
                utilisation_levels=levels,
                num_pairs=num_pairs,
                num_endpoints=num_endpoints,
                k=k,
                power_model=power_model,
                seed=seed,
            )
        else:
            sweep.add(
                _fig6_variant_power,
                label=variant,
                variant=variant,
                utilisation_levels=levels,
                num_pairs=num_pairs,
                num_endpoints=num_endpoints,
                utilisation_threshold=utilisation_threshold,
                latency_beta=latency_beta,
                k=k,
                power_model=power_model,
                seed=seed,
            )
    power_percent = sweep.run_labelled(parallel=parallel)
    return Fig6Result(
        utilisation_levels=list(levels), power_percent=power_percent
    )
