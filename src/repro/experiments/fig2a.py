"""Figure 2a: routing-configuration dominance on the GÉANT replay.

Paper result: a single routing configuration (the minimal power tree) is
active almost 60 % of the time, but 13 distinct configurations appear over
the trace — too many to pre-install as whole routing-table sets, which is why
REsPoNse works with per-pair paths instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.dominance import DominanceResult, configuration_dominance
from ..power.model import PowerModel
from ..scenario import build_scenario, scheme_outcomes
from .fig1b import geant_replay_spec


@dataclass
class Fig2aResult:
    """Dominance distribution of the Figure 2a reproduction."""

    dominance: DominanceResult

    @property
    def dominant_fraction(self) -> float:
        """Time share of the most common configuration (paper: ~0.6)."""
        return self.dominance.dominant_fraction

    @property
    def num_configurations(self) -> int:
        """Number of distinct configurations (paper: 13)."""
        return self.dominance.num_configurations

    def rows(self) -> List[tuple]:
        """Plotted rows: (configuration rank, fraction of time)."""
        return list(enumerate(self.dominance.fractions, start=1))


def run_fig2a(
    num_days: int = 3,
    num_pairs: int = 110,
    num_endpoints: int = 16,
    peak_total_bps: float = 80e9,
    subsample: int = 1,
    power_model: Optional[PowerModel] = None,
    seed: int = 2005,
) -> Fig2aResult:
    """Reproduce Figure 2a on the synthetic GÉANT trace.

    Same declarative scenario as Figure 1b (GÉANT × trace replay × cisco ×
    per-interval GreenTE); only the analysis of the per-interval
    configurations differs.
    """
    spec = geant_replay_spec(
        num_days=num_days,
        num_pairs=num_pairs,
        num_endpoints=num_endpoints,
        peak_total_bps=peak_total_bps,
        subsample=subsample,
        seed=seed,
        name="fig2a",
    )
    built = build_scenario(spec, power_model=power_model)
    outcome = scheme_outcomes(built)["greente"]
    configurations = outcome.details["configurations"]
    return Fig2aResult(dominance=configuration_dominance(configurations))
