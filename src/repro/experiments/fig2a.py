"""Figure 2a: routing-configuration dominance on the GÉANT replay.

Paper result: a single routing configuration (the minimal power tree) is
active almost 60 % of the time, but 13 distinct configurations appear over
the trace — too many to pre-install as whole routing-table sets, which is why
REsPoNse works with per-pair paths instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.dominance import DominanceResult, configuration_dominance
from ..power.cisco import CiscoRouterPowerModel
from ..power.model import PowerModel
from ..topology.geant import build_geant
from ..traffic.geant_trace import generate_geant_trace
from ..traffic.matrix import select_pairs_among_subset
from .common import configurations_of, per_interval_solutions


@dataclass
class Fig2aResult:
    """Dominance distribution of the Figure 2a reproduction."""

    dominance: DominanceResult

    @property
    def dominant_fraction(self) -> float:
        """Time share of the most common configuration (paper: ~0.6)."""
        return self.dominance.dominant_fraction

    @property
    def num_configurations(self) -> int:
        """Number of distinct configurations (paper: 13)."""
        return self.dominance.num_configurations

    def rows(self) -> List[tuple]:
        """Plotted rows: (configuration rank, fraction of time)."""
        return list(enumerate(self.dominance.fractions, start=1))


def run_fig2a(
    num_days: int = 3,
    num_pairs: int = 110,
    num_endpoints: int = 16,
    peak_total_bps: float = 80e9,
    subsample: int = 1,
    power_model: Optional[PowerModel] = None,
    seed: int = 2005,
) -> Fig2aResult:
    """Reproduce Figure 2a on the synthetic GÉANT trace."""
    topology = build_geant()
    model = power_model or CiscoRouterPowerModel()
    pairs = select_pairs_among_subset(
        topology.routers(), num_endpoints, num_pairs, seed=seed
    )
    trace = generate_geant_trace(
        topology,
        num_days=num_days,
        pairs=pairs,
        peak_total_bps=peak_total_bps,
        seed=seed,
    )
    if subsample > 1:
        trace = trace.subsampled(subsample)
    solutions = per_interval_solutions(topology, model, trace)
    configurations = configurations_of(solutions)
    return Fig2aResult(dominance=configuration_dominance(configurations))
