"""Figure 1a: CCDF of 5-minute traffic change in a (synthetic) Google datacenter.

Paper result: the demand changes faster than energy-aware recomputation can
follow — "in almost 50 % cases the traffic changes at least by 20 % percent
over a 5-min interval".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..analysis.deviation import change_ccdf, fraction_changing_at_least, median_change
from ..scenario import TrafficSpec
from ..traffic.google_trace import GOOGLE_TRACE_DAYS


@dataclass
class Fig1aResult:
    """Series and headline statistics of the Figure 1a reproduction.

    Attributes:
        ccdf_points: ``(change_percent, ccdf_percent)`` pairs — the plotted
            curve.
        fraction_at_least_20_percent: Fraction of intervals whose traffic
            changes by at least 20 % (paper: almost 0.5).
        median_change_percent: Median relative change per 5-minute interval.
    """

    ccdf_points: List[Tuple[float, float]]
    fraction_at_least_20_percent: float
    median_change_percent: float

    def rows(self) -> List[Tuple[float, float]]:
        """The plotted rows: (change after 5 minutes [%], ccdf [%])."""
        return self.ccdf_points


def run_fig1a(num_days: int = GOOGLE_TRACE_DAYS, seed: int = 25) -> Fig1aResult:
    """Reproduce Figure 1a from the synthetic Google-like volume series."""
    series = TrafficSpec("google-volume", num_days=num_days, seed=seed).build(None)
    return Fig1aResult(
        ccdf_points=change_ccdf(series),
        fraction_at_least_20_percent=fraction_changing_at_least(series, 0.20),
        median_change_percent=median_change(series) * 100.0,
    )
