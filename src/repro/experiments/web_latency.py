"""Section 5.4 (text): web retrieval latency over REsPoNse paths.

Paper result: with an Apache server on one stub node and httperf clients on
four others, retrieving 100 static files whose sizes follow the SPECweb2005
online-banking distribution, "the web retrieval latency increases by only 9 %
when we switch from OSPF-InvCap to REsPoNse".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..apps.web import WebConfig, WebResult, run_web_workload
from ..core.response import ResponseConfig, build_response_plan
from ..routing.paths import RoutingTable
from ..scenario import PowerSpec, RoutingSpec, TopologySpec


@dataclass
class WebLatencyResult:
    """Latency comparison between REsPoNse-lat and OSPF-InvCap paths."""

    response: WebResult
    invcap: WebResult

    @property
    def latency_increase_percent(self) -> float:
        """Mean retrieval-latency increase of REsPoNse over InvCap (paper: ≈9 %)."""
        return self.response.mean_latency_increase_percent(self.invcap)

    def rows(self) -> List[tuple]:
        """Report rows: (routing, mean latency ms, median ms, p95 ms)."""
        return [
            (
                "REsPoNse-lat",
                self.response.mean_latency_s * 1e3,
                self.response.median_latency_s * 1e3,
                self.response.p95_latency_s * 1e3,
            ),
            (
                "OSPF-InvCap",
                self.invcap.mean_latency_s * 1e3,
                self.invcap.median_latency_s * 1e3,
                self.invcap.p95_latency_s * 1e3,
            ),
        ]


def run_web_latency(
    num_clients: int = 4,
    latency_beta: float = 0.25,
    config: Optional[WebConfig] = None,
    seed: int = 54,
) -> WebLatencyResult:
    """Reproduce the web-workload comparison on the synthetic Abovenet topology."""
    topology = TopologySpec("abovenet").build()
    power_model = PowerSpec("cisco").build(topology)
    cfg = config or WebConfig()

    nodes = topology.routers()
    # Stub nodes: lowest-degree PoPs act as the server and client sites.
    stubs = sorted(nodes, key=topology.degree)[: num_clients + 1]
    server, clients = stubs[0], stubs[1:]

    pairs = [
        *((server, client) for client in clients),
        *((client, server) for client in clients),
    ]
    plan = build_response_plan(
        topology,
        power_model,
        pairs=pairs,
        config=ResponseConfig(num_paths=3, k=3, latency_beta=latency_beta),
    )
    response_routing: RoutingTable = plan.always_on_table
    invcap_routing = RoutingSpec("ospf-invcap", params={"name": "invcap"}).build(
        topology, pairs
    )

    response_result = run_web_workload(topology, response_routing, server, clients, cfg)
    invcap_result = run_web_workload(topology, invcap_routing, server, clients, cfg)
    return WebLatencyResult(response=response_result, invcap=invcap_result)
