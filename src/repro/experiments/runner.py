"""Parallel experiment sweeps with per-point disk caching.

Reproducing the paper's larger figures means evaluating many independent
experiment points (figure variants, utilisation levels, client populations,
whole figures).  A :class:`Sweep` collects such points — each one an
importable function plus keyword parameters — and executes them either
serially or fanned out over :mod:`multiprocessing` workers, with identical
results either way.  Every point can be cached to disk keyed by a stable
hash of its function reference and parameters, so re-running a sweep (or a
benchmark driver) only pays for points whose configuration changed.

Four layers use this module:

* the ``fig*`` experiment drivers fan their internal scenario points out
  through a sweep (``run_fig4(parallel=True)`` etc.),
* the :mod:`benchmarks` drivers thread optional ``parallel``/``cache_dir``
  settings through to those drivers,
* the campaign subsystem (:mod:`repro.campaign`) executes expanded scenario
  grids through the error-isolating chunked backend
  (:func:`iter_outcome_chunks` / :class:`PointOutcome`), persisting every
  chunk into its SQLite results store, and
* the command line: ``python -m repro.experiments fig4 fig7`` runs whole
  figures as sweep points, ``run-scenario`` executes a declarative
  :class:`~repro.scenario.spec.ScenarioSpec` (cached by its config hash),
  ``list-components`` shows the registered scenario building blocks and
  ``run-campaign``/``campaign-status``/``campaign-report`` drive scenario
  grids end to end (see :func:`main`).
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import importlib
import inspect
import itertools
import json
import logging
import os
import pickle
import re
import tempfile
import time
import traceback
from dataclasses import dataclass
from multiprocessing import cpu_count, get_all_start_methods, get_context
from pathlib import Path as FilePath
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..exceptions import ConfigurationError
from ..obs import metrics, trace

_LOGGER = logging.getLogger(__name__)

_SWEEP_CACHE_HITS = metrics.counter(
    "repro_sweep_cache_hits_total", "Sweep disk-cache entries served"
)
_SWEEP_CACHE_MISSES = metrics.counter(
    "repro_sweep_cache_misses_total", "Sweep disk-cache lookups with no entry"
)
_SWEEP_CACHE_CORRUPT = metrics.counter(
    "repro_sweep_cache_corrupt_total", "Corrupt sweep cache entries discarded"
)
_BATCH_GROUP_FALLBACKS = metrics.counter(
    "repro_batch_group_fallbacks_total",
    "Batched scenario groups that fell back to per-point execution",
)

#: Bump to invalidate every cached sweep point after incompatible changes.
#: Version 2: NumPy scalars/arrays and nested dataclasses canonicalise like
#: their pure-Python equivalents (see :func:`_canonical_value`).
#: Version 3: scenario specs carry the dynamic ``events`` axis and scenario
#: results gained event/reaction fields, so pre-events pickles are stale.
CACHE_VERSION = 3

#: Figures runnable from the command line, resolved lazily by the workers.
FIGURE_REGISTRY: Dict[str, str] = {
    "fig1a": "repro.experiments.fig1a:run_fig1a",
    "fig1b": "repro.experiments.fig1b:run_fig1b",
    "fig2a": "repro.experiments.fig2a:run_fig2a",
    "fig2b": "repro.experiments.fig2b:run_fig2b",
    "fig4": "repro.experiments.fig4:run_fig4",
    "fig5": "repro.experiments.fig5:run_fig5",
    "fig6": "repro.experiments.fig6:run_fig6",
    "fig7": "repro.experiments.fig7:run_fig7",
    "fig8a": "repro.experiments.fig8a:run_fig8a",
    "fig8b": "repro.experiments.fig8b:run_fig8b",
    "fig9": "repro.experiments.fig9:run_fig9",
    "always_on_capacity": "repro.experiments.always_on_capacity:run_always_on_capacity",
    "stress_ablation": "repro.experiments.stress_ablation:run_stress_ablation",
    "web_latency": "repro.experiments.web_latency:run_web_latency",
}


def function_reference(function: Union[str, Callable[..., Any]]) -> str:
    """The stable ``"module:qualname"`` reference of a sweep function.

    Raises:
        ConfigurationError: If the callable cannot be re-imported by a
            worker process (lambdas, locals, ``__main__`` definitions).
    """
    if isinstance(function, str):
        if ":" not in function:
            raise ConfigurationError(
                f"function reference {function!r} must look like 'module:name'"
            )
        return function
    module = getattr(function, "__module__", None)
    qualname = getattr(function, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname or "<lambda>" in qualname:
        raise ConfigurationError(
            f"sweep functions must be importable module-level callables, got {function!r}"
        )
    return f"{module}:{qualname}"


def resolve_function(reference: str) -> Callable[..., Any]:
    """Import and return the callable behind a ``"module:qualname"`` reference."""
    module_name, _, qualname = reference.partition(":")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


@dataclass(frozen=True)
class SweepPoint:
    """One experiment point: an importable function plus its parameters.

    Attributes:
        function: ``"module:qualname"`` reference of the point function.
        params: Keyword parameters, as a sorted tuple of ``(name, value)``
            pairs (kept hashable so points can be deduplicated).
        label: Human-readable label used in summaries and result maps.
    """

    function: str
    params: Tuple[Tuple[str, Any], ...]
    label: str

    def kwargs(self) -> Dict[str, Any]:
        """The parameters as a keyword-argument dictionary."""
        return dict(self.params)

    def config_hash(self) -> str:
        """Stable hash identifying the point's configuration on disk."""
        payload = json.dumps(
            {
                "cache_version": CACHE_VERSION,
                "function": self.function,
                "params": {
                    name: _canonical_value(value) for name, value in self.params
                },
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


#: ``object.__repr__`` embeds the instance address — never stable on disk.
_MEMORY_ADDRESS = re.compile(r" at 0x[0-9a-fA-F]+")


def _canonical_value(value: Any) -> Any:
    """A JSON-serialisable, process-stable view of a parameter value.

    Primitives and containers pass through structurally; NumPy scalars and
    arrays canonicalise exactly like the equivalent Python numbers and
    (nested) lists, so a spec built from ``np.float64`` values hashes the
    same as one built from floats.  Dataclasses and plain objects become
    ``[class name, attributes]`` — field by field, so a dataclass nested
    inside another canonicalises identically to the same dataclass passed
    at top level.  The last-resort ``repr`` must not carry a memory
    address: an address-bearing key would either defeat the cache (never
    hit) or, after address reuse, silently alias a different
    configuration's entry — so such values are rejected instead.
    """
    if isinstance(value, np.generic):
        # NumPy scalars (np.int64, np.float32, np.bool_, ...) hash like the
        # Python value they wrap.
        return _canonical_value(value.item())
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if inspect.isroutine(value) or inspect.isclass(value):
        # Functions/classes canonicalise to their import reference; lambdas
        # and locals raise (a silent shared hash would alias cache entries).
        return function_reference(value)
    if isinstance(value, np.ndarray):
        return _canonical_value(value.tolist())
    if isinstance(value, (list, tuple)):
        return [_canonical_value(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_canonical_value(item) for item in value)
    if isinstance(value, Mapping):
        return {str(key): _canonical_value(item) for key, item in sorted(value.items())}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # Canonicalise field by field (NOT via dataclasses.asdict, whose
        # recursion flattens nested dataclasses into anonymous dicts: the
        # same spec would then hash differently at top level vs. nested).
        fields = {
            f.name: _canonical_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return [type(value).__qualname__, fields]
    attributes = getattr(value, "__dict__", None)
    if isinstance(attributes, dict):
        return [type(value).__qualname__, _canonical_value(attributes)]
    representation = repr(value)
    if _MEMORY_ADDRESS.search(representation):
        raise ConfigurationError(
            f"cannot build a stable cache key for {type(value).__qualname__!r}: "
            "its repr embeds a memory address; use a dataclass, an object with "
            "__dict__ attributes, or a custom state-bearing __repr__"
        )
    return representation


def point(
    function: Union[str, Callable[..., Any]],
    label: Optional[str] = None,
    **params: Any,
) -> SweepPoint:
    """Build a :class:`SweepPoint` from a callable (or reference) and kwargs."""
    reference = function_reference(function)
    return SweepPoint(
        function=reference,
        params=tuple(sorted(params.items())),
        label=label if label is not None else reference.partition(":")[2],
    )


def grid(**axes: Iterable[Any]) -> List[Dict[str, Any]]:
    """The cartesian product of named axes as parameter dictionaries.

    ``grid(k=[4, 8], seed=[0, 1])`` yields four dictionaries, varying the
    rightmost axis fastest — handy for building sweep points in bulk.
    """
    names = list(axes)
    values = [list(axes[name]) for name in names]
    return [dict(zip(names, combo, strict=True)) for combo in itertools.product(*values)]


def _cache_file(cache_dir: Union[str, os.PathLike], sweep_point: SweepPoint) -> FilePath:
    name = sweep_point.function.rpartition(":")[2].strip("_") or "point"
    return FilePath(cache_dir) / f"{name}-{sweep_point.config_hash()[:16]}.pkl"


#: Sentinel distinguishing "no cached value" from a cached ``None``.
_CACHE_MISS = object()


def _read_cache(cache_path: Optional[FilePath], sweep_point: SweepPoint) -> Any:
    """The cached value of a point, or :data:`_CACHE_MISS`.

    A corrupt or truncated entry (killed writer, disk trouble, unpicklable
    class change) must never sink the sweep: the entry is dropped with a
    warning and the caller recomputes the point.
    """
    if cache_path is None:
        return _CACHE_MISS
    if not cache_path.exists():
        _SWEEP_CACHE_MISSES.inc()
        return _CACHE_MISS
    try:
        with open(cache_path, "rb") as handle:
            value = pickle.load(handle)
    except Exception as error:
        _LOGGER.warning(
            "discarding corrupt sweep cache entry %s for point %r (%s: %s); "
            "recomputing",
            cache_path,
            sweep_point.label,
            type(error).__name__,
            error,
        )
        cache_path.unlink(missing_ok=True)
        _SWEEP_CACHE_CORRUPT.inc()
        return _CACHE_MISS
    _SWEEP_CACHE_HITS.inc()
    return value


def _write_cache(cache_path: FilePath, result: Any) -> None:
    """Atomically publish a point's result so parallel workers never observe
    partial pickles."""
    cache_path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(dir=cache_path.parent, suffix=".tmp")
    try:
        with os.fdopen(descriptor, "wb") as handle:
            pickle.dump(result, handle)
        os.replace(temp_name, cache_path)
    except Exception:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def execute_point(
    sweep_point: SweepPoint, cache_dir: Optional[Union[str, os.PathLike]] = None
) -> Any:
    """Run one point, reading/writing the disk cache when enabled.

    This is the single code path used by both serial and parallel execution
    (it is the function the worker processes run), which is what guarantees
    parallel/serial result equality.
    """
    with trace.span(
        "point.execute",
        label=sweep_point.label,
        config_hash=sweep_point.config_hash()[:16] if trace.tracing_enabled() else "",
    ) as point_span:
        cache_path = _cache_file(cache_dir, sweep_point) if cache_dir else None
        cached = _read_cache(cache_path, sweep_point)
        if cached is not _CACHE_MISS:
            point_span.set(cached=True)
            return cached
        point_span.set(cached=False)
        result = resolve_function(sweep_point.function)(**sweep_point.kwargs())
        if cache_path is not None:
            _write_cache(cache_path, result)
        return result


@dataclass
class PointOutcome:
    """The error-isolated result of executing one sweep point.

    Where :func:`execute_point` propagates exceptions (one bad point sinks
    the whole sweep), an outcome captures them: batch drivers such as the
    campaign runner record the failure and keep going.

    Attributes:
        point: The executed sweep point.
        value: The point function's return value (``None`` on failure).
        error: The formatted traceback of the failure, ``None`` on success.
        elapsed_s: Wall-clock execution time of the point.
    """

    point: SweepPoint
    value: Any = None
    error: Optional[str] = None
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the point executed without raising."""
        return self.error is None


def execute_point_outcome(
    sweep_point: SweepPoint, cache_dir: Optional[Union[str, os.PathLike]] = None
) -> PointOutcome:
    """Run one point, capturing failure and timing instead of raising.

    Like :func:`execute_point` this is the single code path for serial and
    parallel execution (workers run it directly), but it never raises: a
    failing point yields an outcome whose ``error`` holds the traceback, so
    the remaining points of a batch still run.
    """
    start = time.perf_counter()
    try:
        value = execute_point(sweep_point, cache_dir)
    except Exception:
        return PointOutcome(
            point=sweep_point,
            error=traceback.format_exc(),
            elapsed_s=time.perf_counter() - start,
        )
    return PointOutcome(
        point=sweep_point, value=value, elapsed_s=time.perf_counter() - start
    )


#: The scenario sweep entry point — the only function the batch planner
#: understands (its single ``spec`` parameter is a full scenario spec dict).
SCENARIO_POINT_FUNCTION = "repro.scenario.engine:run_scenario_dict"


def batch_signature(sweep_point: SweepPoint) -> Optional[str]:
    """The grouping key under which a point may share a batched evaluation.

    Points with equal signatures declare identical ``topology``, ``power``
    and ``routing`` sections, so one built network stack can serve them all
    (see :func:`~repro.scenario.engine.build_scenario_group`).  Returns
    ``None`` for points the planner must not group: non-scenario points,
    malformed specs, and eventful scenarios (whose failure-adjusted topology
    views are per-point state).
    """
    if sweep_point.function != SCENARIO_POINT_FUNCTION:
        return None
    spec = sweep_point.kwargs().get("spec")
    if not isinstance(spec, Mapping):
        return None
    if spec.get("events"):
        return None
    sections = {
        section: _canonical_value(spec.get(section))
        for section in ("topology", "power", "routing")
    }
    return json.dumps(sections, sort_keys=True, separators=(",", ":"))


def plan_point_batches(points: Sequence[SweepPoint]) -> List[List[int]]:
    """Partition point indices into batchable groups.

    Points sharing a :func:`batch_signature` land in one group; every
    ungroupable point (``None`` signature) forms a singleton.  Groups are
    ordered by first occurrence and indices stay ascending within each
    group, so a batch-executed campaign visits points in the same order a
    serial one does, group by group.
    """
    groups: Dict[Any, List[int]] = {}
    for index, sweep_point in enumerate(points):
        signature = batch_signature(sweep_point)
        key: Any = ("solo", index) if signature is None else ("group", signature)
        groups.setdefault(key, []).append(index)
    return list(groups.values())


def execute_scenario_batch(
    points: Sequence[SweepPoint],
    cache_dir: Optional[Union[str, os.PathLike]] = None,
) -> List[PointOutcome]:
    """Run one batch group of scenario points as a single grouped problem.

    The fast path builds every uncached spec through
    :func:`~repro.scenario.engine.build_scenario_group` and drives them in
    one interval-major pass — results are bit-identical to per-point serial
    execution.  Cached points are served from disk exactly as
    :func:`execute_point` would.  On any grouping or execution failure the
    whole group falls back to per-point :func:`execute_point_outcome`, which
    reproduces serial error isolation (and serial tracebacks) point by
    point.  Outcomes preserve input order.
    """
    outcomes: List[Optional[PointOutcome]] = [None] * len(points)
    pending: List[int] = []
    for index, sweep_point in enumerate(points):
        cache_path = _cache_file(cache_dir, sweep_point) if cache_dir else None
        start = time.perf_counter()
        cached = _read_cache(cache_path, sweep_point)
        if cached is _CACHE_MISS:
            pending.append(index)
        else:
            outcomes[index] = PointOutcome(
                point=sweep_point,
                value=cached,
                elapsed_s=time.perf_counter() - start,
            )
    signatures = {batch_signature(points[index]) for index in pending}
    if len(pending) > 1 and len(signatures) == 1 and None not in signatures:
        start = time.perf_counter()
        results: Optional[List[Any]]
        try:
            # Deferred: plain sweeps stay scenario-import-light.
            from ..scenario.engine import (
                build_scenario_group,
                run_built_scenarios_batch,
            )

            builts = build_scenario_group(
                [points[index].kwargs()["spec"] for index in pending]
            )
            results = run_built_scenarios_batch(builts)
        except Exception:
            # Any failure inside the grouped path (one bad spec, a scheme
            # error) falls back to per-point execution below, which isolates
            # the failure to its own point.
            _BATCH_GROUP_FALLBACKS.inc()
            results = None
        if results is not None:
            share = (time.perf_counter() - start) / len(pending)
            for position, index in enumerate(pending):
                sweep_point = points[index]
                result = results[position]
                try:
                    if cache_dir:
                        _write_cache(_cache_file(cache_dir, sweep_point), result)
                except Exception:
                    outcomes[index] = PointOutcome(
                        point=sweep_point,
                        error=traceback.format_exc(),
                        elapsed_s=share,
                    )
                else:
                    outcomes[index] = PointOutcome(
                        point=sweep_point, value=result, elapsed_s=share
                    )
            return [outcome for outcome in outcomes if outcome is not None]
    for index in pending:
        outcomes[index] = execute_point_outcome(points[index], cache_dir)
    return [outcome for outcome in outcomes if outcome is not None]


def suggest_chunk_size(
    num_points: int, workers: int = 1, pool_size: Optional[int] = None
) -> int:
    """A sensible persistence-chunk size for a batch of points.

    The chunk is the durability (and, for campaign workers, the lease)
    granularity: larger chunks amortise transaction overhead, smaller
    chunks lose less work on a kill and spread a shared grid more evenly
    across workers.  Single-consumer batches default to the pool size (or
    one point serially); with N cooperating workers the chunk shrinks so
    every worker claims several times — about four claims each — keeping
    the tail imbalance and the worst-case crash loss small.

    Raises:
        ConfigurationError: If *workers* is not positive.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if num_points <= 0:
        return 1
    if workers == 1:
        return max(1, pool_size or 1)
    per_claim = num_points // (workers * 4)
    return max(1, min(8, per_claim))


def iter_outcome_chunks(
    points: Sequence[SweepPoint],
    cache_dir: Optional[Union[str, os.PathLike]] = None,
    parallel: bool = False,
    processes: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> Iterator[List[PointOutcome]]:
    """Execute points in chunks, yielding each chunk's outcomes as it lands.

    This is the reusable batch backend behind campaign execution: callers
    persist every yielded chunk before the next one starts, so interrupting
    the process loses at most one in-flight chunk.  Chunks run over a single
    ``fork`` process pool when *parallel* is set (with the same serial
    fallback as :meth:`Sweep.run`); serial execution defaults to
    chunks of one — every completed point is durable immediately.

    Outcomes preserve point order within and across chunks.
    """
    remaining = list(points)
    if not remaining:
        return
    if parallel and len(remaining) > 1 and "fork" in get_all_start_methods():
        pool_size = processes or min(len(remaining), cpu_count())
        size = pool_size if chunk_size is None else chunk_size
        if size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {size}")
        context = get_context("fork")
        with context.Pool(processes=pool_size) as pool:
            for start in range(0, len(remaining), size):
                chunk = remaining[start : start + size]
                yield pool.starmap(
                    execute_point_outcome,
                    [(sweep_point, cache_dir) for sweep_point in chunk],
                )
        return
    size = 1 if chunk_size is None else chunk_size
    if size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {size}")
    for start in range(0, len(remaining), size):
        chunk = remaining[start : start + size]
        yield [execute_point_outcome(sweep_point, cache_dir) for sweep_point in chunk]


class Sweep:
    """A set of experiment points executed serially or over worker processes.

    Example::

        sweep = Sweep(cache_dir=".sweep-cache")
        for params in grid(seed=[0, 1, 2]):
            sweep.add(run_fig4, label=f"seed{params['seed']}", **params)
        results = sweep.run(parallel=True)
    """

    def __init__(
        self,
        points: Optional[Iterable[SweepPoint]] = None,
        cache_dir: Optional[Union[str, os.PathLike]] = None,
        processes: Optional[int] = None,
    ) -> None:
        self.points: List[SweepPoint] = list(points or [])
        self.cache_dir = cache_dir
        self.processes = processes

    def add(
        self,
        function: Union[str, Callable[..., Any]],
        label: Optional[str] = None,
        **params: Any,
    ) -> "Sweep":
        """Append a point; returns ``self`` for chaining."""
        self.points.append(point(function, label=label, **params))
        return self

    def run(self, parallel: bool = False) -> List[Any]:
        """Execute every point, preserving point order in the result list.

        Args:
            parallel: Fan the points out over a process pool.  Falls back
                to serial execution when fewer than two points exist or the
                platform offers no ``fork`` start method (worker processes
                must be able to resolve the point functions).
        """
        if not self.points:
            return []
        if parallel and len(self.points) > 1 and "fork" in get_all_start_methods():
            processes = self.processes or min(len(self.points), cpu_count())
            context = get_context("fork")
            with context.Pool(processes=processes) as pool:
                return pool.starmap(
                    execute_point,
                    [(sweep_point, self.cache_dir) for sweep_point in self.points],
                )
        return [execute_point(sweep_point, self.cache_dir) for sweep_point in self.points]

    def run_labelled(self, parallel: bool = False) -> Dict[str, Any]:
        """Like :meth:`run` but keyed by point label (labels must be unique)."""
        labels = [sweep_point.label for sweep_point in self.points]
        if len(set(labels)) != len(labels):
            raise ConfigurationError(f"sweep labels are not unique: {labels}")
        return dict(zip(labels, self.run(parallel=parallel), strict=True))

    def cached_points(self) -> List[SweepPoint]:
        """The points whose results are already on disk."""
        if not self.cache_dir:
            return []
        return [
            sweep_point
            for sweep_point in self.points
            if _cache_file(self.cache_dir, sweep_point).exists()
        ]

    def clear_cache(self) -> int:
        """Delete this sweep's cached results; returns how many were removed."""
        removed = 0
        if not self.cache_dir:
            return removed
        for sweep_point in self.points:
            cache_path = _cache_file(self.cache_dir, sweep_point)
            if cache_path.exists():
                cache_path.unlink()
                removed += 1
        return removed


def run_sweep(
    function: Union[str, Callable[..., Any]],
    points: Sequence[Mapping[str, Any]],
    labels: Optional[Sequence[str]] = None,
    parallel: bool = False,
    cache_dir: Optional[Union[str, os.PathLike]] = None,
    processes: Optional[int] = None,
) -> List[Any]:
    """Convenience wrapper: one function evaluated at many parameter points."""
    sweep = Sweep(cache_dir=cache_dir, processes=processes)
    for index, params in enumerate(points):
        label = labels[index] if labels is not None else f"point-{index}"
        sweep.add(function, label=label, **params)
    return sweep.run(parallel=parallel)


def _parse_setting_value(text: str) -> Any:
    """A ``--set`` value: JSON when it parses, a bare string otherwise."""
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def apply_spec_setting(data: Dict[str, Any], target: str, value: Any) -> None:
    """Apply one ``SECTION.KEY`` override to a scenario spec dict, in place.

    This is the shared implementation behind the ``run-scenario --set`` flag
    and campaign parameter axes.  *target* addresses ``scenario.<field>``,
    a component section's parameter (``traffic.num_pairs``), one event's
    parameter (``events.0.time_s``) or a scheme's parameter by its label
    (``response.num_paths``).

    Raises:
        ConfigurationError: If the target does not address the spec.
    """
    section, dot, key = target.partition(".")
    if not dot or not key:
        raise ConfigurationError(
            f"setting target must look like SECTION.KEY, got {target!r}"
        )
    if section == "scenario":
        data[key] = value
        return
    if section in ("topology", "traffic", "power", "routing"):
        entry = data.get(section)
        if entry is None:
            raise ConfigurationError(
                f"setting {target!r}: the spec has no {section} section yet"
            )
        if isinstance(entry, str):
            entry = {"name": entry, "params": {}}
        entry.setdefault("params", {})[key] = value
        data[section] = entry
        return
    if section == "events":
        # events.<index>.<param> targets one entry of the events list.
        index_text, dot, param = key.partition(".")
        events = data.get("events", [])
        if not dot or not param or not index_text.isdigit():
            raise ConfigurationError(
                f"setting {target!r}: events overrides look like "
                "events.<index>.<param> (e.g. events.0.time_s)"
            )
        index = int(index_text)
        if index >= len(events):
            raise ConfigurationError(
                f"setting {target!r}: the spec has {len(events)} event(s); "
                f"index {index} is out of range"
            )
        event = events[index]
        if isinstance(event, str):
            event = {"name": event, "params": {}}
        event.setdefault("params", {})[param] = value
        events[index] = event
        data["events"] = events
        return
    # Otherwise the section names a scheme by its label.
    for index, scheme in enumerate(data.get("schemes", [])):
        label = scheme if isinstance(scheme, str) else scheme.get("label", scheme.get("name"))
        if label != section:
            continue
        if isinstance(scheme, str):
            scheme = {"name": scheme, "params": {}}
        scheme.setdefault("params", {})[key] = value
        data["schemes"][index] = scheme
        return
    raise ConfigurationError(
        f"setting {target!r}: {section!r} is neither a spec section "
        "(scenario/topology/traffic/power/routing/events) nor a scheme label"
    )


def _apply_setting(
    data: Dict[str, Any], setting: str, parser: argparse.ArgumentParser
) -> None:
    """Apply one ``SECTION.KEY=VALUE`` CLI override to a scenario spec dict.

    Wraps :func:`apply_spec_setting`, augmenting its generic errors with
    the run-scenario flag that fixes them.
    """
    target, separator, value_text = setting.partition("=")
    if not separator:
        parser.error(f"--set expects SECTION.KEY=VALUE, got {setting!r}")
    try:
        apply_spec_setting(data, target, _parse_setting_value(value_text))
    except ConfigurationError as error:
        message = str(error)
        if "section yet" in message:
            section = target.partition(".")[0]
            message += f" (give --{section} or a --spec file first)"
        elif "out of range" in message:
            message += " (add --event NAME first)"
        elif "events overrides look like" in message:
            message += " (e.g. --set events.0.time_s=900)"
        parser.error(f"--set {setting}: {message}")


def _run_scenario_command(argv: Sequence[str]) -> int:
    """``run-scenario``: execute one declarative scenario spec."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments run-scenario",
        description=(
            "Run a declarative scenario (topology x traffic x power x schemes). "
            "Start from a JSON spec file and/or compose one from flags."
        ),
    )
    parser.add_argument("--spec", help="scenario spec JSON file ('-' reads stdin)")
    parser.add_argument("--name", help="override the scenario name")
    parser.add_argument("--topology", help="registered topology name")
    parser.add_argument("--traffic", help="registered traffic workload name")
    parser.add_argument("--power", help="registered power model name")
    parser.add_argument("--routing", help="registered baseline routing name")
    parser.add_argument(
        "--scheme",
        action="append",
        metavar="NAME",
        help="registered scheme name (repeatable; replaces the spec's schemes)",
    )
    parser.add_argument(
        "--event",
        action="append",
        metavar="NAME",
        help=(
            "registered event kind appended to the spec's events "
            "(repeatable; parameterise with --set events.<index>.<param>=VALUE)"
        ),
    )
    parser.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="SECTION.KEY=VALUE",
        help=(
            "override a parameter; SECTION is scenario, topology, traffic, "
            "power, routing, events.<index> or a scheme label "
            "(e.g. --set traffic.num_pairs=40, --set events.0.time_s=900)"
        ),
    )
    parser.add_argument(
        "--cache-dir", default=None, help="cache the result keyed by the spec's config hash"
    )
    parser.add_argument(
        "--json", action="store_true", help="print the full result as JSON"
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="also write the full result as JSON to PATH (for post-processing)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="append an NDJSON span trace of the run to PATH",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a phase-timing breakdown (build/calibrate/solve/allocate)",
    )
    args = parser.parse_args(argv)

    from ..scenario import ScenarioSpec  # deferred: keeps plain sweeps import-light

    data: Dict[str, Any] = {}
    if args.spec:
        if args.spec == "-":
            import sys

            data = json.loads(sys.stdin.read())
        else:
            with open(args.spec, "r", encoding="utf-8") as handle:
                data = json.load(handle)
    for section, override in (
        ("topology", args.topology),
        ("traffic", args.traffic),
        ("power", args.power),
        ("routing", args.routing),
    ):
        if override:
            data[section] = override  # a bare name resets the section's params
    if args.scheme:
        data["schemes"] = list(args.scheme)
    if args.event:
        data["events"] = list(data.get("events", [])) + list(args.event)
    if args.name:
        data["name"] = args.name
    for setting in args.set:
        _apply_setting(data, setting, parser)
    missing = [s for s in ("topology", "traffic", "power") if s not in data]
    if missing:
        parser.error(
            f"scenario is missing {', '.join(missing)}; give --spec and/or "
            "--topology/--traffic/--power (see list-components for names)"
        )
    if not data.get("schemes"):
        parser.error("scenario names no schemes; add --scheme NAME at least once")

    try:
        spec = ScenarioSpec.from_dict(data).validate()
    except ConfigurationError as error:
        parser.error(str(error))

    sweep_point = spec.sweep_point()
    sweep = Sweep([sweep_point], cache_dir=args.cache_dir)
    cache_state = (
        "disabled"
        if not args.cache_dir
        else ("hit" if sweep.cached_points() else "miss")
    )
    if args.trace:
        trace.configure_tracing(args.trace)
    phase_collector = trace.PhaseCollector() if args.profile else None
    run_start = time.perf_counter()
    try:
        if phase_collector is not None:
            with trace.collect(phase_collector):
                result = sweep.run()[0]
        else:
            result = sweep.run()[0]
    finally:
        run_elapsed = time.perf_counter() - run_start
        if args.trace:
            trace.disable_tracing()

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        if phase_collector is not None:
            import sys

            _print_phases(
                phase_collector.phases(run_elapsed), stream=sys.stderr
            )
        return 0
    print(f"scenario: {result.name}")
    print(f"config hash: {result.config_hash} (cache {cache_state})")
    print(f"intervals: {len(result.times_s)}")
    for event in result.events:
        described = {
            k: v for k, v in event.items() if k not in ("time_s", "kind")
        }
        print(f"  event t={event['time_s']:g}s: {event['kind']} {described}")
    for label, stats in result.summary().items():
        print(
            f"  {label}: mean power {stats['mean_power_percent']:.1f}% "
            f"(savings {stats['mean_savings_percent']:.1f}%), "
            f"recomputations {int(stats['recomputations'])}"
        )
    if phase_collector is not None:
        _print_phases(phase_collector.phases(run_elapsed))
    if args.trace:
        print(f"trace: {args.trace}")
    return 0


def _print_phases(phases: Mapping[str, float], stream: Any = None) -> None:
    """Print a ``--profile`` phase breakdown (one aligned line per phase)."""
    total = sum(phases.values()) or 1.0
    print("phase timings:", file=stream)
    for name in trace.PHASE_NAMES:
        seconds = phases.get(name, 0.0)
        print(
            f"  {name:<10} {seconds:8.3f}s  {100.0 * seconds / total:5.1f}%",
            file=stream,
        )


def _list_components_command(argv: Sequence[str]) -> int:
    """``list-components``: show every registered scenario component.

    Every registry kind is enumerated — including the dynamic ``event``
    kinds — so each axis of a campaign spec (topologies, traffic models,
    schemes, event schedules) is discoverable from the command line; with
    ``--json`` the listing is machine-readable for campaign tooling.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments list-components",
        description=(
            "List the registered scenario components per kind "
            "(topology/traffic/power/routing/scheme/event — every axis a "
            "scenario or campaign spec can name)."
        ),
    )
    parser.add_argument(
        "--kind",
        choices=("topology", "traffic", "power", "routing", "scheme", "event"),
        help="only this component kind",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the listing as JSON ({kind: [names...]})",
    )
    args = parser.parse_args(argv)

    from ..scenario import registered_components, resolve

    listing = {
        kind: names
        for kind, names in registered_components().items()
        if not args.kind or kind == args.kind
    }
    if args.json:
        print(json.dumps(listing, indent=2, sort_keys=True))
        return 0
    for kind, names in listing.items():
        print(f"{kind}:")
        for name in names:
            doc = inspect.getdoc(resolve(kind, name)) or ""
            summary = doc.splitlines()[0] if doc else ""
            print(f"  {name:<20} {summary}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point: figures as a sweep, plus scenario subcommands."""
    import sys

    arguments = list(argv) if argv is not None else sys.argv[1:]
    if arguments and arguments[0] == "run-scenario":
        return _run_scenario_command(arguments[1:])
    if arguments and arguments[0] == "list-components":
        return _list_components_command(arguments[1:])
    if arguments and arguments[0] in (
        "run-campaign",
        "campaign-status",
        "campaign-report",
    ):
        # Deferred import: plain figure sweeps stay campaign-free.
        from ..campaign.cli import campaign_command

        return campaign_command(arguments[0], arguments[1:])
    if arguments and arguments[0] == "serve":
        # Deferred import: the service stack only loads when served.
        from ..service.cli import serve_command

        return serve_command(arguments[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=(
            "Run figure reproductions, optionally in parallel with caching. "
            "Subcommands: 'run-scenario' executes a declarative scenario "
            "spec, 'list-components' shows the registered building blocks, "
            "'run-campaign'/'campaign-status'/'campaign-report' drive "
            "declarative scenario grids with a persistent results store, "
            "'serve' runs the scenario service (HTTP API with streaming "
            "replay telemetry)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="registered experiment names (see --list); default: all",
    )
    parser.add_argument("--list", action="store_true", help="list registered experiments")
    parser.add_argument("--parallel", action="store_true", help="fan out over processes")
    parser.add_argument("--processes", type=int, default=None, help="pool size")
    parser.add_argument(
        "--cache-dir", default=None, help="cache per-point results under this directory"
    )
    args = parser.parse_args(arguments)

    if args.list:
        for name in sorted(FIGURE_REGISTRY):
            print(name)
        return 0

    requested = list(args.experiments) or sorted(FIGURE_REGISTRY)
    names = list(dict.fromkeys(requested))  # dedupe, preserving order
    unknown = [name for name in names if name not in FIGURE_REGISTRY]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)} (try --list)")

    sweep = Sweep(cache_dir=args.cache_dir, processes=args.processes)
    for name in names:
        sweep.add(FIGURE_REGISTRY[name], label=name)
    results = sweep.run_labelled(parallel=args.parallel)
    for name, result in results.items():
        print(f"{name}: {type(result).__name__}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
