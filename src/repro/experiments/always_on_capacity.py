"""Section 4.1 (text): how much traffic the always-on paths alone can carry.

Paper result: "the always-on paths alone can accommodate about 50 % of the
traffic volume that can be carried by the Cisco-recommended OSPF paths".
This experiment scales a gravity-shaped demand until (a) the OSPF-InvCap
routing and (b) the always-on routing saturate, and reports the ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.always_on import AlwaysOnConfig, compute_always_on
from ..power.model import PowerModel
from ..routing.paths import RoutingTable, max_link_utilisation
from ..scenario import PowerSpec, RoutingSpec, TopologySpec, TrafficSpec
from ..topology.base import Topology
from ..traffic.matrix import TrafficMatrix


@dataclass
class AlwaysOnCapacityResult:
    """Maximum feasible volumes under the two routings.

    Attributes:
        always_on_max_bps: Largest gravity-shaped volume the always-on paths
            carry without exceeding any link capacity.
        ospf_max_bps: Largest volume the OSPF-InvCap paths carry.
        capacity_fraction: Their ratio (paper: about 0.5).
    """

    always_on_max_bps: float
    ospf_max_bps: float

    @property
    def capacity_fraction(self) -> float:
        """Always-on capacity as a fraction of OSPF capacity."""
        if self.ospf_max_bps <= 0:
            return 0.0
        return self.always_on_max_bps / self.ospf_max_bps


def _max_feasible_volume(
    topology: Topology,
    routing: RoutingTable,
    base: TrafficMatrix,
    growth_step: float = 0.05,
    max_iterations: int = 400,
) -> float:
    """Largest scaled volume of *base* the fixed routing carries feasibly."""
    scale = 0.0
    current = growth_step
    for _ in range(max_iterations):
        candidate = base.scaled(current)
        if max_link_utilisation(topology, routing, candidate) > 1.0:
            break
        scale = current
        current += growth_step
    return base.total_bps * scale


def run_always_on_capacity(
    num_pairs: int = 150,
    num_endpoints: int = 26,
    topology: Optional[Topology] = None,
    power_model: Optional[PowerModel] = None,
    seed: int = 41,
) -> AlwaysOnCapacityResult:
    """Measure the always-on versus OSPF carrying capacity.

    Demands are uniform across the selected pairs: under a capacity-based
    gravity model both routings bottleneck on the same access links, which
    would hide the difference the paper reports (the always-on paths
    aggregate traffic in the core and saturate earlier there).
    """
    topo = topology or TopologySpec("genuity").build()
    model = power_model or PowerSpec("cisco").build(topo)
    # Restrict endpoints to PoPs with some path diversity (min_degree=3):
    # traffic terminating at a degree-1/2 stub saturates the same access link
    # under any routing, which would mask the core-capacity difference this
    # experiment measures.
    workload = TrafficSpec(
        "uniform",
        params=dict(
            total_traffic_bps=1e6,
            num_pairs=num_pairs,
            num_endpoints=num_endpoints,
            min_degree=3,
            name="uniform",
            seed=seed,
        ),
    ).build(topo)
    pairs, base = workload.pairs, workload.peak()

    always_on = compute_always_on(topo, model, pairs=pairs, config=AlwaysOnConfig(k=3))
    ospf = RoutingSpec("ospf-invcap").build(topo, pairs)

    always_on_max = _max_feasible_volume(topo, always_on.routing, base)
    ospf_max = _max_feasible_volume(topo, ospf, base)
    return AlwaysOnCapacityResult(
        always_on_max_bps=always_on_max, ospf_max_bps=ospf_max
    )
