"""Section 4.2 (text) ablation: the stress-factor exclusion fraction.

Paper claim: "Our sensitivity analysis shows that excluding 20 % of the links
with the highest stress is sufficient to produce a set of paths that together
with the always-on paths can accommodate peak-hour traffic demands."

This ablation sweeps the exclusion fraction and, for every value, measures
the largest gravity-shaped volume the combination of always-on and on-demand
paths can absorb (using the activation planner), relative to what the network
can carry at all.

The ablation rides the scenario ``events`` axis: passing ``events`` (e.g. a
``link-failure``) measures how much peak-hour load the precomputed paths
still absorb on the degraded topology — the sensitivity question the paper's
"react to failures in seconds" claim rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..core.always_on import AlwaysOnConfig, compute_always_on
from ..core.on_demand import OnDemandConfig, compute_on_demand
from ..core.plan import ResponsePlan
from ..core.planner import activate_paths
from ..exceptions import ConfigurationError
from ..power.model import PowerModel
from ..scenario import (
    EventSpec,
    PowerSpec,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
    build_scenario,
)
from ..scenario.timeline import TopologyChange, resolve_events
from ..simulator.failures import TopologyView
from ..topology.base import Topology
from ..traffic.matrix import TrafficMatrix


@dataclass
class StressAblationResult:
    """Absorbable load versus stress-exclusion fraction.

    Attributes:
        fractions: The evaluated exclusion fractions.
        absorbable_load_fraction: For each fraction, the largest multiple of
            the calibrated maximum load that the always-on plus on-demand
            paths absorb without exceeding the utilisation threshold.
        events: The injected events (JSON-ready records) the absorbable
            load was measured under (empty = intact network).
    """

    fractions: List[float]
    absorbable_load_fraction: List[float]
    events: List[dict] = field(default_factory=list)

    def rows(self) -> List[tuple]:
        """Report rows: (exclusion fraction, absorbable multiple of the peak)."""
        return list(zip(self.fractions, self.absorbable_load_fraction, strict=True))

    def absorbs_peak(self, fraction: float) -> bool:
        """Whether the plan built with this exclusion fraction absorbs the peak."""
        index = self.fractions.index(fraction)
        return self.absorbable_load_fraction[index] >= 1.0 - 1e-9

    def best_fraction(self) -> float:
        """The exclusion fraction absorbing the most load (ties → smallest)."""
        best_index = max(
            range(len(self.fractions)),
            key=lambda index: (self.absorbable_load_fraction[index], -self.fractions[index]),
        )
        return self.fractions[best_index]


def run_stress_ablation(
    fractions: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4),
    num_pairs: int = 110,
    num_endpoints: int = 16,
    trace_days: int = 1,
    utilisation_threshold: float = 0.95,
    topology: Optional[Topology] = None,
    power_model: Optional[PowerModel] = None,
    seed: int = 42,
    events: Sequence[Union[EventSpec, Mapping[str, Any], str]] = (),
) -> StressAblationResult:
    """Sweep the stress-factor exclusion fraction on a GÉANT-like network.

    The "peak" against which every plan is measured is the element-wise peak
    of the synthetic GÉANT trace (the paper's peak-hour demands), not the
    theoretical maximum the full network could carry.

    Args:
        events: Optional scenario events (``EventSpec`` entries or their
            dict/name forms).  Topology events are applied before measuring —
            the plans are still computed offline on the intact network, so
            the result answers "how much peak load do the precomputed paths
            absorb after this failure?".
    """
    spec = ScenarioSpec(
        name="stress-ablation",
        topology=TopologySpec("geant"),
        traffic=TrafficSpec(
            "geant-trace",
            num_days=trace_days,
            num_pairs=num_pairs,
            num_endpoints=num_endpoints,
            seed=seed,
        ),
        power=PowerSpec("cisco"),
        utilisation_threshold=utilisation_threshold,
        events=tuple(EventSpec.from_dict(event) for event in events),
    )
    built = build_scenario(spec, topology=topology, power_model=power_model)
    topo, model, pairs = built.topology, built.power_model, built.pairs
    peak = built.trace.peak_matrix()
    view, event_records = _final_view(topo, built.spec.events)

    always_on = compute_always_on(topo, model, pairs=pairs, config=AlwaysOnConfig(k=3))

    absorbed: List[float] = []
    for fraction in fractions:
        on_demand = compute_on_demand(
            topo,
            model,
            always_on,
            pairs=pairs,
            config=OnDemandConfig(
                method="stress", stress_exclude_fraction=fraction, k=3
            ),
        )
        plan = ResponsePlan(
            always_on=always_on,
            on_demand=on_demand,
            failover=None,
            topology_name=topo.name,
            variant=f"stress-{fraction:.2f}",
        )
        absorbed.append(
            _max_absorbable_fraction(
                topo, model, plan, peak, utilisation_threshold, view=view
            )
        )
    return StressAblationResult(
        fractions=list(fractions),
        absorbable_load_fraction=absorbed,
        events=event_records,
    )


def _final_view(
    topology: Topology, events: Sequence[EventSpec]
) -> Tuple[Optional[TopologyView], List[dict]]:
    """The topology view after every scheduled topology event has fired."""
    failed_links: Set[Tuple[str, str]] = set()
    failed_nodes: Set[str] = set()
    records: List[dict] = []
    for event in resolve_events(events):
        if not isinstance(event, TopologyChange):
            # The ablation has no time axis to honour a surge window on;
            # rejecting beats silently reporting intact-network numbers.
            raise ConfigurationError(
                f"stress ablation only supports topology events, got "
                f"{event.kind!r}; scale the measured load via `fractions` instead"
            )
        records.append(event.record())
        scheduled = event.to_scheduled()
        if event.element == "link":
            key = tuple(sorted(scheduled.link))
            if event.action == "fail":
                failed_links.add(key)
            else:
                failed_links.discard(key)
        else:
            if event.action == "fail":
                failed_nodes.add(scheduled.node)
            else:
                failed_nodes.discard(scheduled.node)
    if not failed_links and not failed_nodes:
        return None, records
    view = TopologyView(topology, failed_links=failed_links, failed_nodes=failed_nodes)
    return view, records


def _max_absorbable_fraction(
    topology: Topology,
    power_model: PowerModel,
    plan: ResponsePlan,
    peak: TrafficMatrix,
    utilisation_threshold: float,
    step: float = 0.1,
    limit: float = 3.0,
    view: Optional[TopologyView] = None,
) -> float:
    """Largest multiple of the peak matrix placed without overload.

    With a failure-carrying *view*, installed paths crossing failed elements
    are unusable during activation (the plans themselves stay as computed
    offline on the intact network).
    """
    failed = set(view.unusable_links()) if view is not None else None
    feasible = 0.0
    fraction = step
    while fraction <= limit + 1e-9:
        activation = activate_paths(
            topology,
            power_model,
            plan,
            peak.scaled(fraction),
            utilisation_threshold=utilisation_threshold,
            include_failover=failed is not None,
            failed_links=failed,
        )
        if activation.overloaded_pairs:
            break
        feasible = fraction
        fraction += step
    return feasible
