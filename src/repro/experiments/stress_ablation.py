"""Section 4.2 (text) ablation: the stress-factor exclusion fraction.

Paper claim: "Our sensitivity analysis shows that excluding 20 % of the links
with the highest stress is sufficient to produce a set of paths that together
with the always-on paths can accommodate peak-hour traffic demands."

This ablation sweeps the exclusion fraction and, for every value, measures
the largest gravity-shaped volume the combination of always-on and on-demand
paths can absorb (using the activation planner), relative to what the network
can carry at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.always_on import AlwaysOnConfig, compute_always_on
from ..core.on_demand import OnDemandConfig, compute_on_demand
from ..core.plan import ResponsePlan
from ..core.planner import activate_paths
from ..power.model import PowerModel
from ..scenario import (
    PowerSpec,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
    build_scenario,
)
from ..topology.base import Topology
from ..traffic.matrix import TrafficMatrix


@dataclass
class StressAblationResult:
    """Absorbable load versus stress-exclusion fraction.

    Attributes:
        fractions: The evaluated exclusion fractions.
        absorbable_load_fraction: For each fraction, the largest multiple of
            the calibrated maximum load that the always-on plus on-demand
            paths absorb without exceeding the utilisation threshold.
    """

    fractions: List[float]
    absorbable_load_fraction: List[float]

    def rows(self) -> List[tuple]:
        """Report rows: (exclusion fraction, absorbable multiple of the peak)."""
        return list(zip(self.fractions, self.absorbable_load_fraction))

    def absorbs_peak(self, fraction: float) -> bool:
        """Whether the plan built with this exclusion fraction absorbs the peak."""
        index = self.fractions.index(fraction)
        return self.absorbable_load_fraction[index] >= 1.0 - 1e-9

    def best_fraction(self) -> float:
        """The exclusion fraction absorbing the most load (ties → smallest)."""
        best_index = max(
            range(len(self.fractions)),
            key=lambda index: (self.absorbable_load_fraction[index], -self.fractions[index]),
        )
        return self.fractions[best_index]


def run_stress_ablation(
    fractions: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4),
    num_pairs: int = 110,
    num_endpoints: int = 16,
    trace_days: int = 1,
    utilisation_threshold: float = 0.95,
    topology: Optional[Topology] = None,
    power_model: Optional[PowerModel] = None,
    seed: int = 42,
) -> StressAblationResult:
    """Sweep the stress-factor exclusion fraction on a GÉANT-like network.

    The "peak" against which every plan is measured is the element-wise peak
    of the synthetic GÉANT trace (the paper's peak-hour demands), not the
    theoretical maximum the full network could carry.
    """
    spec = ScenarioSpec(
        name="stress-ablation",
        topology=TopologySpec("geant"),
        traffic=TrafficSpec(
            "geant-trace",
            num_days=trace_days,
            num_pairs=num_pairs,
            num_endpoints=num_endpoints,
            seed=seed,
        ),
        power=PowerSpec("cisco"),
        utilisation_threshold=utilisation_threshold,
    )
    built = build_scenario(spec, topology=topology, power_model=power_model)
    topo, model, pairs = built.topology, built.power_model, built.pairs
    peak = built.trace.peak_matrix()

    always_on = compute_always_on(topo, model, pairs=pairs, config=AlwaysOnConfig(k=3))

    absorbed: List[float] = []
    for fraction in fractions:
        on_demand = compute_on_demand(
            topo,
            model,
            always_on,
            pairs=pairs,
            config=OnDemandConfig(
                method="stress", stress_exclude_fraction=fraction, k=3
            ),
        )
        plan = ResponsePlan(
            always_on=always_on,
            on_demand=on_demand,
            failover=None,
            topology_name=topo.name,
            variant=f"stress-{fraction:.2f}",
        )
        absorbed.append(
            _max_absorbable_fraction(topo, model, plan, peak, utilisation_threshold)
        )
    return StressAblationResult(
        fractions=list(fractions), absorbable_load_fraction=absorbed
    )


def _max_absorbable_fraction(
    topology: Topology,
    power_model: PowerModel,
    plan: ResponsePlan,
    peak: TrafficMatrix,
    utilisation_threshold: float,
    step: float = 0.1,
    limit: float = 3.0,
) -> float:
    """Largest multiple of the peak matrix placed without overload."""
    feasible = 0.0
    fraction = step
    while fraction <= limit + 1e-9:
        activation = activate_paths(
            topology,
            power_model,
            plan,
            peak.scaled(fraction),
            utilisation_threshold=utilisation_threshold,
        )
        if activation.overloaded_pairs:
            break
        feasible = fraction
        fraction += step
    return feasible
