"""``python -m repro.experiments`` — run figure reproductions as a sweep."""

from .runner import main

if __name__ == "__main__":
    raise SystemExit(main())
