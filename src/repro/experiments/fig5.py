"""Figure 5: REsPoNse power consumption for the GÉANT traffic replay.

Paper result: replaying 15 days of GÉANT traffic matrices, REsPoNse saves
about 30 % of the network power with today's hardware model and about 42 %
with the alternative (energy-proportional chassis) model, the power varies
little despite large demand swings (the always-on paths absorb the traffic
most of the time), and a single off-line computation of the always-on and
on-demand paths suffices for the whole period.  The OSPF baseline keeps every
element busy and stays at ~100 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.planner import activate_paths
from ..core.response import ResponseConfig, build_response_plan
from ..power.alternative import AlternativeHardwarePowerModel
from ..power.cisco import CiscoRouterPowerModel
from ..topology.geant import build_geant
from ..traffic.geant_trace import generate_geant_trace
from ..traffic.matrix import select_pairs_among_subset


@dataclass
class Fig5Result:
    """Power time series of the Figure 5 reproduction.

    Attributes:
        times_s: Interval start times (seconds since trace start).
        power_percent: Power (% of original) per curve: ``"ospf"``,
            ``"response"`` and ``"response_alternative_hw"``.
        mean_savings_percent: Average savings per curve.
        recomputations_needed: Number of times the plan had to be recomputed
            during the replay (always zero: the plan is computed once).
    """

    times_s: List[float]
    power_percent: Dict[str, List[float]]
    mean_savings_percent: Dict[str, float]
    recomputations_needed: int = 0

    def rows(self) -> List[tuple]:
        """Plotted rows: (time, ospf, response, response alternative HW)."""
        return [
            (
                time,
                self.power_percent["ospf"][index],
                self.power_percent["response"][index],
                self.power_percent["response_alternative_hw"][index],
            )
            for index, time in enumerate(self.times_s)
        ]


def run_fig5(
    num_days: int = 3,
    num_pairs: int = 110,
    num_endpoints: int = 20,
    subsample: int = 2,
    utilisation_threshold: float = 0.9,
    peak_total_bps: Optional[float] = None,
    seed: int = 2005,
) -> Fig5Result:
    """Reproduce Figure 5 on the synthetic GÉANT trace.

    Args:
        num_days: Days of trace replayed (paper: 15).
        num_pairs: Random origin-destination pairs carrying traffic.
        num_endpoints: Size of the random subset of PoPs acting as origins
            and destinations (the paper's "random subsets ... as in [24]").
        subsample: Keep every ``subsample``-th 15-minute interval.
        utilisation_threshold: REsPoNseTE's link-utilisation SLO.
        peak_total_bps: Override the trace's peak aggregate demand.
        seed: Trace generator seed.
    """
    topology = build_geant()
    pairs = select_pairs_among_subset(
        topology.routers(), num_endpoints, num_pairs, seed=seed
    )
    trace_kwargs = dict(num_days=num_days, pairs=pairs, seed=seed)
    if peak_total_bps is not None:
        trace_kwargs["peak_total_bps"] = peak_total_bps
    trace = generate_geant_trace(topology, **trace_kwargs)
    if subsample > 1:
        trace = trace.subsampled(subsample)

    power_percent: Dict[str, List[float]] = {
        "ospf": [],
        "response": [],
        "response_alternative_hw": [],
    }
    models = {
        "response": CiscoRouterPowerModel(),
        "response_alternative_hw": AlternativeHardwarePowerModel(),
    }
    plans = {
        label: build_response_plan(
            topology,
            model,
            pairs=pairs,
            config=ResponseConfig(num_paths=3, k=3),
        )
        for label, model in models.items()
    }

    for interval in trace:
        # OSPF keeps the whole network busy: 100 % of the original power.
        power_percent["ospf"].append(100.0)
        for label, model in models.items():
            activation = activate_paths(
                topology,
                model,
                plans[label],
                interval.matrix,
                utilisation_threshold=utilisation_threshold,
            )
            power_percent[label].append(activation.power_percent)

    mean_savings = {
        label: 100.0 - sum(series) / len(series)
        for label, series in power_percent.items()
    }
    return Fig5Result(
        times_s=trace.timestamps(),
        power_percent=power_percent,
        mean_savings_percent=mean_savings,
        recomputations_needed=0,
    )
