"""Figure 5: REsPoNse power consumption for the GÉANT traffic replay.

Paper result: replaying 15 days of GÉANT traffic matrices, REsPoNse saves
about 30 % of the network power with today's hardware model and about 42 %
with the alternative (energy-proportional chassis) model, the power varies
little despite large demand swings (the always-on paths absorb the traffic
most of the time), and a single off-line computation of the always-on and
on-demand paths suffices for the whole period.  The OSPF baseline keeps every
element busy and stays at ~100 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..scenario import (
    PowerSpec,
    ScenarioSpec,
    SchemeSpec,
    TopologySpec,
    TrafficSpec,
    run_scenario,
)


@dataclass
class Fig5Result:
    """Power time series of the Figure 5 reproduction.

    Attributes:
        times_s: Interval start times (seconds since trace start).
        power_percent: Power (% of original) per curve: ``"ospf"``,
            ``"response"`` and ``"response_alternative_hw"``.
        mean_savings_percent: Average savings per curve.
        recomputations_needed: Number of times the plan had to be recomputed
            during the replay (always zero: the plan is computed once).
    """

    times_s: List[float]
    power_percent: Dict[str, List[float]]
    mean_savings_percent: Dict[str, float]
    recomputations_needed: int = 0

    def rows(self) -> List[tuple]:
        """Plotted rows: (time, ospf, response, response alternative HW)."""
        return [
            (
                time,
                self.power_percent["ospf"][index],
                self.power_percent["response"][index],
                self.power_percent["response_alternative_hw"][index],
            )
            for index, time in enumerate(self.times_s)
        ]


def fig5_scenario_spec(
    power: str,
    num_days: int = 3,
    num_pairs: int = 110,
    num_endpoints: int = 20,
    subsample: int = 2,
    utilisation_threshold: float = 0.9,
    peak_total_bps: Optional[float] = None,
    seed: int = 2005,
    include_ospf: bool = False,
) -> ScenarioSpec:
    """The Figure 5 replay under one power model (``cisco``/``alternative``)."""
    traffic_params: Dict[str, object] = dict(
        num_days=num_days,
        num_pairs=num_pairs,
        num_endpoints=num_endpoints,
        subsample=subsample,
        seed=seed,
    )
    if peak_total_bps is not None:
        traffic_params["peak_total_bps"] = peak_total_bps
    schemes = [SchemeSpec("response", num_paths=3, k=3)]
    if include_ospf:
        schemes.append(SchemeSpec("ospf"))
    return ScenarioSpec(
        name=f"fig5-{power}",
        topology=TopologySpec("geant"),
        traffic=TrafficSpec("geant-trace", params=traffic_params),
        power=PowerSpec(power),
        schemes=tuple(schemes),
        utilisation_threshold=utilisation_threshold,
    )


def run_fig5(
    num_days: int = 3,
    num_pairs: int = 110,
    num_endpoints: int = 20,
    subsample: int = 2,
    utilisation_threshold: float = 0.9,
    peak_total_bps: Optional[float] = None,
    seed: int = 2005,
) -> Fig5Result:
    """Reproduce Figure 5 on the synthetic GÉANT trace.

    One declarative scenario per hardware model (the trace and pair
    selection are deterministic given the seed, so both replay identical
    demands); the OSPF baseline rides on the first.

    Args:
        num_days: Days of trace replayed (paper: 15).
        num_pairs: Random origin-destination pairs carrying traffic.
        num_endpoints: Size of the random subset of PoPs acting as origins
            and destinations (the paper's "random subsets ... as in [24]").
        subsample: Keep every ``subsample``-th 15-minute interval.
        utilisation_threshold: REsPoNseTE's link-utilisation SLO.
        peak_total_bps: Override the trace's peak aggregate demand.
        seed: Trace generator seed.
    """
    results = {}
    for label, power in (("response", "cisco"), ("response_alternative_hw", "alternative")):
        spec = fig5_scenario_spec(
            power,
            num_days=num_days,
            num_pairs=num_pairs,
            num_endpoints=num_endpoints,
            subsample=subsample,
            utilisation_threshold=utilisation_threshold,
            peak_total_bps=peak_total_bps,
            seed=seed,
            include_ospf=(label == "response"),
        )
        results[label] = run_scenario(spec)

    power_percent: Dict[str, List[float]] = {
        "ospf": results["response"].power_percent["ospf"],
        "response": results["response"].power_percent["response"],
        "response_alternative_hw": results["response_alternative_hw"].power_percent[
            "response"
        ],
    }
    mean_savings = {
        label: 100.0 - sum(series) / len(series)
        for label, series in power_percent.items()
    }
    return Fig5Result(
        times_s=results["response"].times_s,
        power_percent=power_percent,
        mean_savings_percent=mean_savings,
        recomputations_needed=0,
    )
