"""Shared helpers for the per-figure experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..optim.greente import greente_heuristic
from ..optim.solution import EnergyAwareSolution
from ..power.model import PowerModel
from ..routing.ksp import k_shortest_paths_all_pairs
from ..routing.paths import RoutingConfiguration, RoutingTable
from ..topology.base import Topology
from ..traffic.matrix import Pair, TrafficMatrix
from ..traffic.replay import TrafficTrace

#: Signature of a per-interval energy-aware solver.
IntervalSolver = Callable[[Topology, PowerModel, TrafficMatrix], EnergyAwareSolution]


def greente_interval_solver(
    k: int = 5,
    utilisation_limit: float = 1.0,
) -> IntervalSolver:
    """A fast per-interval solver for trace replays.

    The recomputation-rate and energy-critical-path analyses (Figures 1b, 2a,
    2b) must recompute an energy-aware routing for every interval of a long
    trace.  The exact MILP would make that prohibitively slow, so — exactly
    like the state-of-the-art heuristics the paper discusses — the replay uses
    the GreenTE-style greedy solver.  Candidate paths are computed once per
    call; callers replaying many intervals should use
    :func:`per_interval_solutions`, which caches them.
    """

    def solver(
        topology: Topology, power_model: PowerModel, demands: TrafficMatrix
    ) -> EnergyAwareSolution:
        return greente_heuristic(
            topology,
            power_model,
            demands,
            k=k,
            utilisation_limit=utilisation_limit,
            allow_overload=True,
        )

    return solver


def per_interval_solutions(
    topology: Topology,
    power_model: PowerModel,
    trace: TrafficTrace,
    k: int = 5,
    utilisation_limit: float = 1.0,
) -> List[EnergyAwareSolution]:
    """Recompute the energy-aware routing for every interval of a trace.

    Candidate k-shortest paths are computed once and reused across intervals,
    which keeps long replays tractable.
    """
    pairs: List[Pair] = sorted(
        {pair for matrix in trace.matrices() for pair in matrix.pairs()}
    )
    candidates = k_shortest_paths_all_pairs(topology, k, pairs=pairs)
    solutions: List[EnergyAwareSolution] = []
    for matrix in trace.matrices():
        solutions.append(
            greente_heuristic(
                topology,
                power_model,
                matrix,
                k=k,
                utilisation_limit=utilisation_limit,
                candidate_paths=candidates,
                allow_overload=True,
                ordering="stable",
            )
        )
    return solutions


def configurations_of(solutions: Sequence[EnergyAwareSolution]) -> List[RoutingConfiguration]:
    """The active-element configuration of each per-interval solution."""
    return [
        RoutingConfiguration(
            frozenset(solution.active_nodes), frozenset(solution.active_links)
        )
        for solution in solutions
    ]


def routings_of(solutions: Sequence[EnergyAwareSolution]) -> List[RoutingTable]:
    """The routing table of each per-interval solution."""
    tables: List[RoutingTable] = []
    for solution in solutions:
        if solution.routing is None:
            raise ValueError("per-interval solution carries no routing table")
        tables.append(solution.routing)
    return tables
