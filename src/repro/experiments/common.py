"""Shared helpers for the per-figure experiment drivers.

The per-interval GreenTE replay used by the recomputation-rate and
energy-critical-path analyses is implemented once, in
:func:`repro.scenario.schemes.greente_replay` (candidate paths computed once
per replay and shared across intervals); the helpers here are thin wrappers
keeping the historical driver-facing signatures.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from ..optim.solution import EnergyAwareSolution
from ..power.model import PowerModel
from ..routing.paths import RoutingConfiguration, RoutingTable
from ..scenario.schemes import CachedCandidatePaths, greente_replay
from ..topology.base import Topology
from ..traffic.matrix import Pair, TrafficMatrix
from ..traffic.replay import TrafficTrace

#: Signature of a per-interval energy-aware solver.
IntervalSolver = Callable[[Topology, PowerModel, TrafficMatrix], EnergyAwareSolution]


def greente_interval_solver(
    k: int = 5,
    utilisation_limit: float = 1.0,
    ordering: str = "demand",
) -> IntervalSolver:
    """A fast per-interval solver for trace replays.

    The recomputation-rate and energy-critical-path analyses (Figures 1b, 2a,
    2b) must recompute an energy-aware routing for every interval of a long
    trace.  The exact MILP would make that prohibitively slow, so — exactly
    like the state-of-the-art heuristics the paper discusses — the replay uses
    the GreenTE-style greedy solver.  The returned solver caches its candidate
    k-shortest paths per (topology, pair set) across calls, so replaying many
    intervals pays for the candidate computation once (the same cached-path
    machinery backs :func:`per_interval_solutions` and the registered
    ``greente`` scenario scheme).
    """
    cache = CachedCandidatePaths(k)

    def solver(
        topology: Topology, power_model: PowerModel, demands: TrafficMatrix
    ) -> EnergyAwareSolution:
        return greente_replay(
            topology,
            power_model,
            [demands],
            k=k,
            utilisation_limit=utilisation_limit,
            pairs=demands.pairs(),
            ordering=ordering,
            candidates=cache,
        )[0]

    return solver


def per_interval_solutions(
    topology: Topology,
    power_model: PowerModel,
    trace: TrafficTrace,
    k: int = 5,
    utilisation_limit: float = 1.0,
) -> List[EnergyAwareSolution]:
    """Recompute the energy-aware routing for every interval of a trace.

    Candidate k-shortest paths are computed once for the union of pairs over
    the whole trace and reused across intervals, which keeps long replays
    tractable.
    """
    pairs: List[Pair] = sorted(
        {pair for matrix in trace.matrices() for pair in matrix.pairs()}
    )
    return greente_replay(
        topology,
        power_model,
        trace.matrices(),
        k=k,
        utilisation_limit=utilisation_limit,
        pairs=pairs,
        ordering="stable",
    )


def configurations_of(solutions: Sequence[EnergyAwareSolution]) -> List[RoutingConfiguration]:
    """The active-element configuration of each per-interval solution."""
    return [
        RoutingConfiguration(
            frozenset(solution.active_nodes), frozenset(solution.active_links)
        )
        for solution in solutions
    ]


def routings_of(solutions: Sequence[EnergyAwareSolution]) -> List[RoutingTable]:
    """The routing table of each per-interval solution."""
    tables: List[RoutingTable] = []
    for solution in solutions:
        if solution.routing is None:
            raise ValueError("per-interval solution carries no routing table")
        tables.append(solution.routing)
    return tables
