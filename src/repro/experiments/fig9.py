"""Figure 9 and Section 5.4: application performance over REsPoNse paths.

Paper setup (ModelNet, Abovenet topology): a BulletMedia live stream at
600 kb/s to 50 participants (a load the always-on paths absorb), then 50 more
clients join so the on-demand paths must be activated.  The routing tables
are those of REsPoNse-lat; the comparison point is OSPF-InvCap.

Paper result: the percentage of clients able to play the video is essentially
unaffected at both population sizes (boxplots hugging 100 %), and the average
block retrieval latency grows by only about 5 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from ..apps.streaming import (
    StreamingConfig,
    StreamingResult,
    pick_client_nodes,
    run_streaming_workload,
)
from ..core.planner import activate_paths
from ..core.response import ResponseConfig, build_response_plan
from ..routing.paths import RoutingTable
from ..scenario import PowerSpec, RoutingSpec, TopologySpec
from ..traffic.matrix import TrafficMatrix
from .runner import Sweep


@dataclass
class Fig9Result:
    """Per-scenario streaming statistics of the Figure 9 reproduction.

    Attributes:
        scenarios: Scenario label → streaming result.  Labels follow the
            figure: ``"REP-lat50"``, ``"InvCap50"``, ``"REP-lat100"``,
            ``"InvCap100"``.
        block_latency_increase_percent: Increase of mean block retrieval
            latency of REsPoNse-lat over InvCap per client population
            (paper: about 5 %).
    """

    scenarios: Dict[str, StreamingResult]
    block_latency_increase_percent: Dict[int, float]

    def rows(self) -> List[tuple]:
        """Plotted rows: (scenario, min %, median %, max %, playable fraction)."""
        rows = []
        for label, result in self.scenarios.items():
            minimum, median, maximum = result.delivery_percent_summary()
            rows.append((label, minimum, median, maximum, result.playable_client_fraction))
        return rows


def _streaming_routing_for_plan(
    topology, power_model, plan, demands, utilisation_threshold: float
) -> RoutingTable:
    """The per-pair paths REsPoNse's planner would use for this demand."""
    activation = activate_paths(
        topology,
        power_model,
        plan,
        demands,
        utilisation_threshold=utilisation_threshold,
    )
    tables = plan.tables(include_failover=True)
    chosen = {}
    for pair, table_index in activation.assignment.items():
        path = tables[table_index].get(*pair)
        if path is not None:
            chosen[pair] = path
    return RoutingTable(chosen, name="response-lat-active")


@lru_cache(maxsize=4)
def _fig9_shared(
    max_clients: int,
    stream_rate_bps: Optional[float],
    latency_beta: float,
    seed: int,
):
    """Topology, plan and routings shared by every client population.

    Memoised within the process, so a serial sweep builds the plan once
    (like the seed did) while parallel workers each build their own copy;
    the returned objects must be treated as read-only.
    """
    topology = TopologySpec("abovenet").build()
    power_model = PowerSpec("cisco").build(topology)
    config = StreamingConfig()
    if stream_rate_bps is not None:
        config = StreamingConfig(stream_rate_bps=stream_rate_bps)

    source = topology.routers()[0]
    all_clients = pick_client_nodes(topology, source, max_clients, seed=seed)

    # REsPoNse-lat plan for source -> every possible client node.
    pairs = sorted({(source, node) for node in set(all_clients)})
    plan = build_response_plan(
        topology,
        power_model,
        pairs=pairs,
        config=ResponseConfig(num_paths=3, k=3, latency_beta=latency_beta),
    )
    invcap = RoutingSpec("ospf-invcap", params={"name": "invcap"}).build(topology, pairs)
    return topology, power_model, config, source, all_clients, plan, invcap


def _fig9_population(
    count: int,
    max_clients: int,
    stream_rate_bps: Optional[float],
    latency_beta: float,
    utilisation_threshold: float,
    seed: int,
) -> Tuple[StreamingResult, StreamingResult]:
    """Streaming results (REsPoNse-lat, InvCap) for one client population."""
    topology, power_model, config, source, all_clients, plan, invcap = _fig9_shared(
        max_clients, stream_rate_bps, latency_beta, seed
    )
    clients = all_clients[:count]
    demand_per_pair: Dict[Tuple[str, str], float] = {}
    for node in clients:
        pair = (source, node)
        demand_per_pair[pair] = demand_per_pair.get(pair, 0.0) + config.stream_rate_bps
    demands = TrafficMatrix(demand_per_pair, name=f"streaming-{count}")

    response_routing = _streaming_routing_for_plan(
        topology, power_model, plan, demands, utilisation_threshold
    )
    response_result = run_streaming_workload(
        topology, response_routing, source, clients, config
    )
    invcap_result = run_streaming_workload(topology, invcap, source, clients, config)
    return response_result, invcap_result


def run_fig9(
    client_counts: Tuple[int, int] = (50, 100),
    stream_rate_bps: Optional[float] = None,
    latency_beta: float = 0.25,
    utilisation_threshold: float = 0.9,
    seed: int = 9,
    parallel: bool = False,
    cache_dir: Optional[str] = None,
) -> Fig9Result:
    """Reproduce the streaming experiment on the synthetic Abovenet topology.

    Each client population is an independent sweep point; pass
    ``parallel=True``/``cache_dir`` to fan out or reuse results (see
    :mod:`repro.experiments.runner`).
    """
    max_clients = max(client_counts)
    sweep = Sweep(cache_dir=cache_dir)
    for count in client_counts:
        sweep.add(
            _fig9_population,
            label=str(count),
            count=count,
            max_clients=max_clients,
            stream_rate_bps=stream_rate_bps,
            latency_beta=latency_beta,
            utilisation_threshold=utilisation_threshold,
            seed=seed,
        )
    results = sweep.run(parallel=parallel)

    scenarios: Dict[str, StreamingResult] = {}
    latency_increase: Dict[int, float] = {}
    for count, (response_result, invcap_result) in zip(client_counts, results, strict=True):
        scenarios[f"REP-lat{count}"] = response_result
        scenarios[f"InvCap{count}"] = invcap_result
        if invcap_result.mean_block_latency_s > 0:
            latency_increase[count] = 100.0 * (
                response_result.mean_block_latency_s / invcap_result.mean_block_latency_s
                - 1.0
            )
        else:
            latency_increase[count] = 0.0

    return Fig9Result(
        scenarios=scenarios, block_latency_increase_percent=latency_increase
    )
