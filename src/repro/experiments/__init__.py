"""Experiment drivers: one module per evaluation figure of the paper.

The drivers share the sweep runner in :mod:`repro.experiments.runner`:
independent scenario points fan out over worker processes and cache their
results to disk keyed by a configuration hash.  ``python -m
repro.experiments --list`` shows the figures runnable from the command
line.
"""

from .always_on_capacity import AlwaysOnCapacityResult, run_always_on_capacity
from .fig1a import Fig1aResult, run_fig1a
from .fig1b import Fig1bResult, run_fig1b
from .fig2a import Fig2aResult, run_fig2a
from .fig2b import Fig2bResult, run_fig2b
from .fig4 import Fig4Result, run_fig4
from .fig5 import Fig5Result, run_fig5
from .fig6 import FIG6_VARIANTS, Fig6Result, run_fig6
from .fig7 import Fig7Result, run_fig7
from .fig8a import Fig8Result, run_fig8a
from .fig8b import run_fig8b
from .fig9 import Fig9Result, run_fig9
from .runner import (
    FIGURE_REGISTRY,
    Sweep,
    SweepPoint,
    grid,
    point,
    run_sweep,
)
from .stress_ablation import StressAblationResult, run_stress_ablation
from .web_latency import WebLatencyResult, run_web_latency

__all__ = [
    "FIGURE_REGISTRY",
    "Sweep",
    "SweepPoint",
    "grid",
    "point",
    "run_sweep",
    "AlwaysOnCapacityResult",
    "run_always_on_capacity",
    "Fig1aResult",
    "run_fig1a",
    "Fig1bResult",
    "run_fig1b",
    "Fig2aResult",
    "run_fig2a",
    "Fig2bResult",
    "run_fig2b",
    "Fig4Result",
    "run_fig4",
    "Fig5Result",
    "run_fig5",
    "FIG6_VARIANTS",
    "Fig6Result",
    "run_fig6",
    "Fig7Result",
    "run_fig7",
    "Fig8Result",
    "run_fig8a",
    "run_fig8b",
    "Fig9Result",
    "run_fig9",
    "StressAblationResult",
    "run_stress_ablation",
    "WebLatencyResult",
    "run_web_latency",
]
