"""Vectorized max-min fair-share computation over a flows×arcs incidence.

The allocation follows the classic progressive-filling algorithm: all
unfrozen flows grow their rate at the same pace until one of them reaches its
demand or some arc runs out of capacity; the affected flows freeze and the
filling continues with the rest.  The seed implementation walked Python
dictionaries per flow and per arc on every iteration; this module performs
each iteration with a handful of NumPy reductions over a flat incidence
structure (one entry per flow-crosses-arc relation), which is what makes
thousand-flow fat-tree simulations tractable.

The dict-based seed algorithm is preserved verbatim in
:mod:`repro.simulator.reference` and serves as the property-test oracle; the
two implementations are step-for-step equivalent, including the freezing
thresholds and termination conditions.
"""

from __future__ import annotations

import numpy as np

#: A flow freezes when its unserved demand drops below this (bps).
DEMAND_EPSILON = 1e-9
#: An arc is exhausted when its remaining capacity drops below this (bps).
CAPACITY_EPSILON = 1e-9
#: Progressive filling stops when an iteration makes no real progress.
STEP_EPSILON = 1e-12


def max_min_fair_rates(
    demands: np.ndarray,
    flat_flow: np.ndarray,
    flat_arc: np.ndarray,
    arc_capacity: np.ndarray,
) -> np.ndarray:
    """Max-min fair rates for routable flows over a shared arc table.

    Args:
        demands: Offered load per flow (bps), shape ``(num_flows,)``.
        flat_flow: Flow index of every flow-crosses-arc incidence entry.
        flat_arc: Arc index of every incidence entry (same length).
        arc_capacity: Allocation capacity per arc (bps), full table length.

    Returns:
        The allocated rate per flow, aligned with *demands*.
    """
    num_flows = int(demands.shape[0])
    allocation = np.zeros(num_flows, dtype=float)
    if num_flows == 0:
        return allocation

    pending = demands.astype(float).copy()
    capacity = arc_capacity.astype(float).copy()
    num_arcs = int(capacity.shape[0])
    if flat_arc.size:
        crossed_at_all = np.bincount(flat_arc, minlength=num_arcs) > 0
    else:
        crossed_at_all = np.zeros(num_arcs, dtype=bool)
    active = np.ones(num_flows, dtype=bool)

    # Each iteration freezes at least one flow or exhausts at least one arc,
    # so the filling terminates within flows + used-arcs iterations.
    for _ in range(num_flows + int(crossed_at_all.sum()) + 1):
        if not active.any():
            break
        if flat_arc.size:
            counts = np.bincount(
                flat_arc[active[flat_flow]], minlength=num_arcs
            ).astype(float)
        else:
            counts = np.zeros(num_arcs, dtype=float)
        crossed = counts > 0
        share_limited = (
            float((capacity[crossed] / counts[crossed]).min())
            if crossed.any()
            else float("inf")
        )
        demand_limited = float(pending[active].min())
        step = min(share_limited, demand_limited)
        if step == float("inf"):
            break
        step = max(step, 0.0)
        allocation[active] += step
        pending[active] -= step
        capacity -= step * counts
        # Freeze demand-satisfied flows and flows on exhausted arcs.
        active_before = int(active.sum())
        active &= pending > DEMAND_EPSILON
        if flat_arc.size:
            exhausted = crossed_at_all & (capacity <= CAPACITY_EPSILON)
            if exhausted.any():
                active[flat_flow[exhausted[flat_arc]]] = False
        # A zero step is fine as long as it froze somebody (e.g. a flow
        # whose demand is currently zero) — the filling continues for the
        # rest.  Only a zero step that freezes nobody means no progress.
        if step <= STEP_EPSILON and int(active.sum()) == active_before:
            break
    return allocation


def build_incidence(compiled_paths) -> "tuple[np.ndarray, np.ndarray]":
    """Flat ``(flat_flow, flat_arc)`` incidence arrays for compiled paths.

    Args:
        compiled_paths: One :class:`~repro.simulator.arcs.CompiledPath` per
            routable flow, in flow order.
    """
    if not compiled_paths:
        empty = np.array([], dtype=np.int64)
        return empty, empty.copy()
    lengths = np.array([path.arc_indices.size for path in compiled_paths])
    flat_flow = np.repeat(np.arange(len(compiled_paths), dtype=np.int64), lengths)
    if flat_flow.size:
        flat_arc = np.concatenate([path.arc_indices for path in compiled_paths])
    else:
        flat_arc = np.array([], dtype=np.int64)
    return flat_flow, flat_arc
