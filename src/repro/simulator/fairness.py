"""Vectorized max-min fair-share computation over a flows×arcs incidence.

The allocation follows the classic progressive-filling algorithm: all
unfrozen flows grow their rate at the same pace until one of them reaches its
demand or some arc runs out of capacity; the affected flows freeze and the
filling continues with the rest.  The seed implementation walked Python
dictionaries per flow and per arc on every iteration; this module performs
each iteration with a handful of NumPy reductions over a flat incidence
structure (one entry per flow-crosses-arc relation), which is what makes
thousand-flow fat-tree simulations tractable.

The dict-based seed algorithm is preserved verbatim in
:mod:`repro.simulator.reference` and serves as the property-test oracle; the
two implementations are step-for-step equivalent, including the freezing
thresholds and termination conditions.
"""

from __future__ import annotations

import numpy as np

#: A flow freezes when its unserved demand drops below this (bps).
DEMAND_EPSILON = 1e-9
#: An arc is exhausted when its remaining capacity drops below this (bps).
CAPACITY_EPSILON = 1e-9
#: Progressive filling stops when an iteration makes no real progress.
STEP_EPSILON = 1e-12


def max_min_fair_rates(
    demands: np.ndarray,
    flat_flow: np.ndarray,
    flat_arc: np.ndarray,
    arc_capacity: np.ndarray,
) -> np.ndarray:
    """Max-min fair rates for routable flows over a shared arc table.

    Args:
        demands: Offered load per flow (bps), shape ``(num_flows,)``.
        flat_flow: Flow index of every flow-crosses-arc incidence entry.
        flat_arc: Arc index of every incidence entry (same length).
        arc_capacity: Allocation capacity per arc (bps), full table length.

    Returns:
        The allocated rate per flow, aligned with *demands*.
    """
    num_flows = int(demands.shape[0])
    allocation = np.zeros(num_flows, dtype=float)
    if num_flows == 0:
        return allocation

    pending = demands.astype(float).copy()
    capacity = arc_capacity.astype(float).copy()
    num_arcs = int(capacity.shape[0])
    if flat_arc.size:
        crossed_at_all = np.bincount(flat_arc, minlength=num_arcs) > 0
    else:
        crossed_at_all = np.zeros(num_arcs, dtype=bool)
    active = np.ones(num_flows, dtype=bool)

    # Each iteration freezes at least one flow or exhausts at least one arc,
    # so the filling terminates within flows + used-arcs iterations.
    for _ in range(num_flows + int(crossed_at_all.sum()) + 1):
        if not active.any():
            break
        if flat_arc.size:
            counts = np.bincount(
                flat_arc[active[flat_flow]], minlength=num_arcs
            ).astype(float)
        else:
            counts = np.zeros(num_arcs, dtype=float)
        crossed = counts > 0
        share_limited = (
            float((capacity[crossed] / counts[crossed]).min())
            if crossed.any()
            else float("inf")
        )
        demand_limited = float(pending[active].min())
        step = min(share_limited, demand_limited)
        if step == float("inf"):
            break
        step = max(step, 0.0)
        allocation[active] += step
        pending[active] -= step
        capacity -= step * counts
        # Freeze demand-satisfied flows and flows on exhausted arcs.
        active_before = int(active.sum())
        active &= pending > DEMAND_EPSILON
        if flat_arc.size:
            exhausted = crossed_at_all & (capacity <= CAPACITY_EPSILON)
            if exhausted.any():
                active[flat_flow[exhausted[flat_arc]]] = False
        # A zero step is fine as long as it froze somebody (e.g. a flow
        # whose demand is currently zero) — the filling continues for the
        # rest.  Only a zero step that freezes nobody means no progress.
        if step <= STEP_EPSILON and int(active.sum()) == active_before:
            break
    return allocation


def pairwise_sum(values: np.ndarray, axis: int = -1) -> np.ndarray:
    """Fixed-order pairwise summation along *axis*.

    ``np.sum`` on some platforms picks its accumulation tree from the
    buffer's memory alignment, so two interpreter invocations can differ in
    the last ULP on the same data.  This reduction instead halves the axis
    with element-wise adds — ``a[0::2] + a[1::2]`` repeatedly, carrying a
    trailing odd element verbatim — so the evaluation tree depends only on
    the length, never on where the allocator placed the buffer.
    """
    array = np.asarray(values, dtype=float)
    array = np.moveaxis(array, axis, -1)
    if array.shape[-1] == 0:
        return np.zeros(array.shape[:-1], dtype=float)
    while array.shape[-1] > 1:
        length = array.shape[-1]
        paired = array[..., 0 : length - (length % 2) : 2] + array[..., 1::2]
        if length % 2:
            paired = np.concatenate([paired, array[..., -1:]], axis=-1)
        array = paired
    return array[..., 0]


def batch_max_min_fair_rates(
    demands: np.ndarray,
    flat_flow: np.ndarray,
    flat_arc: np.ndarray,
    arc_capacity: np.ndarray,
) -> np.ndarray:
    """Max-min fair rates for a whole batch of demand vectors at once.

    Batch elements share one flows×arcs incidence (points on the same
    topology with the same compiled paths); each element carries its own
    demand vector and, optionally, its own capacity vector.  Every batch
    element produces **bit-identical** output to running
    :func:`max_min_fair_rates` on it alone: the same freezing thresholds,
    the same per-element arithmetic (integer share counts, element-wise
    divisions, subtractions and minima — never an order-sensitive float
    accumulation) and the same termination conditions, tracked per element
    through an ``alive`` mask so a finished element's allocation is frozen
    while the rest keep filling.

    Args:
        demands: Offered load per flow (bps), shape ``(batch, num_flows)``.
        flat_flow: Flow index of every incidence entry (shared).
        flat_arc: Arc index of every incidence entry (shared).
        arc_capacity: Allocation capacity per arc, shape ``(num_arcs,)``
            (shared) or ``(batch, num_arcs)`` (per element).

    Returns:
        The allocated rate per flow, shape ``(batch, num_flows)``.
    """
    demands = np.asarray(demands, dtype=float)
    if demands.ndim != 2:
        raise ValueError(
            f"batched demands must have shape (batch, num_flows), got {demands.shape}"
        )
    batch, num_flows = int(demands.shape[0]), int(demands.shape[1])
    allocation = np.zeros((batch, num_flows), dtype=float)
    if batch == 0 or num_flows == 0:
        return allocation

    flat_flow = np.asarray(flat_flow, dtype=np.int64)
    flat_arc = np.asarray(flat_arc, dtype=np.int64)
    capacity = np.asarray(arc_capacity, dtype=float)
    if capacity.ndim == 1:
        capacity = np.repeat(capacity[None, :].astype(float), batch, axis=0)
    elif capacity.ndim == 2:
        if int(capacity.shape[0]) != batch:
            raise ValueError(
                f"per-element capacity has batch {capacity.shape[0]}, "
                f"demands have batch {batch}"
            )
        capacity = capacity.astype(float).copy()
    else:
        raise ValueError(
            f"arc_capacity must be 1- or 2-dimensional, got shape {capacity.shape}"
        )
    num_arcs = int(capacity.shape[1])

    pending = demands.astype(float).copy()
    if flat_arc.size:
        crossed_at_all = np.bincount(flat_arc, minlength=num_arcs) > 0
    else:
        crossed_at_all = np.zeros(num_arcs, dtype=bool)
    active = np.ones((batch, num_flows), dtype=bool)
    #: Per-element "still filling" flag: replicates the serial loop's break
    #: conditions element by element, so a finished element's state never
    #: changes again while the rest of the batch continues.
    alive = np.ones(batch, dtype=bool)

    # The serial iteration bound depends only on the shared incidence, so
    # one shared bound covers every batch element.
    for _ in range(num_flows + int(crossed_at_all.sum()) + 1):
        alive &= active.any(axis=1)
        if not alive.any():
            break
        if flat_arc.size:
            # Integer share counts: addition order cannot affect the value.
            counts_int = np.zeros((batch, num_arcs), dtype=np.int64)
            np.add.at(
                counts_int, (slice(None), flat_arc), active[:, flat_flow]
            )
            counts = counts_int.astype(float)
        else:
            counts = np.zeros((batch, num_arcs), dtype=float)
        crossed = counts > 0
        if num_arcs:
            ratio = np.divide(
                capacity,
                counts,
                out=np.full_like(capacity, np.inf),
                where=crossed,
            )
            share_limited = ratio.min(axis=1)
        else:
            share_limited = np.full(batch, np.inf)
        demand_limited = np.where(active, pending, np.inf).min(axis=1)
        step = np.minimum(share_limited, demand_limited)
        # An infinite step terminates the element before any update — the
        # serial algorithm's "break before applying" order.
        alive &= ~np.isinf(step)
        if not alive.any():
            break
        step = np.where(alive, np.maximum(step, 0.0), 0.0)
        grow = active & alive[:, None]
        allocation = np.where(grow, allocation + step[:, None], allocation)
        pending = np.where(grow, pending - step[:, None], pending)
        capacity = np.where(
            alive[:, None], capacity - step[:, None] * counts, capacity
        )
        # Freeze demand-satisfied flows and flows on exhausted arcs, only
        # for elements still filling.
        active_before = active.sum(axis=1)
        active = np.where(alive[:, None], active & (pending > DEMAND_EPSILON), active)
        if flat_arc.size:
            exhausted = crossed_at_all[None, :] & (capacity <= CAPACITY_EPSILON)
            kill = exhausted[:, flat_arc] & alive[:, None]
            if kill.any():
                deactivate = np.zeros((batch, num_flows), dtype=bool)
                np.logical_or.at(deactivate, (slice(None), flat_flow), kill)
                active &= ~deactivate
        # Same zero-step rule as the serial loop: a zero step that froze
        # nobody means the element makes no further progress.
        no_progress = (step <= STEP_EPSILON) & (active.sum(axis=1) == active_before)
        alive &= ~no_progress
    return allocation


def build_incidence(compiled_paths) -> "tuple[np.ndarray, np.ndarray]":
    """Flat ``(flat_flow, flat_arc)`` incidence arrays for compiled paths.

    Args:
        compiled_paths: One :class:`~repro.simulator.arcs.CompiledPath` per
            routable flow, in flow order.
    """
    if not compiled_paths:
        empty = np.array([], dtype=np.int64)
        return empty, empty.copy()
    lengths = np.array([path.arc_indices.size for path in compiled_paths])
    flat_flow = np.repeat(np.arange(len(compiled_paths), dtype=np.int64), lengths)
    if flat_flow.size:
        flat_arc = np.concatenate([path.arc_indices for path in compiled_paths])
    else:
        flat_arc = np.array([], dtype=np.int64)
    return flat_flow, flat_arc
