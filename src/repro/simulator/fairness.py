"""Vectorized max-min fair-share computation over a flows×arcs incidence.

The allocation follows the classic progressive-filling algorithm: all
unfrozen flows grow their rate at the same pace until one of them reaches its
demand or some arc runs out of capacity; the affected flows freeze and the
filling continues with the rest.  The seed implementation walked Python
dictionaries per flow and per arc on every iteration; this module performs
each iteration with a handful of NumPy reductions over a flat incidence
structure (one entry per flow-crosses-arc relation), which is what makes
thousand-flow fat-tree simulations tractable.

The dict-based seed algorithm is preserved verbatim in
:mod:`repro.simulator.reference` and serves as the property-test oracle; the
two implementations are step-for-step equivalent, including the freezing
thresholds and termination conditions.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional

import numpy as np

from ..obs import trace as _trace

try:  # scipy is a baked-in dependency (the MCF oracle uses it) but the
    # simulator must still import without it — the dense kernels never
    # touch scipy and remain fully functional.
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - exercised only without scipy
    _scipy_sparse = None

#: A flow freezes when its unserved demand drops below this (bps).
DEMAND_EPSILON = 1e-9
#: An arc is exhausted when its remaining capacity drops below this (bps).
CAPACITY_EPSILON = 1e-9
#: Progressive filling stops when an iteration makes no real progress.
STEP_EPSILON = 1e-12

#: ``flows * arcs`` product above which the automatic kernel selection
#: switches from the dense flat-array kernels to the ``scipy.sparse``
#: twins.  Below the crossover the dense kernels' lower constant factors
#: win; above it the sparse matvec per iteration and the avoidance of the
#: batch kernel's ``(batch, nnz)`` temporaries dominate.
SPARSE_CROSSOVER = 2_000_000

#: Environment override for the kernel choice (``dense``/``sparse``/``auto``).
KERNEL_ENV_VAR = "REPRO_FAIRNESS_KERNEL"

_KERNEL_CHOICES = ("auto", "dense", "sparse")
_kernel_override: Optional[str] = None

#: Per-thread record of the most recent kernel invocation, read by the
#: ``fairness.kernel`` span in :mod:`repro.simulator.network`.  The
#: iteration count is always maintained (one integer add per filling
#: iteration); the frozen-per-iteration breakdown is gathered only while
#: tracing is enabled.
_kernel_stats = threading.local()


def _record_kernel_stats(iterations: int, frozen: Optional[List[int]]) -> None:
    _kernel_stats.iterations = iterations
    _kernel_stats.frozen = frozen


def last_kernel_stats() -> Dict[str, object]:
    """Iterations (and, when traced, frozen flows per iteration) of the
    last progressive-filling run on this thread."""
    stats: Dict[str, object] = {
        "iterations": int(getattr(_kernel_stats, "iterations", 0))
    }
    frozen = getattr(_kernel_stats, "frozen", None)
    if frozen is not None:
        stats["frozen_per_iteration"] = list(frozen)
    return stats


def set_fairness_kernel(kernel: Optional[str]) -> Optional[str]:
    """Force the fairness kernel process-wide; returns the previous override.

    Args:
        kernel: ``"dense"``, ``"sparse"``, ``"auto"`` or ``None`` (both of the
            last two restore automatic crossover selection).
    """
    global _kernel_override
    if kernel is not None and kernel not in _KERNEL_CHOICES:
        raise ValueError(
            f"unknown fairness kernel {kernel!r}; expected one of {_KERNEL_CHOICES}"
        )
    previous = _kernel_override
    _kernel_override = None if kernel in (None, "auto") else kernel
    return previous


def fairness_kernel() -> str:
    """The configured kernel choice: override, else env var, else ``auto``."""
    if _kernel_override is not None:
        return _kernel_override
    env = os.environ.get(KERNEL_ENV_VAR, "").strip().lower()
    if env in ("dense", "sparse"):
        return env
    return "auto"


def select_kernel(num_flows: int, num_arcs: int) -> str:
    """Resolve the kernel for a problem size to ``"dense"`` or ``"sparse"``.

    Automatic selection crosses over on the dense incidence footprint
    (``flows * arcs`` > :data:`SPARSE_CROSSOVER`); an explicit override via
    :func:`set_fairness_kernel` or :data:`KERNEL_ENV_VAR` wins.  Falls back
    to dense when scipy is unavailable.
    """
    choice = fairness_kernel()
    if choice == "sparse" and _scipy_sparse is None:
        raise RuntimeError("sparse fairness kernel requested but scipy is missing")
    if choice != "auto":
        return choice
    if _scipy_sparse is None:
        return "dense"
    return "sparse" if int(num_flows) * int(num_arcs) > SPARSE_CROSSOVER else "dense"


def max_min_fair_rates(
    demands: np.ndarray,
    flat_flow: np.ndarray,
    flat_arc: np.ndarray,
    arc_capacity: np.ndarray,
) -> np.ndarray:
    """Max-min fair rates for routable flows over a shared arc table.

    Args:
        demands: Offered load per flow (bps), shape ``(num_flows,)``.
        flat_flow: Flow index of every flow-crosses-arc incidence entry.
        flat_arc: Arc index of every incidence entry (same length).
        arc_capacity: Allocation capacity per arc (bps), full table length.

    Returns:
        The allocated rate per flow, aligned with *demands*.
    """
    num_flows = int(demands.shape[0])
    allocation = np.zeros(num_flows, dtype=float)
    if num_flows == 0:
        return allocation

    pending = demands.astype(float).copy()
    capacity = arc_capacity.astype(float).copy()
    num_arcs = int(capacity.shape[0])
    if flat_arc.size:
        crossed_at_all = np.bincount(flat_arc, minlength=num_arcs) > 0
    else:
        crossed_at_all = np.zeros(num_arcs, dtype=bool)
    active = np.ones(num_flows, dtype=bool)

    iterations = 0
    frozen_trace: Optional[List[int]] = [] if _trace.tracing_enabled() else None
    # Each iteration freezes at least one flow or exhausts at least one arc,
    # so the filling terminates within flows + used-arcs iterations.
    for _ in range(num_flows + int(crossed_at_all.sum()) + 1):
        if not active.any():
            break
        iterations += 1
        if flat_arc.size:
            counts = np.bincount(
                flat_arc[active[flat_flow]], minlength=num_arcs
            ).astype(float)
        else:
            counts = np.zeros(num_arcs, dtype=float)
        crossed = counts > 0
        share_limited = (
            float((capacity[crossed] / counts[crossed]).min())
            if crossed.any()
            else float("inf")
        )
        demand_limited = float(pending[active].min())
        step = min(share_limited, demand_limited)
        if step == float("inf"):
            break
        step = max(step, 0.0)
        allocation[active] += step
        pending[active] -= step
        capacity -= step * counts
        # Freeze demand-satisfied flows and flows on exhausted arcs.
        active_before = int(active.sum())
        active &= pending > DEMAND_EPSILON
        if flat_arc.size:
            exhausted = crossed_at_all & (capacity <= CAPACITY_EPSILON)
            if exhausted.any():
                active[flat_flow[exhausted[flat_arc]]] = False
        active_after = int(active.sum())
        if frozen_trace is not None:
            frozen_trace.append(active_before - active_after)
        # A zero step is fine as long as it froze somebody (e.g. a flow
        # whose demand is currently zero) — the filling continues for the
        # rest.  Only a zero step that freezes nobody means no progress.
        if step <= STEP_EPSILON and active_after == active_before:
            break
    _record_kernel_stats(iterations, frozen_trace)
    return allocation


def pairwise_sum(values: np.ndarray, axis: int = -1) -> np.ndarray:
    """Fixed-order pairwise summation along *axis*.

    ``np.sum`` on some platforms picks its accumulation tree from the
    buffer's memory alignment, so two interpreter invocations can differ in
    the last ULP on the same data.  This reduction instead halves the axis
    with element-wise adds — ``a[0::2] + a[1::2]`` repeatedly, carrying a
    trailing odd element verbatim — so the evaluation tree depends only on
    the length, never on where the allocator placed the buffer.
    """
    array = np.asarray(values, dtype=float)
    array = np.moveaxis(array, axis, -1)
    if array.shape[-1] == 0:
        return np.zeros(array.shape[:-1], dtype=float)
    while array.shape[-1] > 1:
        length = array.shape[-1]
        paired = array[..., 0 : length - (length % 2) : 2] + array[..., 1::2]
        if length % 2:
            paired = np.concatenate([paired, array[..., -1:]], axis=-1)
        array = paired
    return array[..., 0]


def batch_max_min_fair_rates(
    demands: np.ndarray,
    flat_flow: np.ndarray,
    flat_arc: np.ndarray,
    arc_capacity: np.ndarray,
) -> np.ndarray:
    """Max-min fair rates for a whole batch of demand vectors at once.

    Batch elements share one flows×arcs incidence (points on the same
    topology with the same compiled paths); each element carries its own
    demand vector and, optionally, its own capacity vector.  Every batch
    element produces **bit-identical** output to running
    :func:`max_min_fair_rates` on it alone: the same freezing thresholds,
    the same per-element arithmetic (integer share counts, element-wise
    divisions, subtractions and minima — never an order-sensitive float
    accumulation) and the same termination conditions, tracked per element
    through an ``alive`` mask so a finished element's allocation is frozen
    while the rest keep filling.

    Args:
        demands: Offered load per flow (bps), shape ``(batch, num_flows)``.
        flat_flow: Flow index of every incidence entry (shared).
        flat_arc: Arc index of every incidence entry (shared).
        arc_capacity: Allocation capacity per arc, shape ``(num_arcs,)``
            (shared) or ``(batch, num_arcs)`` (per element).

    Returns:
        The allocated rate per flow, shape ``(batch, num_flows)``.
    """
    demands = np.asarray(demands, dtype=float)
    if demands.ndim != 2:
        raise ValueError(
            f"batched demands must have shape (batch, num_flows), got {demands.shape}"
        )
    batch, num_flows = int(demands.shape[0]), int(demands.shape[1])
    allocation = np.zeros((batch, num_flows), dtype=float)
    if batch == 0 or num_flows == 0:
        return allocation

    flat_flow = np.asarray(flat_flow, dtype=np.int64)
    flat_arc = np.asarray(flat_arc, dtype=np.int64)
    capacity = np.asarray(arc_capacity, dtype=float)
    if capacity.ndim == 1:
        capacity = np.repeat(capacity[None, :].astype(float), batch, axis=0)
    elif capacity.ndim == 2:
        if int(capacity.shape[0]) != batch:
            raise ValueError(
                f"per-element capacity has batch {capacity.shape[0]}, "
                f"demands have batch {batch}"
            )
        capacity = capacity.astype(float).copy()
    else:
        raise ValueError(
            f"arc_capacity must be 1- or 2-dimensional, got shape {capacity.shape}"
        )
    num_arcs = int(capacity.shape[1])

    pending = demands.astype(float).copy()
    if flat_arc.size:
        crossed_at_all = np.bincount(flat_arc, minlength=num_arcs) > 0
    else:
        crossed_at_all = np.zeros(num_arcs, dtype=bool)
    active = np.ones((batch, num_flows), dtype=bool)
    #: Per-element "still filling" flag: replicates the serial loop's break
    #: conditions element by element, so a finished element's state never
    #: changes again while the rest of the batch continues.
    alive = np.ones(batch, dtype=bool)

    iterations = 0
    frozen_trace: Optional[List[int]] = [] if _trace.tracing_enabled() else None
    # The serial iteration bound depends only on the shared incidence, so
    # one shared bound covers every batch element.
    for _ in range(num_flows + int(crossed_at_all.sum()) + 1):
        alive &= active.any(axis=1)
        if not alive.any():
            break
        iterations += 1
        if flat_arc.size:
            # Integer share counts: addition order cannot affect the value.
            counts_int = np.zeros((batch, num_arcs), dtype=np.int64)
            np.add.at(
                counts_int, (slice(None), flat_arc), active[:, flat_flow]
            )
            counts = counts_int.astype(float)
        else:
            counts = np.zeros((batch, num_arcs), dtype=float)
        crossed = counts > 0
        if num_arcs:
            ratio = np.divide(
                capacity,
                counts,
                out=np.full_like(capacity, np.inf),
                where=crossed,
            )
            share_limited = ratio.min(axis=1)
        else:
            share_limited = np.full(batch, np.inf)
        demand_limited = np.where(active, pending, np.inf).min(axis=1)
        step = np.minimum(share_limited, demand_limited)
        # An infinite step terminates the element before any update — the
        # serial algorithm's "break before applying" order.
        alive &= ~np.isinf(step)
        if not alive.any():
            break
        step = np.where(alive, np.maximum(step, 0.0), 0.0)
        grow = active & alive[:, None]
        allocation = np.where(grow, allocation + step[:, None], allocation)
        pending = np.where(grow, pending - step[:, None], pending)
        capacity = np.where(
            alive[:, None], capacity - step[:, None] * counts, capacity
        )
        # Freeze demand-satisfied flows and flows on exhausted arcs, only
        # for elements still filling.
        active_before = np.count_nonzero(active, axis=1)
        active = np.where(alive[:, None], active & (pending > DEMAND_EPSILON), active)
        if flat_arc.size:
            exhausted = crossed_at_all[None, :] & (capacity <= CAPACITY_EPSILON)
            kill = exhausted[:, flat_arc] & alive[:, None]
            if kill.any():
                deactivate = np.zeros((batch, num_flows), dtype=bool)
                np.logical_or.at(deactivate, (slice(None), flat_flow), kill)
                active &= ~deactivate
        active_after = np.count_nonzero(active, axis=1)
        if frozen_trace is not None:
            frozen_trace.append(int(active_before.sum() - active_after.sum()))
        # Same zero-step rule as the serial loop: a zero step that froze
        # nobody means the element makes no further progress.
        no_progress = (step <= STEP_EPSILON) & (active_after == active_before)
        alive &= ~no_progress
    _record_kernel_stats(iterations, frozen_trace)
    return allocation


class SparseIncidence:
    """A flows×arcs incidence held as ``scipy.sparse`` CSR matrices.

    The dense kernels stream over the flat ``(flat_flow, flat_arc)`` entry
    arrays; the sparse twins instead ask this wrapper for the two reductions
    the filling loop needs — per-arc active-flow counts and the set of flows
    touching exhausted arcs — as CSR mat-vecs.  Both reductions sum small
    integers, which float64 represents exactly regardless of summation
    order, so the sparse results are bit-identical to the dense ones.

    Entry multiplicities are preserved: duplicate ``(flow, arc)`` entries
    sum into a single stored value, matching ``np.bincount`` over the flat
    arrays entry for entry.
    """

    def __init__(
        self,
        flat_flow: np.ndarray,
        flat_arc: np.ndarray,
        num_flows: int,
        num_arcs: int,
    ) -> None:
        if _scipy_sparse is None:  # pragma: no cover - guarded by select_kernel
            raise RuntimeError("SparseIncidence requires scipy")
        flat_flow = np.asarray(flat_flow, dtype=np.int64)
        flat_arc = np.asarray(flat_arc, dtype=np.int64)
        self.num_flows = int(num_flows)
        self.num_arcs = int(num_arcs)
        data = np.ones(flat_flow.size, dtype=np.float64)
        coo = _scipy_sparse.coo_matrix(
            (data, (flat_flow, flat_arc)), shape=(self.num_flows, self.num_arcs)
        )
        #: flows×arcs — row f holds the arcs flow f crosses (multiplicity).
        self.flow_arc = coo.tocsr()
        self.flow_arc.sum_duplicates()
        #: arcs×flows — the transpose, for per-arc count reductions.
        self.arc_flow = self.flow_arc.T.tocsr()
        crossed = np.zeros(self.num_arcs, dtype=bool)
        if flat_arc.size:
            crossed[flat_arc] = True
        #: Arcs crossed by at least one flow (== dense ``bincount > 0``).
        self.crossed_at_all = crossed

    @property
    def nnz(self) -> int:
        """Stored entries (distinct flow-crosses-arc relations)."""
        return int(self.flow_arc.nnz)

    def nbytes(self) -> int:
        """Resident bytes of both CSR copies (data + indices + indptr)."""
        total = 0
        for matrix in (self.flow_arc, self.arc_flow):
            total += matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
        return total

    def arc_counts(self, active: np.ndarray) -> np.ndarray:
        """Active-flow count per arc — exact, matches the dense bincount."""
        return self.arc_flow @ active.astype(np.float64)

    def batch_arc_counts(self, active: np.ndarray) -> np.ndarray:
        """Per-arc counts for a ``(batch, num_flows)`` active mask."""
        return (self.arc_flow @ active.T.astype(np.float64)).T

    def flows_touching(self, arc_mask: np.ndarray) -> np.ndarray:
        """Boolean per flow: does the flow cross any arc in *arc_mask*?"""
        return (self.flow_arc @ arc_mask.astype(np.float64)) > 0.0

    def batch_flows_touching(self, arc_mask: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`flows_touching` for a ``(batch, num_arcs)`` mask."""
        return (self.flow_arc @ arc_mask.T.astype(np.float64)).T > 0.0


def max_min_fair_rates_sparse(
    demands: np.ndarray,
    flat_flow: np.ndarray,
    flat_arc: np.ndarray,
    arc_capacity: np.ndarray,
    incidence: Optional[SparseIncidence] = None,
) -> np.ndarray:
    """Sparse twin of :func:`max_min_fair_rates` — bit-identical output.

    The progressive-filling loop is copied line for line from the dense
    kernel; only the two incidence reductions (per-arc counts, exhausted-arc
    flow kill) go through :class:`SparseIncidence` CSR mat-vecs.  Both are
    integer sums, exact in float64, so every freezing threshold and the
    termination order reproduce the dense kernel bit for bit.

    Args:
        incidence: A prebuilt :class:`SparseIncidence` (e.g. cached per
            compiled flow set); built from the flat arrays when omitted.
    """
    num_flows = int(demands.shape[0])
    allocation = np.zeros(num_flows, dtype=float)
    if num_flows == 0:
        return allocation

    pending = demands.astype(float).copy()
    capacity = arc_capacity.astype(float).copy()
    num_arcs = int(capacity.shape[0])
    if incidence is None:
        incidence = SparseIncidence(flat_flow, flat_arc, num_flows, num_arcs)
    crossed_at_all = incidence.crossed_at_all
    active = np.ones(num_flows, dtype=bool)

    iterations = 0
    frozen_trace: Optional[List[int]] = [] if _trace.tracing_enabled() else None
    for _ in range(num_flows + int(crossed_at_all.sum()) + 1):
        if not active.any():
            break
        iterations += 1
        counts = incidence.arc_counts(active)
        crossed = counts > 0
        share_limited = (
            float((capacity[crossed] / counts[crossed]).min())
            if crossed.any()
            else float("inf")
        )
        demand_limited = float(pending[active].min())
        step = min(share_limited, demand_limited)
        if step == float("inf"):
            break
        step = max(step, 0.0)
        allocation[active] += step
        pending[active] -= step
        capacity -= step * counts
        active_before = int(active.sum())
        active &= pending > DEMAND_EPSILON
        exhausted = crossed_at_all & (capacity <= CAPACITY_EPSILON)
        if exhausted.any():
            active &= ~incidence.flows_touching(exhausted)
        active_after = int(active.sum())
        if frozen_trace is not None:
            frozen_trace.append(active_before - active_after)
        if step <= STEP_EPSILON and active_after == active_before:
            break
    _record_kernel_stats(iterations, frozen_trace)
    return allocation


def batch_max_min_fair_rates_sparse(
    demands: np.ndarray,
    flat_flow: np.ndarray,
    flat_arc: np.ndarray,
    arc_capacity: np.ndarray,
    incidence: Optional[SparseIncidence] = None,
) -> np.ndarray:
    """Sparse twin of :func:`batch_max_min_fair_rates` — bit-identical output.

    The dense batch kernel materialises ``(batch, nnz)`` masks and scatters
    them with ``np.add.at`` / ``np.logical_or.at`` every iteration; at
    10^5–10^6 flows those temporaries are the memory wall.  This twin keeps
    the per-element state arrays and replaces both scatters with CSR
    mat-mats over the shared incidence, whose integer sums are exact — the
    per-element arithmetic, freezing thresholds and termination conditions
    are otherwise copied verbatim.
    """
    demands = np.asarray(demands, dtype=float)
    if demands.ndim != 2:
        raise ValueError(
            f"batched demands must have shape (batch, num_flows), got {demands.shape}"
        )
    batch, num_flows = int(demands.shape[0]), int(demands.shape[1])
    allocation = np.zeros((batch, num_flows), dtype=float)
    if batch == 0 or num_flows == 0:
        return allocation

    flat_flow = np.asarray(flat_flow, dtype=np.int64)
    flat_arc = np.asarray(flat_arc, dtype=np.int64)
    capacity = np.asarray(arc_capacity, dtype=float)
    if capacity.ndim == 1:
        capacity = np.repeat(capacity[None, :].astype(float), batch, axis=0)
    elif capacity.ndim == 2:
        if int(capacity.shape[0]) != batch:
            raise ValueError(
                f"per-element capacity has batch {capacity.shape[0]}, "
                f"demands have batch {batch}"
            )
        capacity = capacity.astype(float).copy()
    else:
        raise ValueError(
            f"arc_capacity must be 1- or 2-dimensional, got shape {capacity.shape}"
        )
    num_arcs = int(capacity.shape[1])

    if incidence is None:
        incidence = SparseIncidence(flat_flow, flat_arc, num_flows, num_arcs)
    pending = demands.astype(float).copy()
    crossed_at_all = incidence.crossed_at_all
    active = np.ones((batch, num_flows), dtype=bool)
    alive = np.ones(batch, dtype=bool)

    iterations = 0
    frozen_trace: Optional[List[int]] = [] if _trace.tracing_enabled() else None
    for _ in range(num_flows + int(crossed_at_all.sum()) + 1):
        alive &= active.any(axis=1)
        if not alive.any():
            break
        iterations += 1
        counts = incidence.batch_arc_counts(active)
        crossed = counts > 0
        if num_arcs:
            ratio = np.divide(
                capacity,
                counts,
                out=np.full_like(capacity, np.inf),
                where=crossed,
            )
            share_limited = ratio.min(axis=1)
        else:
            share_limited = np.full(batch, np.inf)
        demand_limited = np.where(active, pending, np.inf).min(axis=1)
        step = np.minimum(share_limited, demand_limited)
        alive &= ~np.isinf(step)
        if not alive.any():
            break
        step = np.where(alive, np.maximum(step, 0.0), 0.0)
        grow = active & alive[:, None]
        allocation = np.where(grow, allocation + step[:, None], allocation)
        pending = np.where(grow, pending - step[:, None], pending)
        capacity = np.where(
            alive[:, None], capacity - step[:, None] * counts, capacity
        )
        active_before = np.count_nonzero(active, axis=1)
        active = np.where(alive[:, None], active & (pending > DEMAND_EPSILON), active)
        exhausted = crossed_at_all[None, :] & (capacity <= CAPACITY_EPSILON)
        if exhausted.any():
            kill = incidence.batch_flows_touching(exhausted) & alive[:, None]
            active &= ~kill
        active_after = np.count_nonzero(active, axis=1)
        if frozen_trace is not None:
            frozen_trace.append(int(active_before.sum() - active_after.sum()))
        no_progress = (step <= STEP_EPSILON) & (active_after == active_before)
        alive &= ~no_progress
    _record_kernel_stats(iterations, frozen_trace)
    return allocation


def grouped_max_min_fair_rates(
    demands: np.ndarray,
    flow_group: np.ndarray,
    flat_group: np.ndarray,
    flat_arc: np.ndarray,
    arc_capacity: np.ndarray,
    num_groups: Optional[int] = None,
) -> np.ndarray:
    """Per-flow max-min rates where flows sharing a group share one path.

    Aggregation without approximation: every per-flow quantity (pending,
    allocation, the active mask and both freezing thresholds) stays a
    per-flow array with exactly the dense kernel's element-wise arithmetic,
    but the per-arc counts are computed from the *group* incidence weighted
    by each group's number of currently-active member flows — an integer
    sum, exact in float64.  The result is bit-identical to running
    :func:`max_min_fair_rates` on the expanded per-flow incidence (each
    member flow repeating its group's arc list), while the incidence memory
    drops from O(flows × hops) to O(groups × hops).

    Args:
        demands: Offered load per flow (bps), shape ``(num_flows,)``.
        flow_group: Group index per flow, shape ``(num_flows,)``.
        flat_group: Group index of every group-crosses-arc incidence entry.
        flat_arc: Arc index of every incidence entry (same length).
        arc_capacity: Allocation capacity per arc (bps), full table length.
        num_groups: Total group count; inferred from *flow_group* if omitted.
    """
    num_flows = int(demands.shape[0])
    allocation = np.zeros(num_flows, dtype=float)
    if num_flows == 0:
        return allocation

    flow_group = np.asarray(flow_group, dtype=np.int64)
    flat_group = np.asarray(flat_group, dtype=np.int64)
    flat_arc = np.asarray(flat_arc, dtype=np.int64)
    pending = demands.astype(float).copy()
    capacity = arc_capacity.astype(float).copy()
    num_arcs = int(capacity.shape[0])
    if num_groups is None:
        num_groups = int(flow_group.max()) + 1 if flow_group.size else 0

    # Arcs crossed by a *populated* group — empty groups contribute no
    # incidence entries in the expanded per-flow problem, so they must not
    # contribute here either (the iteration bound and the exhausted-arc set
    # both derive from this).
    members = np.bincount(flow_group, minlength=num_groups)
    if flat_arc.size:
        populated_entry = members[flat_group] > 0
        crossed_at_all = (
            np.bincount(flat_arc[populated_entry], minlength=num_arcs) > 0
        )
    else:
        crossed_at_all = np.zeros(num_arcs, dtype=bool)
    active = np.ones(num_flows, dtype=bool)

    iterations = 0
    frozen_trace: Optional[List[int]] = [] if _trace.tracing_enabled() else None
    for _ in range(num_flows + int(crossed_at_all.sum()) + 1):
        if not active.any():
            break
        iterations += 1
        active_members = np.bincount(
            flow_group[active], minlength=num_groups
        ).astype(float)
        if flat_arc.size:
            # Weighted bincount of integer weights: exact in float64, equal
            # entry for entry to the dense per-flow bincount.
            counts = np.bincount(
                flat_arc, weights=active_members[flat_group], minlength=num_arcs
            )
        else:
            counts = np.zeros(num_arcs, dtype=float)
        crossed = counts > 0
        share_limited = (
            float((capacity[crossed] / counts[crossed]).min())
            if crossed.any()
            else float("inf")
        )
        demand_limited = float(pending[active].min())
        step = min(share_limited, demand_limited)
        if step == float("inf"):
            break
        step = max(step, 0.0)
        allocation[active] += step
        pending[active] -= step
        capacity -= step * counts
        active_before = int(active.sum())
        active &= pending > DEMAND_EPSILON
        if flat_arc.size:
            exhausted = crossed_at_all & (capacity <= CAPACITY_EPSILON)
            if exhausted.any():
                dead_group = np.zeros(num_groups, dtype=bool)
                dead_group[flat_group[exhausted[flat_arc]]] = True
                active &= ~dead_group[flow_group]
        active_after = int(active.sum())
        if frozen_trace is not None:
            frozen_trace.append(active_before - active_after)
        if step <= STEP_EPSILON and active_after == active_before:
            break
    _record_kernel_stats(iterations, frozen_trace)
    return allocation


def build_incidence(compiled_paths) -> "tuple[np.ndarray, np.ndarray]":
    """Flat ``(flat_flow, flat_arc)`` incidence arrays for compiled paths.

    Args:
        compiled_paths: One :class:`~repro.simulator.arcs.CompiledPath` per
            routable flow, in flow order.
    """
    if not compiled_paths:
        empty = np.array([], dtype=np.int64)
        return empty, empty.copy()
    lengths = np.array([path.arc_indices.size for path in compiled_paths])
    flat_flow = np.repeat(np.arange(len(compiled_paths), dtype=np.int64), lengths)
    if flat_flow.size:
        flat_arc = np.concatenate([path.arc_indices for path in compiled_paths])
    else:
        flat_arc = np.array([], dtype=np.int64)
    return flat_flow, flat_arc
