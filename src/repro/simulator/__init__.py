"""Flow-level network simulator (stand-in for ns-2, Click and ModelNet).

The hot path is array-based: directed arcs get dense integer indices
(:class:`ArcTable`), installed paths compile to index arrays once
(:class:`CompiledPath`) and the per-step max-min fair allocation runs as
NumPy reductions (:func:`max_min_fair_rates`).  The original dict-based
allocation survives in :mod:`repro.simulator.reference` as the oracle the
equivalence tests and scaling benchmarks compare against.
"""

from .aggregate import AggregatedFlows, allocate_aggregated
from .arcs import ArcTable, CompiledPath
from .engine import Controller, Sample, SimulationEngine, SimulationResult
from .failures import FailureSchedule, LinkEvent, NodeEvent, TopologyView
from .fairness import (
    SPARSE_CROSSOVER,
    SparseIncidence,
    batch_max_min_fair_rates,
    batch_max_min_fair_rates_sparse,
    build_incidence,
    fairness_kernel,
    grouped_max_min_fair_rates,
    max_min_fair_rates,
    max_min_fair_rates_sparse,
    select_kernel,
    set_fairness_kernel,
)
from .flows import (
    DemandProfile,
    Flow,
    constant_demand,
    offered_load_vector,
    stepped_demand,
)
from .links import NUM_LINK_STATES, LinkState, SimulatedLink
from .network import DEFAULT_WAKE_DELAY_S, SimulatedNetwork
from .reference import reference_allocate_rates, reference_max_min_rates

__all__ = [
    "AggregatedFlows",
    "allocate_aggregated",
    "ArcTable",
    "CompiledPath",
    "SPARSE_CROSSOVER",
    "SparseIncidence",
    "batch_max_min_fair_rates",
    "batch_max_min_fair_rates_sparse",
    "fairness_kernel",
    "grouped_max_min_fair_rates",
    "max_min_fair_rates_sparse",
    "select_kernel",
    "set_fairness_kernel",
    "Controller",
    "Sample",
    "SimulationEngine",
    "SimulationResult",
    "FailureSchedule",
    "LinkEvent",
    "NodeEvent",
    "TopologyView",
    "build_incidence",
    "max_min_fair_rates",
    "DemandProfile",
    "Flow",
    "constant_demand",
    "offered_load_vector",
    "stepped_demand",
    "NUM_LINK_STATES",
    "LinkState",
    "SimulatedLink",
    "DEFAULT_WAKE_DELAY_S",
    "SimulatedNetwork",
    "reference_allocate_rates",
    "reference_max_min_rates",
]
