"""Flow-level network simulator (stand-in for ns-2, Click and ModelNet)."""

from .engine import Controller, Sample, SimulationEngine, SimulationResult
from .failures import FailureSchedule, LinkEvent
from .flows import DemandProfile, Flow, constant_demand, stepped_demand
from .links import LinkState, SimulatedLink
from .network import DEFAULT_WAKE_DELAY_S, SimulatedNetwork

__all__ = [
    "Controller",
    "Sample",
    "SimulationEngine",
    "SimulationResult",
    "FailureSchedule",
    "LinkEvent",
    "DemandProfile",
    "Flow",
    "constant_demand",
    "stepped_demand",
    "LinkState",
    "SimulatedLink",
    "DEFAULT_WAKE_DELAY_S",
    "SimulatedNetwork",
]
