"""Fluid flows of the simulator.

A flow is a long-lived demand between an origin and a destination (the Click
experiment uses 5 flows of ~1 Mb/s from each source; the ns-2 experiments use
one flow per origin-destination pair whose demand steps every 30 s).  The
engine assigns every flow a path (chosen by the TE controller among the
installed REsPoNse paths) and computes its achieved rate with max-min
fairness over the usable links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..routing.paths import Path

#: A demand profile maps simulation time (seconds) to offered load (bps).
DemandProfile = Callable[[float], float]


def constant_demand(rate_bps: float) -> DemandProfile:
    """A demand profile that never changes."""

    def profile(_now_s: float) -> float:
        return rate_bps

    return profile


def stepped_demand(steps: List[Tuple[float, float]]) -> DemandProfile:
    """A piecewise-constant demand profile.

    Args:
        steps: ``(start_time_s, rate_bps)`` pairs sorted by start time; the
            rate before the first step is zero.
    """
    ordered = sorted(steps)

    def profile(now_s: float) -> float:
        rate = 0.0
        for start, value in ordered:
            if now_s + 1e-12 >= start:
                rate = value
            else:
                break
        return rate

    return profile


@dataclass
class Flow:
    """One origin-destination fluid flow.

    Attributes:
        flow_id: Unique identifier.
        origin: Origin node (where the TE agent controlling it lives).
        destination: Destination node.
        demand: Demand profile (offered load as a function of time).
        path: Currently assigned path, or ``None`` when unrouted.
        rate_bps: Achieved rate computed by the engine for the current step.
    """

    flow_id: str
    origin: str
    destination: str
    demand: DemandProfile
    path: Optional[Path] = None
    rate_bps: float = 0.0

    def offered_load(self, now_s: float) -> float:
        """Offered load at simulation time *now_s*."""
        return max(0.0, float(self.demand(now_s)))

    @property
    def pair(self) -> Tuple[str, str]:
        """The flow's origin-destination pair."""
        return (self.origin, self.destination)


def offered_load_vector(flows: Sequence[Flow], now_s: float) -> np.ndarray:
    """Offered load of every flow at *now_s* as a dense array.

    Demand profiles are arbitrary Python callables, so evaluating them is
    the one per-flow step the vectorized engine cannot avoid; this helper
    at least materialises the result directly into the array the fair-share
    computation consumes.
    """
    return np.fromiter(
        (flow.offered_load(now_s) for flow in flows), dtype=float, count=len(flows)
    )
