"""Integer-indexed arc table and compiled paths for the vectorized engine.

The seed engine kept all per-arc state in dictionaries keyed by
``(src, dst)`` name pairs, which made the per-step max-min fair-share loop a
pure-Python affair.  This module assigns every directed arc (and every
undirected link) of a topology a dense integer index once, at network
construction time, and compiles each :class:`~repro.routing.paths.Path` into
NumPy index arrays exactly once (memoised per node sequence).  All hot-path
bookkeeping — remaining capacities, per-arc loads, link usability — then
becomes array arithmetic over these indices.

This is the same precompute-once/cheap-inner-loop trick the optimisation
layer already borrows from GreenTE (restricting the search to k precomputed
paths); here it is applied to the simulation hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..exceptions import SimulationError
from ..routing.paths import Path
from ..topology.base import Topology, link_key
from .fairness import SparseIncidence


@dataclass(frozen=True)
class CompiledPath:
    """A path lowered to dense arc and link indices.

    Attributes:
        arc_indices: Index (into the arc table) of every directed arc the
            path traverses, in hop order.
        link_indices: Index of the undirected link under each arc, in the
            same order.
    """

    arc_indices: np.ndarray
    link_indices: np.ndarray

    @property
    def num_hops(self) -> int:
        """Number of arcs traversed."""
        return int(self.arc_indices.size)


class ArcTable:
    """Dense integer indexing of a topology's directed arcs and links.

    Attributes:
        arc_keys: ``(src, dst)`` key of every directed arc, in index order.
        arc_index: Mapping from arc key to its dense index.
        arc_capacity: Per-arc capacity (bps) as declared by the topology,
            aligned with ``arc_keys`` (used for utilisation accounting).
        link_keys: Canonical key of every undirected link, in index order.
        link_index: Mapping from canonical link key to its dense index.
        arc_link: For every arc, the index of its parent undirected link.
    """

    def __init__(self, topology: Topology) -> None:
        self.arc_keys: List[Tuple[str, str]] = list(topology.arc_keys())
        self.arc_index: Dict[Tuple[str, str], int] = {
            key: index for index, key in enumerate(self.arc_keys)
        }
        self.arc_capacity = np.array(
            [topology.arc(*key).capacity_bps for key in self.arc_keys], dtype=float
        )
        self.link_keys: List[Tuple[str, str]] = [link.key for link in topology.links()]
        self.link_index: Dict[Tuple[str, str], int] = {
            key: index for index, key in enumerate(self.link_keys)
        }
        self.arc_link = np.array(
            [self.link_index[link_key(*key)] for key in self.arc_keys], dtype=np.int64
        )
        self._compiled: Dict[Tuple[str, ...], CompiledPath] = {}

    @property
    def num_arcs(self) -> int:
        """Number of directed arcs in the table."""
        return len(self.arc_keys)

    @property
    def num_links(self) -> int:
        """Number of undirected links in the table."""
        return len(self.link_keys)

    def compile_path(self, path: Path) -> CompiledPath:
        """The path lowered to index arrays (memoised per node sequence).

        Raises:
            SimulationError: If the path traverses an arc the topology does
                not have.
        """
        cached = self._compiled.get(path.nodes)
        if cached is not None:
            return cached
        try:
            arc_indices = np.array(
                [self.arc_index[key] for key in path.arc_keys()], dtype=np.int64
            )
        except KeyError as error:
            raise SimulationError(
                f"path {path!r} uses unknown arc {error.args[0]}"
            ) from None
        compiled = CompiledPath(
            arc_indices=arc_indices, link_indices=self.arc_link[arc_indices]
        )
        self._compiled[path.nodes] = compiled
        return compiled

    def sparse_incidence(
        self, flat_flow: np.ndarray, flat_arc: np.ndarray, num_flows: int
    ) -> SparseIncidence:
        """The flat flows×arcs incidence lifted to ``scipy.sparse`` CSR form.

        This is the storage the sparse fairness kernels
        (:func:`~repro.simulator.fairness.max_min_fair_rates_sparse` and its
        batch twin) reduce over; the arc dimension is pinned to this table's
        width so capacity vectors stay aligned.
        """
        return SparseIncidence(flat_flow, flat_arc, num_flows, self.num_arcs)
