"""Run-time network state of the flow-level simulator."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..exceptions import SimulationError
from ..power.accounting import full_power, network_power
from ..power.model import PowerModel
from ..routing.paths import Path
from ..topology.base import Topology, link_key
from .flows import Flow
from .links import LinkState, SimulatedLink

#: Default wake-up delay (the ns-2 experiments' conservative 5 s bound).
DEFAULT_WAKE_DELAY_S = 5.0


class SimulatedNetwork:
    """Topology plus per-link power/failure state and per-arc load tracking."""

    def __init__(
        self,
        topology: Topology,
        power_model: Optional[PowerModel] = None,
        wake_delay_s: float = DEFAULT_WAKE_DELAY_S,
    ) -> None:
        self.topology = topology
        self.power_model = power_model
        self.wake_delay_s = float(wake_delay_s)
        self._links: Dict[Tuple[str, str], SimulatedLink] = {}
        for link in topology.links():
            self._links[link.key] = SimulatedLink(
                key=link.key,
                capacity_bps=link.capacity_bps,
                latency_s=link.latency_s,
                wake_delay_s=self.wake_delay_s,
            )
        self._arc_loads: Dict[Tuple[str, str], float] = {
            key: 0.0 for key in topology.arc_keys()
        }
        self._baseline_power_w = (
            full_power(topology, power_model).total_w if power_model else 0.0
        )

    # ------------------------------------------------------------------ #
    # Link state management
    # ------------------------------------------------------------------ #
    def link(self, u: str, v: str) -> SimulatedLink:
        """The simulated link between two nodes."""
        try:
            return self._links[link_key(u, v)]
        except KeyError:
            raise SimulationError(f"no link between {u!r} and {v!r}") from None

    def links(self) -> List[SimulatedLink]:
        """All simulated links."""
        return list(self._links.values())

    def sleep_idle_links(self, keep_active: Iterable[Tuple[str, str]]) -> None:
        """Put to sleep every active link not in the keep-active set."""
        keep = {link_key(u, v) for (u, v) in keep_active}
        for key, simulated in self._links.items():
            if key not in keep and simulated.state == LinkState.ACTIVE:
                simulated.sleep()

    def request_wake(self, links: Iterable[Tuple[str, str]], now_s: float) -> None:
        """Start waking the listed links."""
        for u, v in links:
            self.link(u, v).request_wake(now_s)

    def fail_link(self, u: str, v: str) -> None:
        """Fail the link between two nodes."""
        self.link(u, v).fail()

    def repair_link(self, u: str, v: str) -> None:
        """Repair the link between two nodes."""
        self.link(u, v).repair()

    def advance(self, now_s: float) -> None:
        """Advance all link state machines to *now_s*."""
        for simulated in self._links.values():
            simulated.advance(now_s)

    # ------------------------------------------------------------------ #
    # Path usability and rate allocation
    # ------------------------------------------------------------------ #
    def path_is_usable(self, path: Path) -> bool:
        """Whether every link along the path is active."""
        return all(self._links[key].is_usable for key in path.link_keys())

    def path_has_failure(self, path: Path) -> bool:
        """Whether some link along the path is failed (not merely asleep)."""
        return any(self._links[key].state == LinkState.FAILED for key in path.link_keys())

    def path_rtt(self, path: Path) -> float:
        """Round-trip propagation time along the path."""
        one_way = sum(self._links[key].latency_s for key in path.link_keys())
        return 2.0 * one_way

    def max_rtt(self) -> float:
        """An upper bound on the network round-trip time (diameter based)."""
        diameter_latency = sum(
            sorted((link.latency_s for link in self._links.values()), reverse=True)
        )
        return 2.0 * diameter_latency if self._links else 0.0

    def allocate_rates(self, flows: List[Flow], now_s: float = 0.0) -> None:
        """Max-min fair allocation of flow rates over usable paths.

        Flows whose path is unusable (failed, sleeping or waking link) or
        unassigned receive rate zero.  Every other flow receives at most its
        offered demand at time *now_s*; progressive filling shares bottleneck
        capacity equally among the unfrozen flows crossing it.
        """
        for key in self._arc_loads:
            self._arc_loads[key] = 0.0

        routable = [
            flow
            for flow in flows
            if flow.path is not None and self.path_is_usable(flow.path)
        ]
        for flow in flows:
            flow.rate_bps = 0.0

        remaining_capacity: Dict[Tuple[str, str], float] = {}
        flows_on_arc: Dict[Tuple[str, str], Set[str]] = {}
        demands: Dict[str, float] = {}
        for flow in routable:
            demands[flow.flow_id] = flow.offered_load(now_s)
        for flow in routable:
            for arc in flow.path.arc_keys():
                remaining_capacity.setdefault(
                    arc, self._links[link_key(*arc)].capacity_bps
                )
                flows_on_arc.setdefault(arc, set()).add(flow.flow_id)

        allocation = {flow.flow_id: 0.0 for flow in routable}
        frozen: Set[str] = set()
        # Freeze flows whose demand is already satisfied.
        pending_demand = dict(demands)

        for _ in range(len(routable) + len(remaining_capacity) + 1):
            unfrozen = [fid for fid in allocation if fid not in frozen]
            if not unfrozen:
                break
            # Per-arc fair share for unfrozen flows.
            increments: List[float] = []
            for arc, flow_ids in flows_on_arc.items():
                active_ids = [fid for fid in flow_ids if fid not in frozen]
                if not active_ids:
                    continue
                increments.append(remaining_capacity[arc] / len(active_ids))
            demand_limited = min(
                (pending_demand[fid] for fid in unfrozen), default=float("inf")
            )
            if not increments and demand_limited == float("inf"):
                break
            step = min(min(increments, default=float("inf")), demand_limited)
            if step == float("inf"):
                break
            step = max(step, 0.0)
            for fid in unfrozen:
                allocation[fid] += step
                pending_demand[fid] -= step
            for arc, flow_ids in flows_on_arc.items():
                active_count = sum(1 for fid in flow_ids if fid not in frozen)
                remaining_capacity[arc] -= step * active_count
            # Freeze demand-satisfied flows and flows on exhausted arcs.
            for fid in list(unfrozen):
                if pending_demand[fid] <= 1e-9:
                    frozen.add(fid)
            for arc, flow_ids in flows_on_arc.items():
                if remaining_capacity[arc] <= 1e-9:
                    frozen.update(flow_ids)
            if step <= 1e-12:
                break

        for flow in routable:
            flow.rate_bps = allocation[flow.flow_id]
            for arc in flow.path.arc_keys():
                self._arc_loads[arc] += flow.rate_bps

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def arc_load(self, src: str, dst: str) -> float:
        """Load on the directed arc ``src -> dst`` from the last allocation."""
        return self._arc_loads.get((src, dst), 0.0)

    def arc_utilisation(self, src: str, dst: str) -> float:
        """Utilisation of the directed arc from the last allocation."""
        capacity = self.topology.arc(src, dst).capacity_bps
        return self.arc_load(src, dst) / capacity if capacity > 0 else 0.0

    def path_max_utilisation(self, path: Path) -> float:
        """Largest arc utilisation along a path (from the last allocation)."""
        return max(
            (self.arc_utilisation(src, dst) for src, dst in path.arc_keys()),
            default=0.0,
        )

    def active_elements(self) -> Tuple[Set[str], Set[Tuple[str, str]]]:
        """Nodes and links currently drawing power.

        A link draws power when active or waking; a node draws power when it
        has at least one such link (or is marked always-powered).
        """
        active_links = {
            key for key, simulated in self._links.items() if simulated.consumes_power
        }
        active_nodes: Set[str] = set()
        for u, v in active_links:
            active_nodes.add(u)
            active_nodes.add(v)
        for name in self.topology.nodes():
            if self.topology.node(name).always_powered:
                active_nodes.add(name)
        return active_nodes, active_links

    def power_percent(self) -> float:
        """Current power as a percentage of the fully powered network."""
        if self.power_model is None or self._baseline_power_w <= 0:
            return 100.0
        nodes, links = self.active_elements()
        current = network_power(self.topology, self.power_model, nodes, links).total_w
        return 100.0 * current / self._baseline_power_w
