"""Run-time network state of the flow-level simulator.

The network keeps two synchronised views of its state: the per-link
:class:`~repro.simulator.links.SimulatedLink` state machines (the mutable
source of truth for sleep/wake/failure transitions) and a dense
integer-indexed :class:`~repro.simulator.arcs.ArcTable` over which the
per-step rate allocation and utilisation bookkeeping run as NumPy array
operations (see :mod:`repro.simulator.fairness`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..exceptions import SimulationError
from ..obs import metrics, trace
from ..power.accounting import full_power, network_power
from ..power.model import PowerModel
from ..routing.paths import Path
from ..topology.base import Topology, link_key
from .arcs import ArcTable, CompiledPath
from .fairness import (
    SparseIncidence,
    batch_max_min_fair_rates,
    batch_max_min_fair_rates_sparse,
    build_incidence,
    last_kernel_stats,
    max_min_fair_rates,
    max_min_fair_rates_sparse,
    select_kernel,
)
from .flows import Flow, offered_load_vector
from .links import LinkState, SimulatedLink

#: Default wake-up delay (the ns-2 experiments' conservative 5 s bound).
DEFAULT_WAKE_DELAY_S = 5.0

#: Single-entry compiled flow-set cache churn, registry-wide (one counter
#: pair shared by every SimulatedNetwork in the process).
_FLOWSET_HITS = metrics.counter(
    "repro_flowset_cache_hits_total", "Compiled flow-set cache hits"
)
_FLOWSET_MISSES = metrics.counter(
    "repro_flowset_cache_misses_total", "Compiled flow-set cache rebuilds"
)


@dataclass
class _CompiledFlowSet:
    """Routable-flow filtering and incidence for one (link state, paths) pair.

    ``allocate_rates`` is called once per simulated interval with an
    unchanged flow list most of the time (controllers reassign ``flow.path``
    only on recomputation), yet it used to rebuild the usable vector, walk
    every flow through ``compile_path`` and re-concatenate the incidence on
    every call.  This entry caches all of that behind the link state-code
    vector plus the identity of each flow's path object; ``paths`` keeps
    strong references so the cached ``id()`` keys cannot be recycled while
    the entry lives.
    """

    state_bytes: bytes
    paths_key: Tuple[int, ...]
    paths: List[Optional[Path]]
    usable: np.ndarray
    routable_indices: List[int]
    flat_flow: np.ndarray
    flat_arc: np.ndarray
    _sparse: Optional[SparseIncidence] = field(default=None, repr=False)

    def sparse(self, arc_table: ArcTable) -> SparseIncidence:
        """The CSR incidence for the sparse kernels (built once, cached)."""
        if self._sparse is None:
            self._sparse = arc_table.sparse_incidence(
                self.flat_flow, self.flat_arc, len(self.routable_indices)
            )
        return self._sparse


class SimulatedNetwork:
    """Topology plus per-link power/failure state and per-arc load tracking."""

    def __init__(
        self,
        topology: Topology,
        power_model: Optional[PowerModel] = None,
        wake_delay_s: float = DEFAULT_WAKE_DELAY_S,
    ) -> None:
        self.topology = topology
        self.power_model = power_model
        self.wake_delay_s = float(wake_delay_s)
        self._links: Dict[Tuple[str, str], SimulatedLink] = {}
        for link in topology.links():
            self._links[link.key] = SimulatedLink(
                key=link.key,
                capacity_bps=link.capacity_bps,
                latency_s=link.latency_s,
                wake_delay_s=self.wake_delay_s,
            )
        self._arc_table = ArcTable(topology)
        #: Link objects in arc-table index order (aligned with link indices).
        self._link_list: List[SimulatedLink] = [
            self._links[key] for key in self._arc_table.link_keys
        ]
        # Allocation shares the parent link's (per-direction) capacity, as
        # stored on the SimulatedLink — utilisation accounting instead uses
        # the topology's declared per-arc capacity (ArcTable.arc_capacity).
        self._alloc_capacity = np.array(
            [
                self._links[link_key(*key)].capacity_bps
                for key in self._arc_table.arc_keys
            ],
            dtype=float,
        )
        self._arc_load_vec = np.zeros(self._arc_table.num_arcs, dtype=float)
        self._baseline_power_w = (
            full_power(topology, power_model).total_w if power_model else 0.0
        )
        #: Single-entry cache of the last routable-flow compilation.
        self._compiled_flows: Optional[_CompiledFlowSet] = None

    # ------------------------------------------------------------------ #
    # Link state management
    # ------------------------------------------------------------------ #
    def link(self, u: str, v: str) -> SimulatedLink:
        """The simulated link between two nodes."""
        try:
            return self._links[link_key(u, v)]
        except KeyError:
            raise SimulationError(f"no link between {u!r} and {v!r}") from None

    def links(self) -> List[SimulatedLink]:
        """All simulated links."""
        return list(self._links.values())

    def sleep_idle_links(self, keep_active: Iterable[Tuple[str, str]]) -> None:
        """Put to sleep every active link not in the keep-active set."""
        keep = {link_key(u, v) for (u, v) in keep_active}
        for key, simulated in self._links.items():
            if key not in keep and simulated.state == LinkState.ACTIVE:
                simulated.sleep()

    def request_wake(self, links: Iterable[Tuple[str, str]], now_s: float) -> None:
        """Start waking the listed links."""
        for u, v in links:
            self.link(u, v).request_wake(now_s)

    def fail_link(self, u: str, v: str) -> None:
        """Fail the link between two nodes."""
        self.link(u, v).fail()

    def repair_link(self, u: str, v: str) -> None:
        """Repair the link between two nodes."""
        self.link(u, v).repair()

    def advance(self, now_s: float) -> None:
        """Advance all link state machines to *now_s*."""
        for simulated in self._links.values():
            simulated.advance(now_s)

    # ------------------------------------------------------------------ #
    # Path usability and rate allocation
    # ------------------------------------------------------------------ #
    def path_is_usable(self, path: Path) -> bool:
        """Whether every link along the path is active."""
        return all(self._links[key].is_usable for key in path.link_keys())

    def path_has_failure(self, path: Path) -> bool:
        """Whether some link along the path is failed (not merely asleep)."""
        return any(self._links[key].state == LinkState.FAILED for key in path.link_keys())

    def path_rtt(self, path: Path) -> float:
        """Round-trip propagation time along the path."""
        one_way = sum(self._links[key].latency_s for key in path.link_keys())
        return 2.0 * one_way

    def max_rtt(self) -> float:
        """An upper bound on the network round-trip time (diameter based)."""
        diameter_latency = sum(
            sorted((link.latency_s for link in self._links.values()), reverse=True)
        )
        return 2.0 * diameter_latency if self._links else 0.0

    def allocate_rates(self, flows: List[Flow], now_s: float = 0.0) -> None:
        """Max-min fair allocation of flow rates over usable paths.

        Flows whose path is unusable (failed, sleeping or waking link) or
        unassigned receive rate zero.  Every other flow receives at most its
        offered demand at time *now_s*; progressive filling shares bottleneck
        capacity equally among the unfrozen flows crossing it.

        The computation is fully vectorized: flow paths are compiled to arc
        index arrays once (memoised) and each filling iteration is a few
        NumPy reductions over the flows×arcs incidence — see
        :func:`repro.simulator.fairness.max_min_fair_rates`.  The dict-based
        seed algorithm survives as the oracle in
        :mod:`repro.simulator.reference`.

        The routable-flow filtering and the flat incidence are cached behind
        the link state-code vector and the flows' path identities, and the
        fairness kernel is chosen by
        :func:`repro.simulator.fairness.select_kernel` (dense below the
        ``flows*arcs`` crossover, the bit-identical sparse twin above it).
        """
        self._arc_load_vec[:] = 0.0
        for flow in flows:
            flow.rate_bps = 0.0
        if not flows:
            return

        entry = self._compiled_flow_set(flows)
        if not entry.routable_indices:
            return

        routable = [flows[index] for index in entry.routable_indices]
        demands = offered_load_vector(routable, now_s)
        allocation = self._run_fair_kernel(demands, entry)
        for flow, rate in zip(routable, allocation, strict=True):
            flow.rate_bps = float(rate)
        if entry.flat_arc.size:
            self._arc_load_vec += np.bincount(
                entry.flat_arc,
                weights=allocation[entry.flat_flow],
                minlength=self._arc_table.num_arcs,
            )

    def allocate_rates_batch(
        self, flows: List[Flow], times_s: Sequence[float]
    ) -> np.ndarray:
        """Max-min fair rates at many instants, solved as one batched problem.

        All instants share one compiled flows×arcs incidence; the filling
        runs through :func:`repro.simulator.fairness.batch_max_min_fair_rates`
        with a leading batch dimension over the time axis.  Row ``i`` of the
        returned ``(len(times_s), len(flows))`` array is bit-identical to
        calling :meth:`allocate_rates` at ``times_s[i]`` and reading off
        ``flow.rate_bps`` — but unlike :meth:`allocate_rates` this is a pure
        query: flow rates and arc loads are left untouched.
        """
        times = [float(time) for time in times_s]
        rates = np.zeros((len(times), len(flows)), dtype=float)
        if not flows or not times:
            return rates

        entry = self._compiled_flow_set(flows)
        if not entry.routable_indices:
            return rates

        routable = [flows[index] for index in entry.routable_indices]
        demands = np.stack(
            [offered_load_vector(routable, time) for time in times]
        )
        kernel = select_kernel(len(routable), self._arc_table.num_arcs)
        with trace.span(
            "fairness.kernel",
            kernel=kernel,
            flows=len(routable),
            arcs=self._arc_table.num_arcs,
            batch=len(times),
        ) as kernel_span:
            if kernel == "sparse":
                allocation = batch_max_min_fair_rates_sparse(
                    demands,
                    entry.flat_flow,
                    entry.flat_arc,
                    self._alloc_capacity,
                    incidence=entry.sparse(self._arc_table),
                )
            else:
                allocation = batch_max_min_fair_rates(
                    demands, entry.flat_flow, entry.flat_arc, self._alloc_capacity
                )
            if trace.tracing_enabled():
                kernel_span.set(**last_kernel_stats())
        rates[:, entry.routable_indices] = allocation
        return rates

    def _compiled_flow_set(self, flows: List[Flow]) -> _CompiledFlowSet:
        """The cached routable filtering/incidence for the current state.

        Valid while every link keeps its state code and every flow keeps the
        same path object; any sleep/wake/failure transition or controller
        path reassignment changes the key and forces a rebuild.
        """
        state_bytes = self.link_state_codes().tobytes()
        paths_key = tuple(id(flow.path) for flow in flows)
        cached = self._compiled_flows
        if (
            cached is not None
            and cached.state_bytes == state_bytes
            and cached.paths_key == paths_key
        ):
            _FLOWSET_HITS.inc()
            return cached
        _FLOWSET_MISSES.inc()

        usable = self.link_usable_vector()
        routable_indices: List[int] = []
        compiled: List[CompiledPath] = []
        for index, flow in enumerate(flows):
            if flow.path is None:
                continue
            path = self._arc_table.compile_path(flow.path)
            if path.link_indices.size == 0 or bool(usable[path.link_indices].all()):
                routable_indices.append(index)
                compiled.append(path)
        flat_flow, flat_arc = build_incidence(compiled)
        entry = _CompiledFlowSet(
            state_bytes=state_bytes,
            paths_key=paths_key,
            paths=[flow.path for flow in flows],
            usable=usable,
            routable_indices=routable_indices,
            flat_flow=flat_flow,
            flat_arc=flat_arc,
        )
        self._compiled_flows = entry
        return entry

    def _run_fair_kernel(
        self, demands: np.ndarray, entry: _CompiledFlowSet
    ) -> np.ndarray:
        """Dispatch one demand vector to the selected fairness kernel."""
        kernel = select_kernel(len(entry.routable_indices), self._arc_table.num_arcs)
        with trace.span(
            "fairness.kernel",
            kernel=kernel,
            flows=len(entry.routable_indices),
            arcs=self._arc_table.num_arcs,
        ) as kernel_span:
            if kernel == "sparse":
                allocation = max_min_fair_rates_sparse(
                    demands,
                    entry.flat_flow,
                    entry.flat_arc,
                    self._alloc_capacity,
                    incidence=entry.sparse(self._arc_table),
                )
            else:
                allocation = max_min_fair_rates(
                    demands, entry.flat_flow, entry.flat_arc, self._alloc_capacity
                )
            if trace.tracing_enabled():
                kernel_span.set(**last_kernel_stats())
        return allocation

    # ------------------------------------------------------------------ #
    # Array-indexed views (the vectorized engine's fast path)
    # ------------------------------------------------------------------ #
    @property
    def arc_table(self) -> ArcTable:
        """The dense integer indexing of arcs and links."""
        return self._arc_table

    @property
    def alloc_capacity(self) -> np.ndarray:
        """Per-arc allocation capacity (the parent link's, per direction).

        The live internal buffer the fairness kernels read — callers must
        not mutate it.
        """
        return self._alloc_capacity

    def compile_path(self, path: Path) -> CompiledPath:
        """The path lowered to arc/link index arrays (memoised)."""
        return self._arc_table.compile_path(path)

    def link_usable_vector(self) -> np.ndarray:
        """Boolean usability per link, aligned with the arc table's indices."""
        return np.fromiter(
            (link.state is LinkState.ACTIVE for link in self._link_list),
            dtype=bool,
            count=len(self._link_list),
        )

    def link_state_codes(self) -> np.ndarray:
        """Integer state code per link (``LinkState.code`` order).

        ``np.bincount(codes, minlength=NUM_LINK_STATES)`` yields the
        active/sleeping/waking/failed histogram in one call.
        """
        return np.fromiter(
            (link.state.code for link in self._link_list),
            dtype=np.int64,
            count=len(self._link_list),
        )

    def arc_load_vector(self) -> np.ndarray:
        """Per-arc load (bps) from the last allocation, in arc-index order.

        The returned array is the live internal buffer — callers that want
        to mutate it (e.g. the TE controller's planned view) must copy.
        """
        return self._arc_load_vec

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def arc_load(self, src: str, dst: str) -> float:
        """Load on the directed arc ``src -> dst`` from the last allocation."""
        index = self._arc_table.arc_index.get((src, dst))
        return float(self._arc_load_vec[index]) if index is not None else 0.0

    def arc_utilisation(self, src: str, dst: str) -> float:
        """Utilisation of the directed arc from the last allocation."""
        capacity = self.topology.arc(src, dst).capacity_bps
        return self.arc_load(src, dst) / capacity if capacity > 0 else 0.0

    def path_max_utilisation(self, path: Path) -> float:
        """Largest arc utilisation along a path (from the last allocation)."""
        compiled = self._arc_table.compile_path(path)
        if compiled.arc_indices.size == 0:
            return 0.0
        capacities = self._arc_table.arc_capacity[compiled.arc_indices]
        loads = self._arc_load_vec[compiled.arc_indices]
        utilisations = np.divide(
            loads,
            capacities,
            out=np.zeros_like(loads),
            where=capacities > 0,
        )
        return float(utilisations.max())

    def active_elements(self) -> Tuple[Set[str], Set[Tuple[str, str]]]:
        """Nodes and links currently drawing power.

        A link draws power when active or waking; a node draws power when it
        has at least one such link (or is marked always-powered).
        """
        active_links = {
            key for key, simulated in self._links.items() if simulated.consumes_power
        }
        active_nodes: Set[str] = set()
        # repro: allow[REP104] pure set union; the result is itself a set
        for u, v in active_links:
            active_nodes.add(u)
            active_nodes.add(v)
        for name in self.topology.nodes():
            if self.topology.node(name).always_powered:
                active_nodes.add(name)
        return active_nodes, active_links

    def power_percent(self) -> float:
        """Current power as a percentage of the fully powered network."""
        if self.power_model is None or self._baseline_power_w <= 0:
            return 100.0
        nodes, links = self.active_elements()
        current = network_power(self.topology, self.power_model, nodes, links).total_w
        return 100.0 * current / self._baseline_power_w
