"""Per-link state machine of the flow-level simulator.

Network elements in REsPoNse can be asleep, awake or failed; waking a
sleeping element takes a hardware-dependent delay (the paper uses 10 ms for
the Click experiment — "the estimated activation times of future hardware" —
and 5 s for the ns-2 experiments — "an upper bound on the time reported to
power on a network port in existing hardware").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..exceptions import SimulationError


class LinkState(enum.Enum):
    """Power/availability state of an undirected link.

    Each state carries a dense integer :attr:`code` so that the vectorized
    engine can hold the whole network's link state in one small integer
    array (see :meth:`SimulatedNetwork.link_state_codes`) and count states
    with a single ``bincount`` instead of a per-link Python loop.
    """

    ACTIVE = "active"
    SLEEPING = "sleeping"
    WAKING = "waking"
    FAILED = "failed"

    @property
    def code(self) -> int:
        """Dense integer code of the state (stable across runs)."""
        return _STATE_CODES[self]


#: Dense state -> integer mapping used by the array-based bookkeeping.
_STATE_CODES = {
    LinkState.ACTIVE: 0,
    LinkState.SLEEPING: 1,
    LinkState.WAKING: 2,
    LinkState.FAILED: 3,
}

#: Number of distinct link states (size of the ``bincount`` histogram).
NUM_LINK_STATES = len(_STATE_CODES)


@dataclass
class SimulatedLink:
    """Run-time state of one undirected link.

    Attributes:
        key: Canonical link key ``(u, v)``.
        capacity_bps: Capacity per direction.
        latency_s: One-way propagation latency.
        wake_delay_s: Time needed to go from ``SLEEPING`` to ``ACTIVE``.
        state: Current :class:`LinkState`.
    """

    key: Tuple[str, str]
    capacity_bps: float
    latency_s: float
    wake_delay_s: float
    state: LinkState = LinkState.ACTIVE
    _wake_ready_at: Optional[float] = field(default=None, repr=False)
    #: Last simulation time at which the link carried traffic.
    last_busy_at: float = 0.0

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def is_usable(self) -> bool:
        """Whether traffic can cross the link right now."""
        return self.state == LinkState.ACTIVE

    @property
    def consumes_power(self) -> bool:
        """Whether the link's ports draw power (active or currently waking)."""
        return self.state in (LinkState.ACTIVE, LinkState.WAKING)

    # ------------------------------------------------------------------ #
    # Transitions
    # ------------------------------------------------------------------ #
    def sleep(self) -> None:
        """Put the link to sleep (only possible when active and idle)."""
        if self.state == LinkState.FAILED:
            raise SimulationError(f"cannot sleep failed link {self.key}")
        if self.state == LinkState.ACTIVE:
            self.state = LinkState.SLEEPING
            self._wake_ready_at = None

    def request_wake(self, now_s: float) -> None:
        """Start waking the link; it becomes usable after ``wake_delay_s``."""
        if self.state == LinkState.FAILED:
            return
        if self.state == LinkState.SLEEPING:
            self.state = LinkState.WAKING
            self._wake_ready_at = now_s + self.wake_delay_s

    def fail(self) -> None:
        """Fail the link (it stops carrying traffic immediately)."""
        self.state = LinkState.FAILED
        self._wake_ready_at = None

    def repair(self) -> None:
        """Repair a failed link; it comes back active."""
        if self.state == LinkState.FAILED:
            self.state = LinkState.ACTIVE
            self._wake_ready_at = None

    def advance(self, now_s: float) -> None:
        """Complete any pending wake-up whose delay has elapsed."""
        if (
            self.state == LinkState.WAKING
            and self._wake_ready_at is not None
            and now_s + 1e-12 >= self._wake_ready_at
        ):
            self.state = LinkState.ACTIVE
            self._wake_ready_at = None
