"""Fixed-step simulation engine.

The engine replaces the paper's ns-2 simulations, Click testbed and ModelNet
emulator with a discrete-time fluid model: at every step it applies scheduled
failures, completes pending wake-ups, lets the traffic-engineering controller
re-assign flows to installed paths, computes max-min fair flow rates, and
samples the metrics the evaluation figures plot (per-flow rates, aggregate
demand and sending rate, network power).

The per-step heavy lifting (max-min fair sharing, arc-load bookkeeping) is
vectorized: the network compiles every installed path to arc-index arrays
once and runs the allocation as NumPy reductions — see
:mod:`repro.simulator.arcs` and :mod:`repro.simulator.fairness`.  Sampling
likewise reads link states and monitored arc loads through the integer
arc table rather than per-element dictionary walks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

import numpy as np

from ..exceptions import SimulationError
from ..topology.base import link_key
from .failures import FailureSchedule, NodeEvent
from .flows import Flow
from .links import NUM_LINK_STATES, LinkState
from .network import SimulatedNetwork


class Controller(Protocol):
    """Interface of traffic-engineering controllers driven by the engine."""

    def initialise(self, network: SimulatedNetwork, flows: List[Flow], now_s: float) -> None:
        """Called once before the first step."""

    def control(self, network: SimulatedNetwork, flows: List[Flow], now_s: float) -> None:
        """Called every step; may re-assign flow paths and wake/sleep links."""


@dataclass
class Sample:
    """One recorded simulation sample."""

    time_s: float
    total_demand_bps: float
    total_rate_bps: float
    power_percent: float
    flow_rates: Dict[str, float]
    sleeping_links: int
    waking_links: int
    failed_links: int
    monitored_arc_loads: Dict[Tuple[str, str], float] = field(default_factory=dict)


@dataclass
class SimulationResult:
    """Time series recorded by a simulation run."""

    samples: List[Sample] = field(default_factory=list)

    def times(self) -> List[float]:
        """Sample timestamps."""
        return [sample.time_s for sample in self.samples]

    def series(self, attribute: str) -> List[float]:
        """The time series of a scalar sample attribute."""
        return [getattr(sample, attribute) for sample in self.samples]

    def flow_rate_series(self, flow_id: str) -> List[float]:
        """Rate time series of one flow (zero when absent from a sample)."""
        return [sample.flow_rates.get(flow_id, 0.0) for sample in self.samples]

    def arc_load_series(self, src: str, dst: str) -> List[float]:
        """Load time series of a monitored directed arc."""
        return [
            sample.monitored_arc_loads.get((src, dst), 0.0) for sample in self.samples
        ]

    def aggregate_rate_series(self) -> List[float]:
        """Total achieved sending rate over time."""
        return self.series("total_rate_bps")

    def power_series(self) -> List[float]:
        """Network power (percent of original) over time."""
        return self.series("power_percent")

    def final_sample(self) -> Sample:
        """The last recorded sample."""
        if not self.samples:
            raise SimulationError("the simulation recorded no samples")
        return self.samples[-1]


class SimulationEngine:
    """Drives a :class:`SimulatedNetwork`, a set of flows and a controller."""

    def __init__(
        self,
        network: SimulatedNetwork,
        flows: List[Flow],
        controller: Controller,
        time_step_s: float = 0.01,
        sample_interval_s: Optional[float] = None,
        failures: Optional[FailureSchedule] = None,
        monitored_arcs: Optional[List[Tuple[str, str]]] = None,
    ) -> None:
        if time_step_s <= 0:
            raise SimulationError(f"time step must be positive, got {time_step_s}")
        self.network = network
        self.flows = flows
        self.controller = controller
        self.time_step_s = float(time_step_s)
        self.sample_interval_s = (
            float(sample_interval_s) if sample_interval_s is not None else self.time_step_s
        )
        self.failures = failures or FailureSchedule()
        self.monitored_arcs = list(monitored_arcs or [])
        flow_ids = [flow.flow_id for flow in flows]
        if len(set(flow_ids)) != len(flow_ids):
            raise SimulationError("flow identifiers must be unique")
        # Current failure causes, maintained while applying scheduled events:
        # a link stays failed as long as any cause (its own failure or a
        # failed endpoint) is still in effect.
        self._failed_links: set = set()
        self._failed_nodes: set = set()

    def _link_still_failed(self, u: str, v: str) -> bool:
        """Whether some still-active failure keeps link ``(u, v)`` down."""
        return (
            link_key(u, v) in self._failed_links
            or u in self._failed_nodes
            or v in self._failed_nodes
        )

    def run(self, duration_s: float, start_s: float = 0.0) -> SimulationResult:
        """Run the simulation for *duration_s* seconds of simulated time."""
        if duration_s <= 0:
            raise SimulationError(f"duration must be positive, got {duration_s}")
        result = SimulationResult()
        now = float(start_s)
        end = start_s + duration_s
        previous = now - self.time_step_s
        last_sample_at = -float("inf")
        self._failed_links.clear()
        self._failed_nodes.clear()

        self.controller.initialise(self.network, self.flows, now)

        while now <= end + 1e-12:
            # 1. Scheduled failures and repairs.  Link- and node-scoped
            # failures overlap (a node takes its incident links down), so
            # the engine tracks both causes and only repairs a link once no
            # cause keeps it failed.
            for event in self.failures.due(previous, now):
                if isinstance(event, NodeEvent):
                    if event.kind == "fail":
                        self._failed_nodes.add(event.node)
                    else:
                        self._failed_nodes.discard(event.node)
                    affected = [
                        link.endpoints
                        for link in self.network.topology.incident_links(event.node)
                    ]
                else:
                    key = link_key(*event.link)
                    if event.kind == "fail":
                        self._failed_links.add(key)
                    else:
                        self._failed_links.discard(key)
                    affected = [event.link]
                for u, v in affected:
                    if event.kind == "fail":
                        self.network.fail_link(u, v)
                    elif self._link_still_failed(u, v):
                        continue  # another failure still holds the link down
                    else:
                        self.network.repair_link(u, v)

            # 2. Complete pending wake-ups.
            self.network.advance(now)

            # 3. Traffic engineering decisions.
            self.controller.control(self.network, self.flows, now)

            # 4. Rate allocation.
            self.network.allocate_rates(self.flows, now_s=now)

            # 5. Sampling.
            if now - last_sample_at + 1e-12 >= self.sample_interval_s:
                result.samples.append(self._sample(now))
                last_sample_at = now

            previous = now
            now += self.time_step_s
        return result

    def _sample(self, now_s: float) -> Sample:
        total_demand = sum(flow.offered_load(now_s) for flow in self.flows)
        total_rate = sum(flow.rate_bps for flow in self.flows)
        state_counts = np.bincount(
            self.network.link_state_codes(), minlength=NUM_LINK_STATES
        )
        return Sample(
            time_s=now_s,
            total_demand_bps=total_demand,
            total_rate_bps=total_rate,
            power_percent=self.network.power_percent(),
            flow_rates={flow.flow_id: flow.rate_bps for flow in self.flows},
            sleeping_links=int(state_counts[LinkState.SLEEPING.code]),
            waking_links=int(state_counts[LinkState.WAKING.code]),
            failed_links=int(state_counts[LinkState.FAILED.code]),
            monitored_arc_loads={
                (src, dst): self.network.arc_load(src, dst)
                for src, dst in self.monitored_arcs
            },
        )
