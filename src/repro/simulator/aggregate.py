"""Array-native aggregated flow tables for the million-flow scale axis.

At 10^5–10^6 flows the engine's wall is not the fairness arithmetic but the
per-flow Python objects around it: one :class:`~repro.simulator.flows.Flow`
dataclass plus a demand closure per flow, and a flows×arcs incidence with
one row per flow.  "Millions of users" traffic is massively redundant,
though — every user flow between the same endpoints follows the same routed
path — so this module stores flows as dense arrays grouped by identical
path and allocates through
:func:`~repro.simulator.fairness.grouped_max_min_fair_rates`, whose output
is **bit-identical** to running the dense per-flow kernel on the expanded
incidence (the exact-equivalence contract, property-tested in
``tests/test_property_based.py``).

The memory story: per-flow state shrinks to a handful of float64/int64
vectors and the incidence shrinks from O(flows × hops) to O(groups × hops).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import SimulationError
from ..obs import trace
from ..routing.paths import Path
from .fairness import build_incidence, grouped_max_min_fair_rates, last_kernel_stats
from .flows import Flow
from .network import SimulatedNetwork

#: Group index assigned to flows with no path (never allocated).
UNROUTED_GROUP = -1


@dataclass(frozen=True)
class AggregatedFlows:
    """Flows stored as arrays, grouped by identical routed path.

    Attributes:
        paths: The routed path of each group, in group-index order.
        flow_group: Group index per flow (``UNROUTED_GROUP`` for flows
            without a path), aligned with the flow order the table was
            built from.
        demands_bps: Base offered load per flow (bps), same alignment.
    """

    paths: Tuple[Path, ...]
    flow_group: np.ndarray
    demands_bps: np.ndarray

    def __post_init__(self) -> None:
        if self.flow_group.shape != self.demands_bps.shape:
            raise SimulationError(
                "flow_group and demands_bps must align, got "
                f"{self.flow_group.shape} vs {self.demands_bps.shape}"
            )
        if self.flow_group.size and int(self.flow_group.max()) >= len(self.paths):
            raise SimulationError(
                f"flow_group references group {int(self.flow_group.max())} "
                f"but only {len(self.paths)} paths are defined"
            )

    @property
    def num_flows(self) -> int:
        """Total member flows in the table."""
        return int(self.flow_group.size)

    @property
    def num_groups(self) -> int:
        """Number of distinct routed paths."""
        return len(self.paths)

    def member_counts(self) -> np.ndarray:
        """Member flows per group."""
        routed = self.flow_group[self.flow_group != UNROUTED_GROUP]
        return np.bincount(routed, minlength=self.num_groups)

    def nbytes(self) -> int:
        """Resident bytes of the per-flow arrays (the scale-axis footprint)."""
        return int(self.flow_group.nbytes + self.demands_bps.nbytes)

    @classmethod
    def from_flows(cls, flows: Sequence[Flow], now_s: float = 0.0) -> "AggregatedFlows":
        """Group a ``Flow`` list by path identity, sampling demands at *now_s*.

        Flow order is preserved (rates from :func:`allocate_aggregated`
        align with the input), and groups appear in first-seen order, which
        matches the flow-major order the dense engine compiles paths in.
        """
        paths: List[Path] = []
        group_of: Dict[Tuple[str, ...], int] = {}
        flow_group = np.empty(len(flows), dtype=np.int64)
        demands = np.empty(len(flows), dtype=float)
        for index, flow in enumerate(flows):
            demands[index] = flow.offered_load(now_s)
            if flow.path is None:
                flow_group[index] = UNROUTED_GROUP
                continue
            group = group_of.get(flow.path.nodes)
            if group is None:
                group = len(paths)
                group_of[flow.path.nodes] = group
                paths.append(flow.path)
            flow_group[index] = group
        return cls(
            paths=tuple(paths), flow_group=flow_group, demands_bps=demands
        )

    @classmethod
    def from_arrays(
        cls,
        paths: Sequence[Path],
        flow_group: np.ndarray,
        demands_bps: np.ndarray,
    ) -> "AggregatedFlows":
        """Build directly from arrays (no ``Flow`` objects — the scale path)."""
        return cls(
            paths=tuple(paths),
            flow_group=np.asarray(flow_group, dtype=np.int64),
            demands_bps=np.asarray(demands_bps, dtype=float),
        )


def allocate_aggregated(
    network: SimulatedNetwork,
    table: AggregatedFlows,
    demands_bps: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-flow max-min fair rates for an aggregated table — a pure query.

    Filters group paths by link usability exactly as
    :meth:`~repro.simulator.network.SimulatedNetwork.allocate_rates` filters
    per-flow paths, then allocates through the grouped kernel.  The returned
    per-flow rate vector is bit-identical to building one ``Flow`` per
    member and calling ``allocate_rates`` (unroutable and unrouted flows get
    rate zero); network flow rates and arc loads are left untouched.

    Args:
        demands_bps: Offered load per flow; defaults to the table's base
            demands.
    """
    demands = (
        table.demands_bps
        if demands_bps is None
        else np.asarray(demands_bps, dtype=float)
    )
    if demands.shape != table.flow_group.shape:
        raise SimulationError(
            f"demand vector shape {demands.shape} does not match "
            f"{table.num_flows} flows"
        )
    rates = np.zeros(table.num_flows, dtype=float)
    if table.num_flows == 0:
        return rates

    usable = network.link_usable_vector()
    arc_table = network.arc_table
    compiled = [arc_table.compile_path(path) for path in table.paths]
    kept: List[int] = []
    kept_compiled = []
    for group, path in enumerate(compiled):
        if path.link_indices.size == 0 or bool(usable[path.link_indices].all()):
            kept.append(group)
            kept_compiled.append(path)
    if not kept:
        return rates

    # Remap the routable groups to a dense 0..K-1 index space, keeping the
    # original group order (== the dense engine's flow-major compile order).
    remap = np.full(table.num_groups, -1, dtype=np.int64)
    remap[kept] = np.arange(len(kept), dtype=np.int64)
    routed = table.flow_group != UNROUTED_GROUP
    flow_ok = routed.copy()
    flow_ok[routed] = remap[table.flow_group[routed]] >= 0
    if not flow_ok.any():
        return rates

    flat_group, flat_arc = build_incidence(kept_compiled)
    with trace.span(
        "fairness.kernel",
        kernel="grouped",
        flows=int(flow_ok.sum()),
        groups=len(kept),
    ) as kernel_span:
        allocation = grouped_max_min_fair_rates(
            demands[flow_ok],
            remap[table.flow_group[flow_ok]],
            flat_group,
            flat_arc,
            network.alloc_capacity,
            num_groups=len(kept),
        )
        if trace.tracing_enabled():
            kernel_span.set(**last_kernel_stats())
    rates[flow_ok] = allocation
    return rates
