"""Reference (seed) dict-based max-min allocation, kept as a test oracle.

This is the pure-Python progressive-filling implementation the simulator
shipped with before the vectorized engine landed.  It is deliberately kept
faithful to the original semantics — freezing thresholds, iteration bound
and termination conditions included — so that property tests and the
:mod:`benchmarks` suite can assert that the NumPy implementation in
:mod:`repro.simulator.fairness` computes identical rates, and measure the
speedup against it.  It must not be used on the hot path.

One deliberate fix over the seed (applied identically to both
implementations): a zero-size filling step only terminates the loop when it
also freezes no flow.  The seed broke out unconditionally, so a single
routable flow with zero instantaneous demand starved every other flow of
the step to rate zero.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .flows import Flow


def reference_max_min_rates(
    network, flows: List[Flow], now_s: float = 0.0
) -> Tuple[Dict[str, float], Dict[Tuple[str, str], float]]:
    """Seed max-min fair allocation over usable paths (pure, no mutation).

    Args:
        network: A :class:`~repro.simulator.network.SimulatedNetwork`.
        flows: The flows to allocate; their ``rate_bps`` is left untouched.
        now_s: Simulation time at which demands are evaluated.

    Returns:
        ``(rates, arc_loads)``: achieved rate per flow id (zero for unrouted
        or unroutable flows) and resulting load per directed arc key.
    """
    arc_loads: Dict[Tuple[str, str], float] = {
        key: 0.0 for key in network.topology.arc_keys()
    }
    rates: Dict[str, float] = {flow.flow_id: 0.0 for flow in flows}

    routable = [
        flow
        for flow in flows
        if flow.path is not None and network.path_is_usable(flow.path)
    ]

    remaining_capacity: Dict[Tuple[str, str], float] = {}
    flows_on_arc: Dict[Tuple[str, str], Set[str]] = {}
    demands: Dict[str, float] = {}
    for flow in routable:
        demands[flow.flow_id] = flow.offered_load(now_s)
    for flow in routable:
        for arc in flow.path.arc_keys():
            remaining_capacity.setdefault(arc, network.link(*arc).capacity_bps)
            flows_on_arc.setdefault(arc, set()).add(flow.flow_id)

    allocation = {flow.flow_id: 0.0 for flow in routable}
    frozen: Set[str] = set()
    pending_demand = dict(demands)

    for _ in range(len(routable) + len(remaining_capacity) + 1):
        unfrozen = [fid for fid in allocation if fid not in frozen]
        if not unfrozen:
            break
        increments: List[float] = []
        for arc, flow_ids in flows_on_arc.items():
            active_ids = [fid for fid in flow_ids if fid not in frozen]
            if not active_ids:
                continue
            increments.append(remaining_capacity[arc] / len(active_ids))
        demand_limited = min(
            (pending_demand[fid] for fid in unfrozen), default=float("inf")
        )
        if not increments and demand_limited == float("inf"):
            break
        step = min(min(increments, default=float("inf")), demand_limited)
        if step == float("inf"):
            break
        step = max(step, 0.0)
        for fid in unfrozen:
            allocation[fid] += step
            pending_demand[fid] -= step
        for arc, flow_ids in flows_on_arc.items():
            active_count = sum(1 for fid in flow_ids if fid not in frozen)
            remaining_capacity[arc] -= step * active_count
        frozen_before = len(frozen)
        for fid in list(unfrozen):
            if pending_demand[fid] <= 1e-9:
                frozen.add(fid)
        for arc, flow_ids in flows_on_arc.items():
            if remaining_capacity[arc] <= 1e-9:
                frozen.update(flow_ids)
        if step <= 1e-12 and len(frozen) == frozen_before:
            break

    for flow in routable:
        rates[flow.flow_id] = allocation[flow.flow_id]
        for arc in flow.path.arc_keys():
            arc_loads[arc] += allocation[flow.flow_id]
    return rates, arc_loads


def reference_allocate_rates(network, flows: List[Flow], now_s: float = 0.0) -> None:
    """Drop-in replacement for ``SimulatedNetwork.allocate_rates`` (oracle).

    Mutates ``flow.rate_bps`` like the engine does, using the reference
    algorithm — handy for end-to-end benchmarking of the two engines.
    """
    rates, _loads = reference_max_min_rates(network, flows, now_s=now_s)
    for flow in flows:
        flow.rate_bps = rates[flow.flow_id]
