"""Failure injection and failure-aware topology views.

Two layers consume this module:

* the flow-level :class:`~repro.simulator.engine.SimulationEngine` applies a
  :class:`FailureSchedule`'s link/node events step by step, and
* the scenario :mod:`~repro.scenario.timeline` derives a
  :class:`TopologyView` per trace interval — the failure-adjusted topology a
  :class:`~repro.scenario.timeline.SchemeRuntime` steps against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Tuple, Union

from ..exceptions import SimulationError
from ..topology.base import link_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..routing.paths import Path
    from ..topology.base import Topology

#: Slack applied to both window edges of :meth:`FailureSchedule.due`.  The
#: same shift on both bounds keeps consecutive windows disjoint: an event can
#: drift past an interval edge by accumulated float error and still fire, but
#: it can never fire twice.
_EDGE_TOLERANCE_S = 1e-12


@dataclass(frozen=True)
class LinkEvent:
    """A scheduled link failure or repair.

    Attributes:
        time_s: Simulation time at which the event takes effect.
        link: Undirected link endpoints.
        kind: ``"fail"`` or ``"repair"``.
    """

    time_s: float
    link: Tuple[str, str]
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in ("fail", "repair"):
            raise SimulationError(f"unknown link event kind: {self.kind!r}")


@dataclass(frozen=True)
class NodeEvent:
    """A scheduled node failure or repair.

    A failed node takes every incident link down with it (constraint (1) of
    the paper: links attached to a powered-off router are inactive).

    Attributes:
        time_s: Simulation time at which the event takes effect.
        node: The failing/recovering node.
        kind: ``"fail"`` or ``"repair"``.
    """

    time_s: float
    node: str
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in ("fail", "repair"):
            raise SimulationError(f"unknown node event kind: {self.kind!r}")


ScheduledEvent = Union[LinkEvent, NodeEvent]


class FailureSchedule:
    """An ordered collection of link/node failure and repair events."""

    def __init__(self) -> None:
        self._events: List[ScheduledEvent] = []

    def fail_at(self, time_s: float, u: str, v: str) -> "FailureSchedule":
        """Schedule a failure of link ``(u, v)`` at *time_s* (chainable)."""
        self._events.append(LinkEvent(time_s, (u, v), "fail"))
        return self

    def repair_at(self, time_s: float, u: str, v: str) -> "FailureSchedule":
        """Schedule a repair of link ``(u, v)`` at *time_s* (chainable)."""
        self._events.append(LinkEvent(time_s, (u, v), "repair"))
        return self

    def fail_node_at(self, time_s: float, node: str) -> "FailureSchedule":
        """Schedule a failure of *node* (and its links) at *time_s*."""
        self._events.append(NodeEvent(time_s, node, "fail"))
        return self

    def repair_node_at(self, time_s: float, node: str) -> "FailureSchedule":
        """Schedule a repair of *node* at *time_s* (chainable)."""
        self._events.append(NodeEvent(time_s, node, "repair"))
        return self

    def add(self, event: ScheduledEvent) -> "FailureSchedule":
        """Append an already-built event (chainable)."""
        if not isinstance(event, (LinkEvent, NodeEvent)):
            raise SimulationError(
                f"expected a LinkEvent or NodeEvent, got {type(event).__qualname__}"
            )
        self._events.append(event)
        return self

    def events(self) -> List[ScheduledEvent]:
        """All events sorted by time (stable for simultaneous events)."""
        return sorted(self._events, key=lambda event: event.time_s)

    def due(self, previous_s: float, now_s: float) -> List[ScheduledEvent]:
        """Events whose time falls in the half-open interval ``(previous, now]``.

        Both edges carry the same float-drift tolerance, so driving the
        schedule with contiguous windows ``(t0, t1], (t1, t2], ...`` delivers
        an event that lands exactly on a shared edge (or within the tolerance
        of it) exactly once — in the earlier window, never in both.
        """
        return [
            event
            for event in self.events()
            if previous_s + _EDGE_TOLERANCE_S
            < event.time_s
            <= now_s + _EDGE_TOLERANCE_S
        ]

    def __len__(self) -> int:
        return len(self._events)


class TopologyView:
    """A base topology seen through a set of failed links and nodes.

    The view is what scheme runtimes step against on the scenario timeline:
    it exposes the failure state declaratively (``failed_links``,
    ``failed_nodes``, :meth:`unusable_links`) and materialises the surviving
    :attr:`topology` lazily.  When nothing is failed, :attr:`topology` IS the
    base topology object — object identity is what keeps per-topology caches
    (candidate paths, compiled routing state) warm across event-free steps.
    """

    __slots__ = ("base", "failed_links", "failed_nodes", "_active", "_unusable")

    def __init__(
        self,
        base: "Topology",
        failed_links: Iterable[Tuple[str, str]] = (),
        failed_nodes: Iterable[str] = (),
    ) -> None:
        self.base = base
        self.failed_links: FrozenSet[Tuple[str, str]] = frozenset(
            link_key(u, v) for (u, v) in failed_links
        )
        self.failed_nodes: FrozenSet[str] = frozenset(failed_nodes)
        self._active: "Topology | None" = None
        self._unusable: FrozenSet[Tuple[str, str]] | None = None

    @property
    def has_failures(self) -> bool:
        """Whether any element is currently failed."""
        return bool(self.failed_links) or bool(self.failed_nodes)

    def unusable_links(self) -> FrozenSet[Tuple[str, str]]:
        """Canonical keys of every link out of service: failed links plus
        links incident to failed nodes."""
        if self._unusable is None:
            unusable = set(self.failed_links)
            for node in self.failed_nodes:
                if self.base.has_node(node):
                    for link in self.base.incident_links(node):
                        unusable.add(link.key)
            self._unusable = frozenset(unusable)
        return self._unusable

    @property
    def topology(self) -> "Topology":
        """The surviving topology (the base object itself when nothing failed)."""
        if not self.has_failures:
            return self.base
        if self._active is None:
            active_nodes = [
                name for name in self.base.nodes() if name not in self.failed_nodes
            ]
            unusable = self.unusable_links()
            active_links = [
                key for key in self.base.link_keys() if key not in unusable
            ]
            self._active = self.base.subgraph(
                active_nodes, active_links, name=f"{self.base.name}-degraded"
            )
        return self._active

    def path_usable(self, path: "Path") -> bool:
        """Whether every element of *path* survives the current failures."""
        if not self.has_failures:
            return True
        if any(node in self.failed_nodes for node in path.nodes):
            return False
        unusable = self.unusable_links()
        return not any(key in unusable for key in path.link_keys())

    def connected_pairs(
        self, pairs: Iterable[Tuple[str, str]]
    ) -> List[Tuple[str, str]]:
        """The subset of *pairs* still connected in the surviving topology."""
        selected = list(pairs)
        if not self.has_failures:
            return selected
        import networkx as nx

        graph = self.topology.to_undirected_networkx()
        component: Dict[str, int] = {}
        for index, nodes in enumerate(nx.connected_components(graph)):
            for node in nodes:
                component[node] = index
        return [
            (origin, destination)
            for origin, destination in selected
            if origin in component
            and destination in component
            and component[origin] == component[destination]
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TopologyView(base={self.base.name!r}, "
            f"failed_links={sorted(self.failed_links)}, "
            f"failed_nodes={sorted(self.failed_nodes)})"
        )
