"""Failure injection for the flow-level simulator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..exceptions import SimulationError


@dataclass(frozen=True)
class LinkEvent:
    """A scheduled link failure or repair.

    Attributes:
        time_s: Simulation time at which the event takes effect.
        link: Undirected link endpoints.
        kind: ``"fail"`` or ``"repair"``.
    """

    time_s: float
    link: Tuple[str, str]
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in ("fail", "repair"):
            raise SimulationError(f"unknown link event kind: {self.kind!r}")


class FailureSchedule:
    """An ordered collection of link failure/repair events."""

    def __init__(self) -> None:
        self._events: List[LinkEvent] = []

    def fail_at(self, time_s: float, u: str, v: str) -> "FailureSchedule":
        """Schedule a failure of link ``(u, v)`` at *time_s* (chainable)."""
        self._events.append(LinkEvent(time_s, (u, v), "fail"))
        return self

    def repair_at(self, time_s: float, u: str, v: str) -> "FailureSchedule":
        """Schedule a repair of link ``(u, v)`` at *time_s* (chainable)."""
        self._events.append(LinkEvent(time_s, (u, v), "repair"))
        return self

    def events(self) -> List[LinkEvent]:
        """All events sorted by time."""
        return sorted(self._events, key=lambda event: event.time_s)

    def due(self, previous_s: float, now_s: float) -> List[LinkEvent]:
        """Events whose time falls in the half-open interval ``(previous, now]``."""
        return [
            event
            for event in self.events()
            if previous_s < event.time_s <= now_s + 1e-12
        ]

    def __len__(self) -> int:
        return len(self._events)
