"""Splittable multi-commodity-flow (MCF) feasibility and routing.

The paper's model is "based on the standard multi-commodity flow
formulation"; without the energy on/off variables the problem is a
polynomial-time LP.  This module solves that LP — it answers "can this set of
active elements carry this traffic matrix?", which the framework needs in
several places:

* calibrating the 100 % utilisation level of a topology (Section 5.1),
* checking that the always-on paths alone can carry a given load,
* the recomputation-rate analysis of Figure 1b.

Commodities are aggregated per origin (the standard reduction), so the LP has
``|arcs| * |origins|`` variables rather than ``|arcs| * |pairs|``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from ..exceptions import SolverError
from ..topology.base import Topology, link_key
from ..traffic.matrix import TrafficMatrix


@dataclass(frozen=True)
class MCFResult:
    """Outcome of a multi-commodity-flow computation.

    Attributes:
        feasible: Whether the demand fits within the capacities.
        max_utilisation: Largest arc utilisation of the computed flow
            (``inf`` when infeasible).
        arc_loads: Load per directed arc in bits per second (empty when
            infeasible).
        total_flow_bps: Sum of arc loads (a hop-weighted volume; empty when
            infeasible).
    """

    feasible: bool
    max_utilisation: float
    arc_loads: Dict[Tuple[str, str], float]
    total_flow_bps: float


def solve_mcf(
    topology: Topology,
    demands: TrafficMatrix,
    utilisation_limit: float = 1.0,
    active_nodes: Optional[Iterable[str]] = None,
    active_links: Optional[Iterable[Tuple[str, str]]] = None,
) -> MCFResult:
    """Solve the splittable MCF feasibility LP.

    Args:
        topology: The physical topology.
        demands: Traffic matrix to route.
        utilisation_limit: Fraction of each arc's capacity that may be used
            (the paper's safety margin ``sm``).
        active_nodes: Restrict routing to these nodes (default: all).
        active_links: Restrict routing to these undirected links
            (default: all links between active nodes).

    Returns:
        An :class:`MCFResult`; ``feasible`` is ``False`` both when the LP is
        infeasible and when some demand endpoint is outside the active set.
    """
    nodes: List[str]
    if active_nodes is None:
        nodes = topology.nodes()
    else:
        nodes = [n for n in topology.nodes() if n in set(active_nodes)]
    node_set = set(nodes)

    if active_links is None:
        link_keys = {key for key in topology.link_keys()}
    else:
        link_keys = {link_key(u, v) for (u, v) in active_links}
    arcs = [
        arc
        for arc in topology.arcs()
        if arc.src in node_set
        and arc.dst in node_set
        and arc.link_key in link_keys
    ]

    positive = [(pair, demand) for pair, demand in demands.items() if demand > 0.0]
    if not positive:
        return MCFResult(True, 0.0, {arc.key: 0.0 for arc in arcs}, 0.0)

    endpoints = {node for (origin, destination), _ in positive for node in (origin, destination)}
    if not endpoints <= node_set:
        return MCFResult(False, float("inf"), {}, 0.0)
    if not arcs:
        # Positive demand but no usable arcs at all: trivially infeasible.
        return MCFResult(False, float("inf"), {}, 0.0)

    # Connectivity pre-check.  Tiny demands (the paper's 1 bit/s ε flows) can
    # fall below the LP solver's feasibility tolerances once the problem is
    # rescaled, so disconnection must be detected combinatorially rather than
    # numerically.
    adjacency: Dict[str, List[str]] = {}
    for arc in arcs:
        adjacency.setdefault(arc.src, []).append(arc.dst)
    reachable_cache: Dict[str, Set[str]] = {}

    def reachable_from(origin: str) -> Set[str]:
        if origin not in reachable_cache:
            seen = {origin}
            frontier = [origin]
            while frontier:
                current = frontier.pop()
                for neighbour in adjacency.get(current, ()):
                    if neighbour not in seen:
                        seen.add(neighbour)
                        frontier.append(neighbour)
            reachable_cache[origin] = seen
        return reachable_cache[origin]

    for (origin, destination), _demand in positive:
        if destination not in reachable_from(origin):
            return MCFResult(False, float("inf"), {}, 0.0)

    # Rescale the LP to dimensionless units (fractions of the largest
    # capacity).  Demands expressed in bits per second reach 1e8-1e10, which
    # interacts badly with the solver's absolute feasibility tolerances.
    scale = max(arc.capacity_bps for arc in arcs) if arcs else 1.0

    origins = sorted({origin for (origin, _), _ in positive})
    demand_from: Dict[str, Dict[str, float]] = {origin: {} for origin in origins}
    for (origin, destination), demand in positive:
        demand_from[origin][destination] = (
            demand_from[origin].get(destination, 0.0) + demand / scale
        )

    node_index = {name: index for index, name in enumerate(nodes)}
    num_arcs = len(arcs)
    num_origins = len(origins)
    num_vars = num_arcs * num_origins

    def var(arc_position: int, origin_position: int) -> int:
        return origin_position * num_arcs + arc_position

    # Equality constraints: flow conservation per (node, origin).
    eq_rows: List[int] = []
    eq_cols: List[int] = []
    eq_vals: List[float] = []
    eq_rhs = np.zeros(len(nodes) * num_origins)
    for origin_position, origin in enumerate(origins):
        sinks = demand_from[origin]
        supply = sum(sinks.values())
        for arc_position, arc in enumerate(arcs):
            row_src = origin_position * len(nodes) + node_index[arc.src]
            row_dst = origin_position * len(nodes) + node_index[arc.dst]
            column = var(arc_position, origin_position)
            eq_rows.append(row_src)
            eq_cols.append(column)
            eq_vals.append(1.0)
            eq_rows.append(row_dst)
            eq_cols.append(column)
            eq_vals.append(-1.0)
        for node, position in node_index.items():
            row = origin_position * len(nodes) + position
            if node == origin:
                eq_rhs[row] = supply - sinks.get(node, 0.0)
            else:
                eq_rhs[row] = -sinks.get(node, 0.0)

    a_eq = sparse.csr_matrix(
        (eq_vals, (eq_rows, eq_cols)), shape=(len(nodes) * num_origins, num_vars)
    )

    # Inequality constraints: per-arc capacity.
    ub_rows: List[int] = []
    ub_cols: List[int] = []
    ub_vals: List[float] = []
    ub_rhs = np.zeros(num_arcs)
    for arc_position, arc in enumerate(arcs):
        ub_rhs[arc_position] = arc.capacity_bps * utilisation_limit / scale
        for origin_position in range(num_origins):
            ub_rows.append(arc_position)
            ub_cols.append(var(arc_position, origin_position))
            ub_vals.append(1.0)
    a_ub = sparse.csr_matrix((ub_vals, (ub_rows, ub_cols)), shape=(num_arcs, num_vars))

    # Objective: minimise total flow (discourages cycles and long detours).
    cost = np.ones(num_vars)

    result = linprog(
        cost,
        A_ub=a_ub,
        b_ub=ub_rhs,
        A_eq=a_eq,
        b_eq=eq_rhs,
        bounds=(0, None),
        method="highs",
    )
    if result.status == 2:  # infeasible
        return MCFResult(False, float("inf"), {}, 0.0)
    if not result.success:
        raise SolverError(f"MCF solver failed: {result.message}")

    solution = result.x
    arc_loads: Dict[Tuple[str, str], float] = {}
    for arc_position, arc in enumerate(arcs):
        load = float(
            sum(
                solution[var(arc_position, origin_position)]
                for origin_position in range(num_origins)
            )
        )
        arc_loads[arc.key] = load * scale
    max_utilisation = max(
        (arc_loads[arc.key] / arc.capacity_bps for arc in arcs), default=0.0
    )
    # Fixed-order summation: np.sum's accumulation tree can depend on the
    # buffer's alignment, wobbling the last ULP between interpreter runs.
    from ..simulator.fairness import pairwise_sum

    return MCFResult(True, max_utilisation, arc_loads, float(pairwise_sum(solution)) * scale)


def is_demand_feasible(
    topology: Topology,
    demands: TrafficMatrix,
    utilisation_limit: float = 1.0,
    active_nodes: Optional[Iterable[str]] = None,
    active_links: Optional[Iterable[Tuple[str, str]]] = None,
) -> bool:
    """Whether *demands* can be carried by the (sub)network at all."""
    return solve_mcf(
        topology,
        demands,
        utilisation_limit=utilisation_limit,
        active_nodes=active_nodes,
        active_links=active_links,
    ).feasible
