"""Routing substrate: paths, routing tables, OSPF, ECMP, k-shortest paths, MCF."""

from .ecmp import (
    ecmp_active_elements,
    ecmp_link_loads,
    ecmp_max_utilisation,
    equal_cost_paths,
)
from .ksp import k_shortest_paths, k_shortest_paths_all_pairs, path_diversity
from .mcf import MCFResult, is_demand_feasible, solve_mcf
from .ospf import (
    ospf_delays,
    ospf_invcap_routing,
    ospf_latency_routing,
    shortest_path,
)
from .paths import (
    Path,
    RoutingConfiguration,
    RoutingTable,
    is_feasible,
    link_loads,
    link_utilisations,
    max_link_utilisation,
    uncovered_pairs,
)

__all__ = [
    "ecmp_active_elements",
    "ecmp_link_loads",
    "ecmp_max_utilisation",
    "equal_cost_paths",
    "k_shortest_paths",
    "k_shortest_paths_all_pairs",
    "path_diversity",
    "MCFResult",
    "is_demand_feasible",
    "solve_mcf",
    "ospf_delays",
    "ospf_invcap_routing",
    "ospf_latency_routing",
    "shortest_path",
    "Path",
    "RoutingConfiguration",
    "RoutingTable",
    "is_feasible",
    "link_loads",
    "link_utilisations",
    "max_link_utilisation",
    "uncovered_pairs",
]
