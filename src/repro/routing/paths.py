"""Paths, routing tables and routing configurations.

These are the objects REsPoNse installs into network elements:

* a :class:`Path` is an ordered node sequence from an origin to a
  destination,
* a :class:`RoutingTable` maps origin-destination pairs to single paths
  (the paper routes each flow on a single path: the ``f`` variables are
  binary),
* a :class:`RoutingConfiguration` is the set of network elements (nodes and
  undirected links) a routing table plus a demand set keeps active — the
  object whose churn Figure 2a measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from ..exceptions import RoutingError
from ..topology.base import Topology, link_key
from ..traffic.matrix import Pair, TrafficMatrix


@dataclass(frozen=True)
class Path:
    """An ordered sequence of nodes from ``origin`` to ``destination``."""

    nodes: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.nodes) < 1:
            raise RoutingError("a path needs at least one node")
        if len(set(self.nodes)) != len(self.nodes):
            raise RoutingError(f"path visits a node twice: {self.nodes}")

    @classmethod
    def of(cls, nodes: Iterable[str]) -> "Path":
        """Build a path from any iterable of node names."""
        return cls(tuple(nodes))

    @property
    def origin(self) -> str:
        """First node of the path."""
        return self.nodes[0]

    @property
    def destination(self) -> str:
        """Last node of the path."""
        return self.nodes[-1]

    @property
    def num_hops(self) -> int:
        """Number of arcs traversed."""
        return len(self.nodes) - 1

    def arc_keys(self) -> List[Tuple[str, str]]:
        """Directed ``(src, dst)`` arc keys traversed, in order."""
        return list(zip(self.nodes, self.nodes[1:], strict=False))

    def link_keys(self) -> List[Tuple[str, str]]:
        """Canonical undirected link keys traversed, in order."""
        return [link_key(src, dst) for src, dst in self.arc_keys()]

    def latency(self, topology: Topology) -> float:
        """Propagation latency of the path in *topology* (seconds)."""
        return topology.path_latency(self.nodes)

    def bottleneck_capacity(self, topology: Topology) -> float:
        """Minimum arc capacity along the path (bits per second)."""
        return topology.path_capacity(self.nodes)

    def is_valid(self, topology: Topology) -> bool:
        """Whether every hop is an existing arc of *topology*."""
        return topology.validate_path(self.nodes)

    def shares_link_with(self, other: "Path") -> bool:
        """Whether the two paths traverse at least one common undirected link."""
        return bool(set(self.link_keys()) & set(other.link_keys()))

    def __iter__(self) -> Iterator[str]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Path(" + " -> ".join(self.nodes) + ")"


class RoutingTable:
    """A single-path routing: one :class:`Path` per origin-destination pair."""

    def __init__(
        self,
        paths: Mapping[Pair, Path] | Mapping[Pair, Iterable[str]],
        name: str = "routing-table",
    ) -> None:
        normalised: Dict[Pair, Path] = {}
        for pair, value in paths.items():
            path = value if isinstance(value, Path) else Path.of(value)
            origin, destination = pair
            if path.origin != origin or path.destination != destination:
                raise RoutingError(
                    f"path {path!r} does not connect pair {pair}"
                )
            normalised[pair] = path
        self._paths = normalised
        self.name = name

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def pairs(self) -> List[Pair]:
        """All origin-destination pairs with an installed path."""
        return list(self._paths)

    def has_path(self, origin: str, destination: str) -> bool:
        """Whether a path is installed for the pair."""
        return (origin, destination) in self._paths

    def path(self, origin: str, destination: str) -> Path:
        """The installed path for a pair.

        Raises:
            RoutingError: If the pair has no installed path.
        """
        try:
            return self._paths[(origin, destination)]
        except KeyError:
            raise RoutingError(
                f"no path installed for {(origin, destination)}"
            ) from None

    def get(self, origin: str, destination: str) -> Optional[Path]:
        """The installed path for a pair, or ``None``."""
        return self._paths.get((origin, destination))

    def items(self) -> Iterator[Tuple[Pair, Path]]:
        """Iterate over ``(pair, path)`` entries."""
        return iter(self._paths.items())

    def __len__(self) -> int:
        return len(self._paths)

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._paths

    # ------------------------------------------------------------------ #
    # Derived element sets and loads
    # ------------------------------------------------------------------ #
    def used_nodes(self, pairs: Optional[Iterable[Pair]] = None) -> Set[str]:
        """Nodes traversed by the installed paths (optionally only some pairs)."""
        selected = self._select(pairs)
        return {node for path in selected for node in path.nodes}

    def used_links(self, pairs: Optional[Iterable[Pair]] = None) -> Set[Tuple[str, str]]:
        """Canonical link keys traversed by the installed paths."""
        selected = self._select(pairs)
        return {key for path in selected for key in path.link_keys()}

    def _select(self, pairs: Optional[Iterable[Pair]]) -> List[Path]:
        if pairs is None:
            return list(self._paths.values())
        return [self._paths[pair] for pair in pairs if pair in self._paths]

    def validate(self, topology: Topology) -> bool:
        """Whether every installed path is valid in *topology*."""
        return all(path.is_valid(topology) for path in self._paths.values())

    def merged_with(self, other: "RoutingTable", name: Optional[str] = None) -> "RoutingTable":
        """A table with the other table's entries added (other wins on conflict)."""
        paths: Dict[Pair, Path] = dict(self._paths)
        paths.update(dict(other._paths))
        return RoutingTable(paths, name=name or f"{self.name}+{other.name}")

    def restricted_to(self, pairs: Iterable[Pair]) -> "RoutingTable":
        """A table keeping only the listed pairs."""
        wanted = set(pairs)
        return RoutingTable(
            {pair: path for pair, path in self._paths.items() if pair in wanted},
            name=f"{self.name}-restricted",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoutingTable(name={self.name!r}, pairs={len(self._paths)})"


@dataclass(frozen=True)
class RoutingConfiguration:
    """The set of active elements implied by a routing and a demand set.

    Two intervals of a trace that keep the same nodes and links active are in
    the same routing configuration — the unit Figure 2a counts.
    """

    active_nodes: FrozenSet[str]
    active_links: FrozenSet[Tuple[str, str]]

    @classmethod
    def from_routing(
        cls,
        routing: RoutingTable,
        demands: Optional[TrafficMatrix] = None,
        always_on_nodes: Optional[Iterable[str]] = None,
    ) -> "RoutingConfiguration":
        """Configuration keeping active only elements that carry demand.

        When *demands* is ``None`` every installed path counts; otherwise only
        paths of pairs with strictly positive demand keep their elements
        active.  *always_on_nodes* (e.g. feeder or host-facing nodes) are
        added unconditionally.
        """
        if demands is None:
            pairs = routing.pairs()
        else:
            pairs = [pair for pair in routing.pairs() if demands[pair] > 0.0]
        nodes = set(routing.used_nodes(pairs))
        links = set(routing.used_links(pairs))
        if always_on_nodes is not None:
            nodes |= set(always_on_nodes)
        return cls(frozenset(nodes), frozenset(links))

    @property
    def signature(self) -> Tuple[FrozenSet[str], FrozenSet[Tuple[str, str]]]:
        """Hashable identity of the configuration."""
        return (self.active_nodes, self.active_links)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoutingConfiguration):
            return NotImplemented
        return self.signature == other.signature

    def __hash__(self) -> int:
        return hash(self.signature)


def link_loads(
    topology: Topology,
    routing: RoutingTable,
    demands: TrafficMatrix,
) -> Dict[Tuple[str, str], float]:
    """Per-arc load (bits per second) when *demands* follow *routing*.

    Pairs without an installed path are ignored; callers that need strictness
    should validate coverage first via :func:`uncovered_pairs`.
    """
    loads: Dict[Tuple[str, str], float] = {key: 0.0 for key in topology.arc_keys()}
    for pair, demand in demands.items():
        if demand <= 0.0:
            continue
        path = routing.get(*pair)
        if path is None:
            continue
        for arc_key in path.arc_keys():
            if arc_key not in loads:
                raise RoutingError(f"path uses unknown arc {arc_key}")
            loads[arc_key] += demand
    return loads


def link_utilisations(
    topology: Topology,
    routing: RoutingTable,
    demands: TrafficMatrix,
) -> Dict[Tuple[str, str], float]:
    """Per-arc utilisation (load divided by capacity) under *routing*."""
    loads = link_loads(topology, routing, demands)
    return {
        key: load / topology.arc(*key).capacity_bps for key, load in loads.items()
    }


def max_link_utilisation(
    topology: Topology,
    routing: RoutingTable,
    demands: TrafficMatrix,
) -> float:
    """The maximum arc utilisation under *routing* (zero for no demand)."""
    utilisations = link_utilisations(topology, routing, demands)
    return max(utilisations.values(), default=0.0)


def is_feasible(
    topology: Topology,
    routing: RoutingTable,
    demands: TrafficMatrix,
    utilisation_limit: float = 1.0,
) -> bool:
    """Whether routing *demands* along *routing* keeps every arc within limit."""
    return max_link_utilisation(topology, routing, demands) <= utilisation_limit + 1e-9


def uncovered_pairs(routing: RoutingTable, demands: TrafficMatrix) -> List[Pair]:
    """Demand pairs with positive demand but no installed path."""
    return [
        pair
        for pair, demand in demands.items()
        if demand > 0.0 and routing.get(*pair) is None
    ]
