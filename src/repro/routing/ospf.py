"""OSPF shortest-path routing with Cisco-recommended link weights.

The paper's baseline intradomain routing: "One of the most widely-used
techniques for intradomain routing is OSPF, in which the traffic is routed
through the shortest path according to the link weights.  We use the version
of the protocol advocated by Cisco, where the link weights are set to the
inverse of link capacity."  The paper calls this baseline OSPF-InvCap (or
simply InvCap).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import networkx as nx

from ..exceptions import PathNotFoundError
from ..topology.base import Topology
from ..traffic.matrix import Pair, all_pairs
from .paths import Path, RoutingTable


def ospf_weight(topology: Topology, src: str, dst: str) -> float:
    """The OSPF-InvCap weight of the arc ``src -> dst``."""
    return 1.0 / topology.arc(src, dst).capacity_bps


def shortest_path(
    topology: Topology, origin: str, destination: str, weight: str = "invcap"
) -> Path:
    """Single shortest path between two nodes under the given arc weight."""
    return Path.of(topology.shortest_path(origin, destination, weight=weight))


def ospf_invcap_routing(
    topology: Topology,
    pairs: Optional[Iterable[Pair]] = None,
    weight: str = "invcap",
    name: str = "ospf-invcap",
) -> RoutingTable:
    """Compute the OSPF-InvCap routing table.

    Args:
        topology: The network.
        pairs: Origin-destination pairs to install; defaults to all ordered
            pairs of non-host nodes.
        weight: Arc attribute used as the additive path weight (``"invcap"``
            for the Cisco setting, ``"latency"`` for delay-based weights,
            ``"hops"`` for plain hop count).
        name: Name for the resulting routing table.

    Returns:
        A :class:`~repro.routing.paths.RoutingTable` with one shortest path
        per pair.

    Raises:
        PathNotFoundError: If some requested pair is disconnected.
    """
    graph = topology.to_networkx()
    weight_attr = None if weight in (None, "hops") else weight
    selected = list(pairs) if pairs is not None else all_pairs(topology.routers())

    # Compute single-source shortest paths once per distinct origin: much
    # cheaper than one Dijkstra per pair on large pair sets.
    origins = {origin for origin, _ in selected}
    paths_by_origin: Dict[str, Dict[str, list]] = {}
    for origin in sorted(origins):
        paths_by_origin[origin] = nx.single_source_dijkstra_path(
            graph, origin, weight=weight_attr
        )

    table: Dict[Pair, Path] = {}
    for origin, destination in selected:
        source_paths = paths_by_origin[origin]
        if destination not in source_paths:
            raise PathNotFoundError(origin, destination)
        table[(origin, destination)] = Path.of(source_paths[destination])
    return RoutingTable(table, name=name)


def ospf_latency_routing(
    topology: Topology,
    pairs: Optional[Iterable[Pair]] = None,
    name: str = "ospf-latency",
) -> RoutingTable:
    """OSPF routing with propagation latency as the link weight.

    Used to compute the reference delays ``delay_OSPF(O, D)`` for the
    REsPoNse-lat latency-bound constraint (4).
    """
    return ospf_invcap_routing(topology, pairs=pairs, weight="latency", name=name)


def ospf_delays(
    topology: Topology,
    pairs: Optional[Iterable[Pair]] = None,
) -> Dict[Pair, float]:
    """Per-pair propagation delay of the OSPF-InvCap paths (seconds)."""
    routing = ospf_invcap_routing(topology, pairs=pairs)
    return {pair: path.latency(topology) for pair, path in routing.items()}
