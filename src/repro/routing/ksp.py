"""k-shortest simple paths.

GreenTE (Zhang et al. [41]) reduces the energy-aware routing computation time
"by allowing a solver to explore only the k shortest paths for each (O,D)
pair"; the same restriction powers this reproduction's path-based MILP
(:mod:`repro.optim.pathmilp`) and the GreenTE heuristic.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional

import networkx as nx

from ..exceptions import PathNotFoundError
from ..topology.base import Topology
from ..traffic.matrix import Pair, all_pairs
from .paths import Path


def k_shortest_paths(
    topology: Topology,
    origin: str,
    destination: str,
    k: int,
    weight: str = "invcap",
) -> List[Path]:
    """The *k* shortest simple paths between two nodes.

    Args:
        topology: The network.
        origin: Path origin.
        destination: Path destination.
        k: Maximum number of paths to return (fewer if the graph has fewer
            simple paths).
        weight: Arc attribute used as the additive weight (``"invcap"``,
            ``"latency"`` or ``"hops"``).

    Raises:
        PathNotFoundError: If the destination is unreachable.
        ValueError: If ``k`` is not positive.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    graph = topology.to_networkx()
    weight_attr = None if weight in (None, "hops") else weight
    try:
        generator = nx.shortest_simple_paths(graph, origin, destination, weight=weight_attr)
        return [Path.of(nodes) for nodes in itertools.islice(generator, k)]
    except nx.NetworkXNoPath:
        raise PathNotFoundError(origin, destination) from None


def k_shortest_paths_all_pairs(
    topology: Topology,
    k: int,
    pairs: Optional[Iterable[Pair]] = None,
    weight: str = "invcap",
) -> Dict[Pair, List[Path]]:
    """The *k* shortest paths for every requested origin-destination pair."""
    selected = list(pairs) if pairs is not None else all_pairs(topology.routers())
    return {
        (origin, destination): k_shortest_paths(topology, origin, destination, k, weight)
        for origin, destination in selected
    }


def path_diversity(topology: Topology, origin: str, destination: str, k: int = 10) -> int:
    """Number of distinct simple paths (up to *k*) between two nodes.

    A cheap proxy for the redundancy argument of Section 3.3: networks with
    little built-in redundancy need very few energy-critical paths.
    """
    try:
        return len(k_shortest_paths(topology, origin, destination, k, weight="hops"))
    except PathNotFoundError:
        return 0
