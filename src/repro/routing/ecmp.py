"""Equal-Cost Multi-Path (ECMP) routing.

ECMP is the datacenter baseline of Figure 4: traffic is spread over all
equal-cost shortest paths, which keeps every network element busy and hence
powered on — its power curve is flat at (about) 100 % of the original power
regardless of demand.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from ..exceptions import PathNotFoundError
from ..topology.base import Topology
from ..traffic.matrix import Pair, TrafficMatrix, all_pairs
from .paths import Path


def equal_cost_paths(
    topology: Topology,
    origin: str,
    destination: str,
    weight: str = "hops",
) -> List[Path]:
    """All equal-cost shortest paths between two nodes.

    Args:
        topology: The network.
        origin: Path origin.
        destination: Path destination.
        weight: ``"hops"`` (default, the usual ECMP metric inside a
            datacenter), ``"invcap"`` or ``"latency"``.

    Raises:
        PathNotFoundError: If the destination is unreachable.
    """
    graph = topology.to_networkx()
    weight_attr = None if weight in (None, "hops") else weight
    try:
        paths = nx.all_shortest_paths(graph, origin, destination, weight=weight_attr)
        return [Path.of(nodes) for nodes in paths]
    except nx.NetworkXNoPath:
        raise PathNotFoundError(origin, destination) from None


def ecmp_link_loads(
    topology: Topology,
    demands: TrafficMatrix,
    weight: str = "hops",
) -> Dict[Tuple[str, str], float]:
    """Per-arc load when every demand is split equally over its ECMP paths."""
    loads: Dict[Tuple[str, str], float] = {key: 0.0 for key in topology.arc_keys()}
    for (origin, destination), demand in demands.items():
        if demand <= 0.0:
            continue
        paths = equal_cost_paths(topology, origin, destination, weight=weight)
        share = demand / len(paths)
        for path in paths:
            for arc_key in path.arc_keys():
                loads[arc_key] += share
    return loads


def ecmp_max_utilisation(
    topology: Topology,
    demands: TrafficMatrix,
    weight: str = "hops",
) -> float:
    """Maximum arc utilisation under ECMP splitting."""
    loads = ecmp_link_loads(topology, demands, weight=weight)
    utilisations = [
        load / topology.arc(*key).capacity_bps for key, load in loads.items()
    ]
    return max(utilisations, default=0.0)


def ecmp_active_elements(
    topology: Topology,
    demands: Optional[TrafficMatrix] = None,
    weight: str = "hops",
) -> Tuple[set, set]:
    """Nodes and links kept active by ECMP.

    Every element on any equal-cost shortest path of any pair with positive
    demand stays active.  With all-pairs demand this is essentially the whole
    network, which is why ECMP shows no energy proportionality.
    """
    active_nodes: set = set()
    active_links: set = set()
    if demands is None:
        pairs: Iterable[Pair] = all_pairs(topology.routers())
        demand_of = {pair: 1.0 for pair in pairs}
    else:
        demand_of = {pair: value for pair, value in demands.items()}
    for (origin, destination), demand in demand_of.items():
        if demand <= 0.0:
            continue
        for path in equal_cost_paths(topology, origin, destination, weight=weight):
            active_nodes.update(path.nodes)
            active_links.update(path.link_keys())
    return active_nodes, active_links
