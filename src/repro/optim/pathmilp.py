"""Path-restricted mixed-integer program for energy-aware routing.

This is the library's workhorse solver.  It keeps the paper's objective and
on/off semantics (Section 2.2.1) but, like GreenTE [41], restricts each
origin-destination pair to a small set of candidate paths (its k shortest
paths by default).  The restriction turns the intractable arc-based MILP into
a problem with a few thousand binaries that the HiGHS solver handles in
seconds on the paper's topologies, while still producing installable
single-path routing tables.

Decision variables:

* ``z[p, j]`` — pair ``p`` uses its ``j``-th candidate path (binary),
* ``y[l]`` — undirected link ``l`` is active (binary),
* ``x[i]`` — node ``i`` is powered on (binary).

Constraints: each pair picks exactly one path; arc loads respect capacities
scaled by the safety margin and require the link to be active; a link
requires both endpoints on; a router with no active link is off; fixed
elements stay on.  The objective is the network power of the active subset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from ..exceptions import InfeasibleError, SolverError
from ..power.model import PowerModel
from ..routing.ksp import k_shortest_paths_all_pairs
from ..routing.paths import Path, RoutingTable
from ..topology.base import Topology, link_key
from ..traffic.matrix import Pair, TrafficMatrix
from .solution import EnergyAwareSolution, element_power_coefficients, solution_power

#: Default number of candidate paths per origin-destination pair.
DEFAULT_NUM_CANDIDATE_PATHS = 3


@dataclass
class PathMilpConfig:
    """Tuning knobs of the path-restricted MILP.

    Attributes:
        k: Candidate paths per pair when none are supplied explicitly.
        utilisation_limit: Safety margin ``sm``: fraction of each arc's
            capacity available to the solver.
        integral_paths: Use binary path-selection variables (single-path
            routing, as in the paper).  Setting this to ``False`` yields a
            faster LP-like relaxation whose routing table uses each pair's
            most-selected path.
        time_limit_s: Wall-clock limit handed to the solver.
        mip_rel_gap: Relative optimality gap at which the solver may stop.
    """

    k: int = DEFAULT_NUM_CANDIDATE_PATHS
    utilisation_limit: float = 1.0
    integral_paths: bool = True
    time_limit_s: Optional[float] = 60.0
    mip_rel_gap: float = 1e-4


def _filter_candidates(
    candidates: Mapping[Pair, Sequence[Path]],
    forbidden_links: Optional[Set[Tuple[str, str]]],
    latency_bound: Optional[Mapping[Pair, float]],
    topology: Topology,
) -> Dict[Pair, List[Path]]:
    """Apply the stress-exclusion and latency-bound filters to candidates.

    A pair always keeps at least one candidate: when every candidate violates
    a filter, the least-violating one survives (fewest forbidden links, then
    lowest latency).  This mirrors the paper's pragmatic treatment — the
    constraints steer the computation but must not disconnect the network.
    """
    forbidden = forbidden_links or set()
    filtered: Dict[Pair, List[Path]] = {}
    for pair, paths in candidates.items():
        if not paths:
            raise InfeasibleError(f"pair {pair} has no candidate paths")
        kept = list(paths)
        if forbidden:
            non_forbidden = [
                path
                for path in kept
                if not any(link_key(*arc) in forbidden for arc in path.arc_keys())
            ]
            if non_forbidden:
                kept = non_forbidden
            else:
                kept = [
                    min(
                        kept,
                        key=lambda path: sum(
                            1 for arc in path.arc_keys() if link_key(*arc) in forbidden
                        ),
                    )
                ]
        if latency_bound is not None and pair in latency_bound:
            bound = latency_bound[pair]
            within = [path for path in kept if path.latency(topology) <= bound + 1e-12]
            kept = within if within else [min(kept, key=lambda path: path.latency(topology))]
        filtered[pair] = kept
    return filtered


def solve_path_milp(
    topology: Topology,
    power_model: PowerModel,
    demands: TrafficMatrix,
    config: Optional[PathMilpConfig] = None,
    candidate_paths: Optional[Mapping[Pair, Sequence[Path]]] = None,
    fixed_on_nodes: Optional[Iterable[str]] = None,
    fixed_on_links: Optional[Iterable[Tuple[str, str]]] = None,
    forbidden_links: Optional[Iterable[Tuple[str, str]]] = None,
    latency_bound: Optional[Mapping[Pair, float]] = None,
    solver_name: str = "path-milp",
) -> EnergyAwareSolution:
    """Minimise network power subject to routing the given demands.

    Args:
        topology: The physical topology.
        power_model: Supplies the ``Pc``/``Pl``/``Pa`` coefficients.
        demands: Traffic matrix; pairs with zero demand still require
            connectivity (use :meth:`TrafficMatrix.epsilon` for the paper's
            demand-oblivious always-on computation).
        config: Solver configuration; defaults to :class:`PathMilpConfig`.
        candidate_paths: Explicit candidate paths per pair; defaults to each
            pair's ``config.k`` shortest paths by inverse capacity.
        fixed_on_nodes: Nodes forced to stay powered on (the paper keeps the
            always-on elements fixed when computing on-demand paths).
        fixed_on_links: Undirected links forced to stay active.
        forbidden_links: Undirected links candidate paths should avoid (the
            stress-factor exclusion of Section 4.2).
        latency_bound: Per-pair maximum path latency in seconds (constraint
            (4), used by REsPoNse-lat).
        solver_name: Label recorded in the returned solution.

    Returns:
        An :class:`EnergyAwareSolution` with explicit single paths per pair.

    Raises:
        InfeasibleError: If the demands cannot be carried even with every
            element active (given the candidate path restriction).
        SolverError: On unexpected solver failures.
    """
    cfg = config or PathMilpConfig()
    pairs = [pair for pair in demands.pairs()]
    if not pairs:
        always_on = {
            name for name in topology.nodes() if topology.node(name).always_powered
        }
        return EnergyAwareSolution(
            active_nodes=always_on,
            active_links=set(),
            routing=RoutingTable({}, name=solver_name),
            power_w=solution_power(topology, power_model, always_on, set()),
            objective_w=0.0,
            optimal=True,
            solver=solver_name,
        )

    if candidate_paths is None:
        candidate_paths = k_shortest_paths_all_pairs(topology, cfg.k, pairs=pairs)
    forbidden_set = (
        {link_key(u, v) for (u, v) in forbidden_links} if forbidden_links else None
    )
    candidates = _filter_candidates(candidate_paths, forbidden_set, latency_bound, topology)

    node_power, link_power = element_power_coefficients(topology, power_model)
    nodes = topology.nodes()
    links = topology.link_keys()
    node_index = {name: position for position, name in enumerate(nodes)}
    link_index = {key: position for position, key in enumerate(links)}

    # Variable layout: [z (path selections)..., y (links)..., x (nodes)...].
    path_vars: List[Tuple[Pair, int]] = []  # (pair, candidate index)
    path_var_offset: Dict[Tuple[Pair, int], int] = {}
    for pair in pairs:
        for candidate_position in range(len(candidates[pair])):
            path_var_offset[(pair, candidate_position)] = len(path_vars)
            path_vars.append((pair, candidate_position))
    num_path_vars = len(path_vars)
    num_links = len(links)
    num_nodes = len(nodes)
    num_vars = num_path_vars + num_links + num_nodes

    def y_var(link: Tuple[str, str]) -> int:
        return num_path_vars + link_index[link]

    def x_var(node: str) -> int:
        return num_path_vars + num_links + node_index[node]

    cost = np.zeros(num_vars)
    for key, power in link_power.items():
        cost[y_var(key)] = power
    for name, power in node_power.items():
        cost[x_var(name)] = power

    lower = np.zeros(num_vars)
    upper = np.ones(num_vars)

    fixed_nodes = set(fixed_on_nodes or ())
    fixed_links = {link_key(u, v) for (u, v) in (fixed_on_links or ())}
    for name in nodes:
        if topology.node(name).always_powered or name in fixed_nodes:
            lower[x_var(name)] = 1.0
    for key in fixed_links:
        if key in link_index:
            lower[y_var(key)] = 1.0

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    constraint_lower: List[float] = []
    constraint_upper: List[float] = []
    row_count = 0

    def add_entry(row: int, column: int, value: float) -> None:
        rows.append(row)
        cols.append(column)
        vals.append(value)

    # (a) Each pair selects exactly one candidate path.
    for pair in pairs:
        for candidate_position in range(len(candidates[pair])):
            add_entry(row_count, path_var_offset[(pair, candidate_position)], 1.0)
        constraint_lower.append(1.0)
        constraint_upper.append(1.0)
        row_count += 1

    # (b) Arc capacity coupled to link activation:
    #     sum_p d_p z_{p,j∋arc} - C_arc * sm * y_link <= 0.
    # Scale by the largest capacity to keep coefficients well conditioned.
    capacity_scale = max(arc.capacity_bps for arc in topology.arcs())
    arc_rows: Dict[Tuple[str, str], int] = {}
    for arc in topology.arcs():
        arc_rows[arc.key] = row_count
        add_entry(
            row_count,
            y_var(link_key(arc.src, arc.dst)),
            -arc.capacity_bps * cfg.utilisation_limit / capacity_scale,
        )
        constraint_lower.append(-np.inf)
        constraint_upper.append(0.0)
        row_count += 1
    for pair in pairs:
        demand = demands[pair]
        if demand <= 0.0:
            continue
        for candidate_position, path in enumerate(candidates[pair]):
            column = path_var_offset[(pair, candidate_position)]
            for arc_key in path.arc_keys():
                add_entry(arc_rows[arc_key], column, demand / capacity_scale)

    # (c) Connectivity coupling: a selected path activates its links,
    #     z_{p,j} <= y_l for every link l on the path.
    for pair in pairs:
        for candidate_position, path in enumerate(candidates[pair]):
            column = path_var_offset[(pair, candidate_position)]
            for key in set(path.link_keys()):
                add_entry(row_count, column, 1.0)
                add_entry(row_count, y_var(key), -1.0)
                constraint_lower.append(-np.inf)
                constraint_upper.append(0.0)
                row_count += 1

    # (d) Constraint (1): an active link requires both endpoints powered on.
    for key in links:
        for endpoint in key:
            add_entry(row_count, y_var(key), 1.0)
            add_entry(row_count, x_var(endpoint), -1.0)
            constraint_lower.append(-np.inf)
            constraint_upper.append(0.0)
            row_count += 1

    # (e) Constraint (3): a router with no active incident link is off.
    for name in nodes:
        incident = [link.key for link in topology.incident_links(name)]
        if not incident or lower[x_var(name)] >= 1.0:
            continue
        add_entry(row_count, x_var(name), 1.0)
        for key in incident:
            add_entry(row_count, y_var(key), -1.0)
        constraint_lower.append(-np.inf)
        constraint_upper.append(0.0)
        row_count += 1

    matrix = sparse.csc_matrix((vals, (rows, cols)), shape=(row_count, num_vars))
    constraints = LinearConstraint(
        matrix, np.array(constraint_lower), np.array(constraint_upper)
    )

    integrality = np.ones(num_vars)
    if not cfg.integral_paths:
        integrality[:num_path_vars] = 0.0

    options: Dict[str, object] = {"mip_rel_gap": cfg.mip_rel_gap}
    if cfg.time_limit_s is not None:
        options["time_limit"] = cfg.time_limit_s

    result = milp(
        c=cost / max(cost.max(), 1.0),
        constraints=constraints,
        integrality=integrality,
        bounds=Bounds(lower, upper),
        options=options,
    )
    if result.status == 2:
        raise InfeasibleError(
            "the demand cannot be carried even with all elements active "
            "(within the candidate-path restriction)"
        )
    if result.x is None:
        raise SolverError(f"MILP solver failed: {result.message}")

    solution = result.x
    active_links = {key for key in links if solution[y_var(key)] > 0.5}
    active_nodes = {name for name in nodes if solution[x_var(name)] > 0.5}

    chosen: Dict[Pair, Path] = {}
    for pair in pairs:
        best_position = max(
            range(len(candidates[pair])),
            key=lambda position, pair=pair: solution[path_var_offset[(pair, position)]],
        )
        chosen[pair] = candidates[pair][best_position]
    routing = RoutingTable(chosen, name=solver_name)

    # Elements used by chosen paths are always part of the active set even if
    # a fractional relaxation said otherwise.
    active_nodes |= routing.used_nodes()
    active_links |= routing.used_links()

    power = solution_power(topology, power_model, active_nodes, active_links)
    return EnergyAwareSolution(
        active_nodes=active_nodes,
        active_links=active_links,
        routing=routing,
        power_w=power,
        objective_w=float(result.fun * max(cost.max(), 1.0)) if result.fun is not None else power,
        optimal=bool(result.status == 0 and cfg.integral_paths),
        solver=solver_name,
        gap=float(result.mip_gap) if getattr(result, "mip_gap", None) is not None else 0.0,
    )
