"""LP relaxation with rounding (Fisher, Suchara, Rexford [19] style).

Fisher et al. linearise the energy-minimisation problem, solve the LP
relaxation and then apply rounding heuristics to recover an integral on/off
assignment.  The reproduction follows the same outline:

1. solve the path-restricted problem with *continuous* on/off variables,
2. sort links by their fractional activation value,
3. greedily switch off the links with the smallest fractional values, keeping
   a link off only if the splittable MCF still routes the demand.

This baseline is used in ablation benchmarks to contrast the quality/runtime
trade-off of the exact MILP, the greedy heuristic and rounding.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple


from ..power.model import PowerModel
from ..routing.mcf import is_demand_feasible
from ..routing.ospf import ospf_invcap_routing
from ..topology.base import Topology
from ..traffic.matrix import TrafficMatrix
from .pathmilp import PathMilpConfig, solve_path_milp
from .solution import EnergyAwareSolution, solution_power


def lp_relaxation_with_rounding(
    topology: Topology,
    power_model: PowerModel,
    demands: TrafficMatrix,
    k: int = 3,
    utilisation_limit: float = 1.0,
    fixed_on_nodes: Optional[Iterable[str]] = None,
    fixed_on_links: Optional[Iterable[Tuple[str, str]]] = None,
    build_routing: bool = True,
) -> EnergyAwareSolution:
    """Relax, round and repair.

    Args:
        topology: The physical topology.
        power_model: Power coefficients of the objective.
        demands: Traffic matrix to carry.
        k: Candidate paths per pair used by the relaxation.
        utilisation_limit: Safety margin on arc capacities.
        fixed_on_nodes: Nodes that must stay on.
        fixed_on_links: Links that must stay active.
        build_routing: Derive shortest-path routing on the rounded subset.

    Returns:
        An :class:`EnergyAwareSolution`; never proven optimal.
    """
    relaxed = solve_path_milp(
        topology,
        power_model,
        demands,
        config=PathMilpConfig(k=k, utilisation_limit=utilisation_limit, integral_paths=False),
        fixed_on_nodes=fixed_on_nodes,
        fixed_on_links=fixed_on_links,
        solver_name="lp-relaxation",
    )

    # Start from the relaxation's support and try to remove links in
    # ascending order of how much the relaxation wanted them.
    active_nodes: Set[str] = set(relaxed.active_nodes)
    active_links: Set[Tuple[str, str]] = set(relaxed.active_links)
    protected_nodes = {
        name for name in topology.nodes() if topology.node(name).always_powered
    }
    protected_nodes |= set(fixed_on_nodes or ())
    protected_nodes |= set(demands.nodes())
    protected_links = {tuple(sorted(key)) for key in (fixed_on_links or ())}

    def feasible(nodes: Set[str], links: Set[Tuple[str, str]]) -> bool:
        return is_demand_feasible(
            topology,
            demands,
            utilisation_limit=utilisation_limit,
            active_nodes=nodes,
            active_links=links,
        )

    for key in sorted(active_links):
        if key in protected_links:
            continue
        candidate = active_links - {key}
        if feasible(active_nodes, candidate):
            active_links = candidate

    # Remove nodes that lost all their links (or are simply removable).
    for name in sorted(active_nodes):
        if name in protected_nodes:
            continue
        candidate_nodes = active_nodes - {name}
        candidate_links = {k2 for k2 in active_links if name not in k2}
        if feasible(candidate_nodes, candidate_links):
            active_nodes = candidate_nodes
            active_links = candidate_links

    routing = None
    if build_routing and len(demands) > 0:
        subgraph = topology.subgraph(active_nodes, active_links)
        routing = ospf_invcap_routing(subgraph, pairs=demands.pairs(), name="lp-rounding")

    power = solution_power(topology, power_model, active_nodes, active_links)
    return EnergyAwareSolution(
        active_nodes=active_nodes,
        active_links=active_links,
        routing=routing,
        power_w=power,
        objective_w=power,
        optimal=False,
        solver="lp-relaxation-rounding",
    )
