"""ElasticTree-style greedy subset computation for fat-tree networks.

ElasticTree (Heller et al. [25]) exploits the regular structure of fat-trees:
instead of solving a general optimisation problem it decides, per pod, how
many aggregation switches are needed for the pod's traffic and, globally, how
many core switches are needed for the inter-pod traffic, always preferring
the "leftmost" switches so that the active subset forms a spanning sub-tree.
The paper uses ElasticTree as the datacenter state of the art that REsPoNse
matches (Figure 4) and as one source of on-demand paths for fat-trees.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Set, Tuple

from ..exceptions import TopologyError
from ..power.model import PowerModel
from ..routing.paths import RoutingTable, link_loads
from ..topology.base import Topology
from ..topology.fattree import pod_of
from ..traffic.matrix import TrafficMatrix
from .solution import EnergyAwareSolution, solution_power


def _fattree_arity(topology: Topology) -> int:
    """Recover the arity k of a fat-tree built by :func:`build_fattree`."""
    num_core = len(topology.nodes_at_level("core"))
    k = int(round(2 * math.sqrt(num_core)))
    if k <= 0 or (k // 2) ** 2 != num_core:
        raise TopologyError("topology does not look like a k-ary fat-tree")
    return k


def _pod_traffic(
    topology: Topology, demands: TrafficMatrix
) -> Tuple[Dict[int, float], Dict[int, float], float]:
    """Per-pod upward traffic, per-pod downward traffic, total inter-pod traffic."""
    up: Dict[int, float] = {}
    down: Dict[int, float] = {}
    inter_pod = 0.0
    for (origin, destination), demand in demands.items():
        if demand <= 0.0:
            continue
        origin_pod = pod_of(origin)
        destination_pod = pod_of(destination)
        if origin_pod == destination_pod:
            # Intra-pod traffic only crosses the pod's aggregation layer.
            up[origin_pod] = up.get(origin_pod, 0.0) + demand
            continue
        up[origin_pod] = up.get(origin_pod, 0.0) + demand
        down[destination_pod] = down.get(destination_pod, 0.0) + demand
        inter_pod += demand
    return up, down, inter_pod


def elastictree_subset(
    topology: Topology,
    power_model: PowerModel,
    demands: TrafficMatrix,
    utilisation_limit: float = 1.0,
    build_routing: bool = True,
) -> EnergyAwareSolution:
    """Compute the ElasticTree-style minimal fat-tree subset.

    Args:
        topology: A fat-tree built with :func:`repro.topology.build_fattree`
            (hosts optional; demands may be host-to-host or edge-to-edge).
        power_model: Power model used to cost the resulting subset.
        demands: Traffic matrix.
        utilisation_limit: Safety margin on the per-link capacity when sizing
            the number of switches.
        build_routing: Also derive shortest-path routing on the active subset.

    Returns:
        An :class:`EnergyAwareSolution` whose active set keeps, per pod, the
        leftmost aggregation switches needed for the pod's traffic plus the
        leftmost core switches needed for inter-pod traffic.
    """
    k = _fattree_arity(topology)
    half = k // 2
    link_capacity = min(link.capacity_bps for link in topology.links())
    usable = link_capacity * utilisation_limit

    up, down, inter_pod = _pod_traffic(topology, demands)

    # Hosts and edge switches always stay on (they terminate the traffic).
    active_nodes: Set[str] = set(topology.nodes_at_level("host"))
    active_nodes |= set(topology.nodes_at_level("edge"))

    # Aggregation switches per pod: enough uplink capacity for the pod's
    # traffic, at least one for connectivity, never more than k/2.
    pods = sorted({pod_of(name) for name in topology.nodes_at_level("edge")})
    agg_needed: Dict[int, int] = {}
    for pod in pods:
        pod_demand = max(up.get(pod, 0.0), down.get(pod, 0.0))
        # Each aggregation switch offers `half` uplinks of `usable` capacity.
        needed = max(1, math.ceil(pod_demand / max(usable * half, 1e-12)))
        agg_needed[pod] = min(half, needed)
        for position in range(agg_needed[pod]):
            active_nodes.add(f"agg{pod}_{position}")

    # Core switches: enough capacity for all inter-pod traffic, at least one
    # per active "stripe" so that every active aggregation switch keeps an
    # uplink, never more than (k/2)^2.
    max_agg_position = max(agg_needed.values())
    cores_per_stripe = max(1, math.ceil(inter_pod / max(usable * k, 1e-12)))
    cores_per_stripe = min(half, cores_per_stripe)
    for stripe in range(max_agg_position):
        for offset in range(cores_per_stripe):
            active_nodes.add(f"core{stripe * half + offset}")

    # Active links: every link whose both endpoints are active.
    active_links: Set[Tuple[str, str]] = {
        link.key
        for link in topology.links()
        if link.u in active_nodes and link.v in active_nodes
    }

    routing: Optional[RoutingTable] = None
    if build_routing and len(demands) > 0:
        routing, active_nodes, active_links = _route_and_repair(
            topology, demands, active_nodes, active_links, usable
        )

    power = solution_power(topology, power_model, active_nodes, active_links)
    return EnergyAwareSolution(
        active_nodes=active_nodes,
        active_links=active_links,
        routing=routing,
        power_w=power,
        objective_w=power,
        optimal=False,
        solver="elastictree-greedy",
    )


def _route_and_repair(
    topology: Topology,
    demands: TrafficMatrix,
    active_nodes: Set[str],
    active_links: Set[Tuple[str, str]],
    usable_capacity: float,
) -> Tuple[RoutingTable, Set[str], Set[Tuple[str, str]]]:
    """Route on the active subset, adding switches if a link would overload.

    Routing uses the capacity-aware greedy packer rather than plain shortest
    paths: a fat-tree pod with two active aggregation switches must spread its
    edge uplink traffic across both of them, which single-metric shortest
    paths cannot do.
    """
    from ..power.commodity import CommoditySwitchPowerModel
    from .greente import greente_heuristic

    packing_model = CommoditySwitchPowerModel()
    all_switch_names = sorted(
        set(topology.nodes_at_level("aggregation")) | set(topology.nodes_at_level("core"))
    )
    for _ in range(len(all_switch_names) + 1):
        subgraph = topology.subgraph(active_nodes, active_links)
        routing = greente_heuristic(
            subgraph,
            packing_model,
            demands,
            k=4,
            allow_overload=True,
        ).routing
        loads = link_loads(subgraph, routing, demands)
        overloaded = [
            key for key, load in loads.items() if load > usable_capacity + 1e-9
        ]
        if not overloaded:
            return routing, active_nodes, active_links
        # Activate the next inactive switch (leftmost aggregation first, then
        # core) and retry.
        inactive = [name for name in all_switch_names if name not in active_nodes]
        if not inactive:
            return routing, active_nodes, active_links
        chosen = inactive[0]
        active_nodes = set(active_nodes) | {chosen}
        active_links = {
            link.key
            for link in topology.links()
            if link.u in active_nodes and link.v in active_nodes
        }
    return routing, active_nodes, active_links
