"""Greedy minimum-subset heuristic (Chiaraviglio et al. [15]).

"The authors propose a heuristic which sorts the devices according to their
power consumption and then tries to power off the devices that are most
power hungry."  The heuristic below follows that recipe: starting from the
fully powered network it repeatedly tries to switch off the most power-hungry
remaining element (first routers, then individual links), keeping an element
off only if the splittable multi-commodity flow LP still accommodates the
demand on what remains.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from ..power.model import PowerModel
from ..routing.mcf import is_demand_feasible
from ..routing.ospf import ospf_invcap_routing
from ..routing.paths import RoutingTable
from ..topology.base import Topology, link_key
from ..traffic.matrix import TrafficMatrix
from .solution import EnergyAwareSolution, element_power_coefficients, solution_power


def _protected_nodes(topology: Topology, demands: TrafficMatrix) -> Set[str]:
    """Nodes that can never be switched off: endpoints and always-on devices."""
    protected = {name for name in topology.nodes() if topology.node(name).always_powered}
    protected |= set(demands.nodes())
    return protected


def greedy_minimum_subset(
    topology: Topology,
    power_model: PowerModel,
    demands: TrafficMatrix,
    utilisation_limit: float = 1.0,
    fixed_on_nodes: Optional[Iterable[str]] = None,
    fixed_on_links: Optional[Iterable[Tuple[str, str]]] = None,
    build_routing: bool = True,
) -> EnergyAwareSolution:
    """Find a small active subset able to carry *demands*.

    Args:
        topology: The physical topology.
        power_model: Power coefficients guiding the switch-off order.
        demands: Traffic matrix that must remain routable.
        utilisation_limit: Safety margin applied to every arc capacity.
        fixed_on_nodes: Nodes that must stay on regardless of traffic.
        fixed_on_links: Undirected links that must stay active.
        build_routing: Also derive a single-path routing table on the final
            active subgraph (inverse-capacity shortest paths).

    Returns:
        An :class:`EnergyAwareSolution`; ``optimal`` is always ``False``.
    """
    node_power, link_power = element_power_coefficients(topology, power_model)
    active_nodes: Set[str] = set(topology.nodes())
    active_links: Set[Tuple[str, str]] = set(topology.link_keys())

    protected_nodes = _protected_nodes(topology, demands) | set(fixed_on_nodes or ())
    protected_links = {link_key(u, v) for (u, v) in (fixed_on_links or ())}

    def feasible(nodes: Set[str], links: Set[Tuple[str, str]]) -> bool:
        return is_demand_feasible(
            topology,
            demands,
            utilisation_limit=utilisation_limit,
            active_nodes=nodes,
            active_links=links,
        )

    # Phase 1: routers, most power-hungry first (chassis + incident ports).
    def router_power(name: str) -> float:
        incident = sum(link_power[link.key] for link in topology.incident_links(name))
        return node_power[name] + incident

    for name in sorted(topology.routers(), key=router_power, reverse=True):
        if name in protected_nodes or name not in active_nodes:
            continue
        candidate_nodes = active_nodes - {name}
        candidate_links = {
            key for key in active_links if name not in key
        }
        if feasible(candidate_nodes, candidate_links):
            active_nodes = candidate_nodes
            active_links = candidate_links

    # Phase 2: individual links, most power-hungry first.
    for key in sorted(active_links, key=lambda k: link_power[k], reverse=True):
        if key in protected_links:
            continue
        candidate_links = active_links - {key}
        if feasible(active_nodes, candidate_links):
            active_links = candidate_links

    # Drop routers left with no active link (constraint 3), unless protected.
    attached: Dict[str, int] = {name: 0 for name in active_nodes}
    for u, v in active_links:
        attached[u] = attached.get(u, 0) + 1
        attached[v] = attached.get(v, 0) + 1
    active_nodes = {
        name
        for name in active_nodes
        if attached.get(name, 0) > 0 or name in protected_nodes
    }

    routing: Optional[RoutingTable] = None
    if build_routing and len(demands) > 0:
        subgraph = topology.subgraph(active_nodes, active_links)
        routing = ospf_invcap_routing(
            subgraph, pairs=demands.pairs(), name="greedy-subset"
        )

    power = solution_power(topology, power_model, active_nodes, active_links)
    return EnergyAwareSolution(
        active_nodes=active_nodes,
        active_links=active_links,
        routing=routing,
        power_w=power,
        objective_w=power,
        optimal=False,
        solver="greedy-minimum-subset",
    )
