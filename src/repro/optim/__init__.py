"""Energy-aware routing optimisation: exact MILPs, heuristics and baselines."""

from .elastictree import elastictree_subset
from .greedy import greedy_minimum_subset
from .greente import greente_heuristic
from .lp_relax import lp_relaxation_with_rounding
from .model import ArcMilpConfig, solve_arc_milp
from .pathmilp import DEFAULT_NUM_CANDIDATE_PATHS, PathMilpConfig, solve_path_milp
from .solution import EnergyAwareSolution, element_power_coefficients, solution_power

__all__ = [
    "elastictree_subset",
    "greedy_minimum_subset",
    "greente_heuristic",
    "lp_relaxation_with_rounding",
    "ArcMilpConfig",
    "solve_arc_milp",
    "DEFAULT_NUM_CANDIDATE_PATHS",
    "PathMilpConfig",
    "solve_path_milp",
    "EnergyAwareSolution",
    "element_power_coefficients",
    "solution_power",
]
