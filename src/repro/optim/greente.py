"""GreenTE-style power-aware traffic-engineering heuristic (Zhang et al. [41]).

GreenTE restricts every origin-destination pair to its k shortest paths and
searches for the assignment that minimises the power of the elements left
carrying traffic.  The reproduction implements the heuristic as a greedy
path packer:

1. sort pairs by descending demand (big flows are placed first, as in
   bin-packing heuristics),
2. for each pair, choose among its candidate paths the one that activates
   the least additional power while fitting within the residual capacities,
3. break ties in favour of already-active elements and shorter paths.

The result is traffic-aware (unlike the stress-factor computation) and fast,
which is why the paper uses it as the *REsPoNse-heuristic* variant for
computing on-demand paths on large topologies.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Set, Tuple

from ..exceptions import InfeasibleError
from ..power.model import PowerModel
from ..routing.ksp import k_shortest_paths_all_pairs
from ..routing.paths import Path, RoutingTable
from ..topology.base import Topology, link_key
from ..traffic.matrix import Pair, TrafficMatrix
from .solution import EnergyAwareSolution, element_power_coefficients, solution_power

#: Default number of candidate paths per pair (GreenTE's k).
DEFAULT_K = 4


def greente_heuristic(
    topology: Topology,
    power_model: PowerModel,
    demands: TrafficMatrix,
    k: int = DEFAULT_K,
    utilisation_limit: float = 1.0,
    candidate_paths: Optional[Mapping[Pair, Sequence[Path]]] = None,
    fixed_on_nodes: Optional[Iterable[str]] = None,
    fixed_on_links: Optional[Iterable[Tuple[str, str]]] = None,
    allow_overload: bool = False,
    ordering: str = "demand",
) -> EnergyAwareSolution:
    """Greedy k-shortest-path power-aware traffic engineering.

    Args:
        topology: The physical topology.
        power_model: Power coefficients used to cost element activation.
        demands: Traffic matrix to place.
        k: Candidate paths per pair when *candidate_paths* is not given.
        utilisation_limit: Safety margin on every arc's capacity.
        candidate_paths: Explicit candidates per pair.
        fixed_on_nodes: Elements considered already powered (zero marginal
            cost), e.g. the always-on set.
        fixed_on_links: Links considered already active.
        allow_overload: When ``True``, a pair whose demand fits on no
            candidate path is placed on the least-loaded candidate anyway
            instead of raising :class:`InfeasibleError`.
        ordering: ``"demand"`` places the biggest flows first (better
            packing); ``"stable"`` places pairs in a fixed lexicographic
            order, which makes the chosen configuration insensitive to small
            demand fluctuations — the choice used when replaying traces to
            count configuration changes.

    Returns:
        An :class:`EnergyAwareSolution` with one chosen path per pair.
    """
    if ordering not in ("demand", "stable"):
        raise ValueError(f"ordering must be 'demand' or 'stable', got {ordering!r}")
    pairs = demands.pairs()
    if candidate_paths is None:
        candidate_paths = k_shortest_paths_all_pairs(topology, k, pairs=pairs)
    node_power, link_power = element_power_coefficients(topology, power_model)

    active_nodes: Set[str] = set(fixed_on_nodes or ())
    active_nodes |= {n for n in topology.nodes() if topology.node(n).always_powered}
    active_links: Set[Tuple[str, str]] = {
        link_key(u, v) for (u, v) in (fixed_on_links or ())
    }
    residual: Dict[Tuple[str, str], float] = {
        arc.key: arc.capacity_bps * utilisation_limit for arc in topology.arcs()
    }

    def marginal_power(path: Path) -> float:
        cost = 0.0
        for node in path.nodes:
            if node not in active_nodes:
                cost += node_power[node]
        for key in path.link_keys():
            if key not in active_links:
                cost += link_power[key]
        return cost

    def fits(path: Path, demand: float) -> bool:
        return all(residual[arc] >= demand - 1e-9 for arc in path.arc_keys())

    chosen: Dict[Pair, Path] = {}
    if ordering == "demand":
        ordered = sorted(pairs, key=lambda pair: demands[pair], reverse=True)
    else:
        ordered = sorted(pairs)
    for pair in ordered:
        demand = demands[pair]
        candidates = list(candidate_paths[pair])
        if not candidates:
            raise InfeasibleError(f"pair {pair} has no candidate paths")
        feasible = [path for path in candidates if fits(path, demand)]
        if not feasible:
            if not allow_overload:
                raise InfeasibleError(
                    f"demand of pair {pair} ({demand:.3g} bps) fits on no candidate path"
                )
            feasible = [
                max(candidates, key=lambda path: min(residual[a] for a in path.arc_keys()))
            ]
        best = min(
            feasible,
            key=lambda path: (marginal_power(path), path.num_hops, path.latency(topology)),
        )
        chosen[pair] = best
        for node in best.nodes:
            active_nodes.add(node)
        for key in best.link_keys():
            active_links.add(key)
        for arc in best.arc_keys():
            residual[arc] -= demand

    routing = RoutingTable(chosen, name="greente")
    power = solution_power(topology, power_model, active_nodes, active_links)
    return EnergyAwareSolution(
        active_nodes=active_nodes,
        active_links=active_links,
        routing=routing,
        power_w=power,
        objective_w=power,
        optimal=False,
        solver="greente-heuristic",
    )
