"""Exact arc-based MILP of Section 2.2.1.

This is the formulation the paper (and the related work it cites) hands to
CPLEX: binary per-flow arc variables, binary link/node power states, the
multi-commodity-flow constraints plus the three energy-coupling constraints.
It is NP-hard and only practical for small topologies — the paper reports
hours even for medium ISP networks — so the library uses it for validation
and for the small example/testbed topologies, while
:mod:`repro.optim.pathmilp` serves the evaluation-sized networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from ..exceptions import InfeasibleError, SolverError
from ..power.model import PowerModel
from ..routing.paths import Path, RoutingTable
from ..topology.base import Topology, link_key
from ..traffic.matrix import Pair, TrafficMatrix
from .solution import EnergyAwareSolution, element_power_coefficients, solution_power

#: Guard against accidentally building an intractable instance.
MAX_FLOW_VARIABLES = 30_000


@dataclass
class ArcMilpConfig:
    """Configuration of the exact arc-based MILP."""

    utilisation_limit: float = 1.0
    time_limit_s: Optional[float] = 120.0
    mip_rel_gap: float = 1e-4


def solve_arc_milp(
    topology: Topology,
    power_model: PowerModel,
    demands: TrafficMatrix,
    config: Optional[ArcMilpConfig] = None,
    fixed_on_nodes: Optional[Iterable[str]] = None,
    fixed_on_links: Optional[Iterable[Tuple[str, str]]] = None,
    solver_name: str = "arc-milp",
) -> EnergyAwareSolution:
    """Solve the exact formulation and extract single-path routes.

    Args:
        topology: The physical topology.
        power_model: Power coefficients for the objective.
        demands: Traffic matrix (every pair listed requires connectivity).
        config: Solver configuration.
        fixed_on_nodes: Nodes whose ``X_i`` is fixed to one.
        fixed_on_links: Links whose ``Y`` is fixed to one.
        solver_name: Label recorded in the solution.

    Raises:
        SolverError: If the instance exceeds :data:`MAX_FLOW_VARIABLES`
            (use :func:`repro.optim.pathmilp.solve_path_milp` instead) or the
            solver fails unexpectedly.
        InfeasibleError: If the demand cannot be carried at all.
    """
    cfg = config or ArcMilpConfig()
    pairs: List[Pair] = demands.pairs()
    arcs = topology.arcs()
    if len(pairs) * len(arcs) > MAX_FLOW_VARIABLES:
        raise SolverError(
            f"arc-based MILP would need {len(pairs) * len(arcs)} flow variables; "
            "use the path-restricted solver for instances of this size"
        )

    nodes = topology.nodes()
    links = topology.link_keys()
    node_index = {name: position for position, name in enumerate(nodes)}
    arc_index = {arc.key: position for position, arc in enumerate(arcs)}
    link_index = {key: position for position, key in enumerate(links)}

    num_flow = len(pairs) * len(arcs)
    num_vars = num_flow + len(links) + len(nodes)

    def f_var(pair_position: int, arc_position: int) -> int:
        return pair_position * len(arcs) + arc_position

    def y_var(key: Tuple[str, str]) -> int:
        return num_flow + link_index[key]

    def x_var(name: str) -> int:
        return num_flow + len(links) + node_index[name]

    node_power, link_power = element_power_coefficients(topology, power_model)
    cost = np.zeros(num_vars)
    for key, power in link_power.items():
        cost[y_var(key)] = power
    for name, power in node_power.items():
        cost[x_var(name)] = power
    # A vanishing preference for fewer hops breaks ties and avoids gratuitous
    # loops in the extracted paths without affecting the power optimum.
    hop_penalty = 1e-6 * max(cost.max(), 1.0) / max(len(arcs), 1)
    cost[:num_flow] = hop_penalty

    lower = np.zeros(num_vars)
    upper = np.ones(num_vars)
    for name in nodes:
        if topology.node(name).always_powered or name in set(fixed_on_nodes or ()):
            lower[x_var(name)] = 1.0
    for u, v in fixed_on_links or ():
        lower[y_var(link_key(u, v))] = 1.0

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    constraint_lower: List[float] = []
    constraint_upper: List[float] = []
    row_count = 0

    def add_entry(row: int, column: int, value: float) -> None:
        rows.append(row)
        cols.append(column)
        vals.append(value)

    # Flow conservation per (pair, node): out - in = 1 at the origin,
    # -1 at the destination, 0 elsewhere.
    for pair_position, (origin, destination) in enumerate(pairs):
        for name in nodes:
            for arc in topology.outgoing_arcs(name):
                add_entry(row_count, f_var(pair_position, arc_index[arc.key]), 1.0)
            for neighbour in topology.neighbors(name):
                incoming = topology.arc(neighbour, name)
                add_entry(row_count, f_var(pair_position, arc_index[incoming.key]), -1.0)
            if name == origin:
                balance = 1.0
            elif name == destination:
                balance = -1.0
            else:
                balance = 0.0
            constraint_lower.append(balance)
            constraint_upper.append(balance)
            row_count += 1

    # Capacity and link-activation coupling (constraint 2).
    capacity_scale = max(arc.capacity_bps for arc in arcs)
    for arc in arcs:
        arc_position = arc_index[arc.key]
        for pair_position, pair in enumerate(pairs):
            demand = demands[pair]
            coefficient = max(demand, 0.0) / capacity_scale
            add_entry(row_count, f_var(pair_position, arc_position), coefficient)
            # Even zero-demand flows may only use active links.
            add_entry(row_count + 1, f_var(pair_position, arc_position), 1.0)
        add_entry(
            row_count,
            y_var(link_key(arc.src, arc.dst)),
            -arc.capacity_bps * cfg.utilisation_limit / capacity_scale,
        )
        constraint_lower.append(-np.inf)
        constraint_upper.append(0.0)
        add_entry(row_count + 1, y_var(link_key(arc.src, arc.dst)), -float(len(pairs)))
        constraint_lower.append(-np.inf)
        constraint_upper.append(0.0)
        row_count += 2

    # Constraint (1): links of a powered-off router are inactive.
    for key in links:
        for endpoint in key:
            add_entry(row_count, y_var(key), 1.0)
            add_entry(row_count, x_var(endpoint), -1.0)
            constraint_lower.append(-np.inf)
            constraint_upper.append(0.0)
            row_count += 1

    # Constraint (3): a router with no active link is powered off.
    for name in nodes:
        if lower[x_var(name)] >= 1.0:
            continue
        incident = [link.key for link in topology.incident_links(name)]
        if not incident:
            continue
        add_entry(row_count, x_var(name), 1.0)
        for key in incident:
            add_entry(row_count, y_var(key), -1.0)
        constraint_lower.append(-np.inf)
        constraint_upper.append(0.0)
        row_count += 1

    matrix = sparse.csc_matrix((vals, (rows, cols)), shape=(row_count, num_vars))
    constraints = LinearConstraint(
        matrix, np.array(constraint_lower), np.array(constraint_upper)
    )
    options: Dict[str, object] = {"mip_rel_gap": cfg.mip_rel_gap}
    if cfg.time_limit_s is not None:
        options["time_limit"] = cfg.time_limit_s

    scale = max(cost.max(), 1.0)
    result = milp(
        c=cost / scale,
        constraints=constraints,
        integrality=np.ones(num_vars),
        bounds=Bounds(lower, upper),
        options=options,
    )
    if result.status == 2:
        raise InfeasibleError("the demand cannot be carried even with all elements active")
    if result.x is None:
        raise SolverError(f"MILP solver failed: {result.message}")

    solution = result.x
    active_links = {key for key in links if solution[y_var(key)] > 0.5}
    active_nodes = {name for name in nodes if solution[x_var(name)] > 0.5}

    routing = _extract_paths(topology, pairs, arcs, solution, f_var, arc_index, solver_name)
    active_nodes |= routing.used_nodes()
    active_links |= routing.used_links()

    power = solution_power(topology, power_model, active_nodes, active_links)
    return EnergyAwareSolution(
        active_nodes=active_nodes,
        active_links=active_links,
        routing=routing,
        power_w=power,
        objective_w=power,
        optimal=bool(result.status == 0),
        solver=solver_name,
        gap=float(result.mip_gap) if getattr(result, "mip_gap", None) is not None else 0.0,
    )


def _extract_paths(
    topology: Topology,
    pairs: List[Pair],
    arcs: list,
    solution: np.ndarray,
    f_var,
    arc_index: Dict[Tuple[str, str], int],
    solver_name: str,
) -> RoutingTable:
    """Walk the binary flow variables into node paths."""
    table: Dict[Pair, Path] = {}
    for pair_position, (origin, destination) in enumerate(pairs):
        next_hop: Dict[str, str] = {}
        for arc in arcs:
            if solution[f_var(pair_position, arc_index[arc.key])] > 0.5:
                next_hop[arc.src] = arc.dst
        nodes = [origin]
        current = origin
        visited = {origin}
        while current != destination:
            successor = next_hop.get(current)
            if successor is None or successor in visited:
                raise SolverError(
                    f"could not extract a simple path for pair {(origin, destination)}"
                )
            nodes.append(successor)
            visited.add(successor)
            current = successor
        table[(origin, destination)] = Path.of(nodes)
    return RoutingTable(table, name=solver_name)
