"""Common result types and helpers shared by the energy-aware solvers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from ..power.accounting import network_power
from ..power.model import PowerModel
from ..routing.paths import RoutingTable
from ..topology.base import Topology


@dataclass
class EnergyAwareSolution:
    """Outcome of an energy-aware routing computation.

    Attributes:
        active_nodes: Nodes that stay powered on.
        active_links: Undirected (canonical) link keys that stay active.
        routing: Single-path routing table over the active subset, when the
            solver produces explicit paths (heuristics that only decide the
            active subset leave this ``None``).
        power_w: Power of the active subset under the solver's power model.
        objective_w: The solver's reported objective value (watts); equals
            ``power_w`` for exact solvers, may differ slightly for rounded
            heuristics.
        optimal: Whether the solver proved optimality.
        solver: Name of the algorithm that produced the solution.
        gap: Relative MIP gap when reported by the solver (0 for heuristics).
    """

    active_nodes: Set[str]
    active_links: Set[Tuple[str, str]]
    routing: Optional[RoutingTable]
    power_w: float
    objective_w: float
    optimal: bool
    solver: str
    gap: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        """Summary dictionary for experiment reports."""
        return {
            "solver": self.solver,
            "active_nodes": len(self.active_nodes),
            "active_links": len(self.active_links),
            "power_w": self.power_w,
            "optimal": self.optimal,
            "gap": self.gap,
        }


def element_power_coefficients(
    topology: Topology, power_model: PowerModel
) -> Tuple[Dict[str, float], Dict[Tuple[str, str], float]]:
    """Per-node chassis and per-link (both directions) power coefficients.

    Returns:
        ``(node_power, link_power)`` where ``node_power[i]`` is ``Pc(i)`` and
        ``link_power[(u, v)]`` is ``Pl(u->v) + Pa(u->v) + Pl(v->u) + Pa(v->u)``
        for the canonical link key ``(u, v)``.  Host nodes and host-side ports
        carry zero cost, mirroring :mod:`repro.power.accounting`.
    """
    node_power: Dict[str, float] = {}
    for name in topology.nodes():
        node = topology.node(name)
        node_power[name] = 0.0 if node.kind == "host" else power_model.chassis_power_w(node)

    link_power: Dict[Tuple[str, str], float] = {}
    for link in topology.links():
        total = 0.0
        for src, dst in link.arc_keys():
            if topology.node(src).kind == "host":
                continue
            arc = topology.arc(src, dst)
            total += power_model.port_power_w(arc) + power_model.amplifier_power_w(arc)
        link_power[link.key] = total
    return node_power, link_power


def solution_power(
    topology: Topology,
    power_model: PowerModel,
    active_nodes: Set[str],
    active_links: Set[Tuple[str, str]],
) -> float:
    """Power of an active subset under the library's standard accounting."""
    return network_power(topology, power_model, active_nodes, active_links).total_w
