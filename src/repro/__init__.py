"""REsPoNse: identifying and using energy-critical paths (CoNEXT 2011).

Reproduction library.  The most commonly used entry points are re-exported
here; the subpackages hold the full API:

* :mod:`repro.topology` — evaluation topologies (GÉANT, Rocketfuel, fat-tree,
  PoP-access, the Figure 3 example) and the core :class:`Topology` type,
* :mod:`repro.power` — router/switch power models and network accounting,
* :mod:`repro.traffic` — traffic matrices, gravity/sine/trace generators,
* :mod:`repro.routing` — OSPF-InvCap, ECMP, k-shortest paths, MCF,
* :mod:`repro.optim` — the energy-aware MILPs and heuristic baselines,
* :mod:`repro.core` — the REsPoNse framework itself (always-on/on-demand/
  failover path computation, energy-critical path analysis, activation
  planner, REsPoNseTE online controller),
* :mod:`repro.simulator` — the flow-level simulator,
* :mod:`repro.apps` — streaming and web workloads,
* :mod:`repro.analysis` — Section 3 trace analyses and evaluation metrics,
* :mod:`repro.experiments` — one driver per evaluation figure.
"""

from .core.plan import ResponsePlan
from .core.planner import ActivationResult, activate_paths
from .core.response import RESPONSE_VARIANTS, ResponseConfig, build_response_plan
from .core.te import ResponseTEController, TEConfig
from .power.accounting import full_power, network_power, power_percentage
from .power.alternative import AlternativeHardwarePowerModel
from .power.cisco import CiscoRouterPowerModel
from .power.commodity import CommoditySwitchPowerModel
from .routing.ospf import ospf_invcap_routing
from .routing.paths import Path, RoutingTable
from .topology.base import Topology
from .traffic.matrix import TrafficMatrix

__version__ = "1.0.0"

__all__ = [
    "ResponsePlan",
    "ActivationResult",
    "activate_paths",
    "RESPONSE_VARIANTS",
    "ResponseConfig",
    "build_response_plan",
    "ResponseTEController",
    "TEConfig",
    "full_power",
    "network_power",
    "power_percentage",
    "AlternativeHardwarePowerModel",
    "CiscoRouterPowerModel",
    "CommoditySwitchPowerModel",
    "ospf_invcap_routing",
    "Path",
    "RoutingTable",
    "Topology",
    "TrafficMatrix",
    "__version__",
]
