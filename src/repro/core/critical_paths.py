"""Identification of energy-critical paths (Section 3.3).

The paper's key observation: when the energy-optimal routing is recomputed
for every interval of a long trace, "a large majority of node pairs route
their packets through very few, reoccurring paths — we refer to these as
energy-critical paths".  For GÉANT two paths per pair cover about 98 % of the
traffic and three cover essentially all of it; a fat-tree needs about five.

This module ranks, for every origin-destination pair, the paths observed
across a sequence of per-interval routings by the traffic they carried, and
computes the coverage curve of Figure 2b.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple


from ..exceptions import TrafficError
from ..routing.paths import Path, RoutingTable
from ..traffic.matrix import Pair
from ..traffic.replay import TrafficTrace


@dataclass(frozen=True)
class RankedPath:
    """A path and the total traffic it carried over the analysed trace."""

    path: Path
    carried_bps: float
    intervals_used: int


def rank_paths_by_traffic(
    trace: TrafficTrace,
    routings: Sequence[RoutingTable],
) -> Dict[Pair, List[RankedPath]]:
    """Rank every pair's observed paths by the traffic they carried.

    Args:
        trace: The demand trace.
        routings: One routing table per trace interval (the routing that was
            in effect — e.g. the per-interval optimal routing, or the routing
            REsPoNse's planner selected).

    Returns:
        For every pair, its observed paths sorted by carried traffic
        (descending).

    Raises:
        TrafficError: If the number of routings does not match the trace.
    """
    if len(routings) != len(trace):
        raise TrafficError(
            f"need one routing per interval: {len(routings)} routings "
            f"for {len(trace)} intervals"
        )
    carried: Dict[Pair, Dict[Tuple[str, ...], float]] = {}
    used: Dict[Pair, Dict[Tuple[str, ...], int]] = {}
    path_objects: Dict[Tuple[str, ...], Path] = {}

    for interval, routing in zip(trace, routings, strict=True):
        for pair, demand in interval.matrix.items():
            path = routing.get(*pair)
            if path is None:
                continue
            key = path.nodes
            path_objects[key] = path
            carried.setdefault(pair, {})[key] = (
                carried.get(pair, {}).get(key, 0.0) + demand * trace.interval_s
            )
            used.setdefault(pair, {})[key] = used.get(pair, {}).get(key, 0) + 1

    ranked: Dict[Pair, List[RankedPath]] = {}
    for pair, per_path in carried.items():
        entries = [
            RankedPath(
                path=path_objects[key],
                carried_bps=volume,
                intervals_used=used[pair][key],
            )
            for key, volume in per_path.items()
        ]
        entries.sort(key=lambda entry: entry.carried_bps, reverse=True)
        ranked[pair] = entries
    return ranked


def coverage_curve(
    ranked: Mapping[Pair, Sequence[RankedPath]],
    max_paths: int = 5,
) -> List[float]:
    """Fraction of total traffic covered by each pair's top-X paths.

    This is the y-axis of Figure 2b: for ``X = 1 .. max_paths``, the fraction
    of all carried traffic that would have been covered had every pair only
    been allowed its top-X paths.
    """
    if max_paths < 1:
        raise TrafficError(f"max_paths must be >= 1, got {max_paths}")
    total = sum(entry.carried_bps for entries in ranked.values() for entry in entries)
    if total <= 0.0:
        return [1.0] * max_paths
    curve: List[float] = []
    for top in range(1, max_paths + 1):
        covered = sum(
            sum(entry.carried_bps for entry in entries[:top])
            for entries in ranked.values()
        )
        curve.append(covered / total)
    return curve


def paths_needed_for_coverage(
    ranked: Mapping[Pair, Sequence[RankedPath]],
    target_fraction: float = 0.98,
    max_paths: int = 10,
) -> int:
    """Smallest number of per-pair paths whose coverage reaches the target."""
    if not 0.0 < target_fraction <= 1.0:
        raise TrafficError(f"target_fraction must be in (0, 1], got {target_fraction}")
    curve = coverage_curve(ranked, max_paths=max_paths)
    for index, fraction in enumerate(curve, start=1):
        if fraction >= target_fraction:
            return index
    return max_paths


def select_energy_critical_paths(
    ranked: Mapping[Pair, Sequence[RankedPath]],
    num_paths: int,
) -> Dict[Pair, List[Path]]:
    """The top-``num_paths`` energy-critical paths of every pair."""
    if num_paths < 1:
        raise TrafficError(f"num_paths must be >= 1, got {num_paths}")
    return {
        pair: [entry.path for entry in entries[:num_paths]]
        for pair, entries in ranked.items()
    }


def routing_tables_from_critical_paths(
    critical: Mapping[Pair, Sequence[Path]],
    num_tables: int,
) -> List[RoutingTable]:
    """Turn per-pair ranked paths into positional routing tables.

    Table ``i`` holds every pair's ``i``-th most important path (falling back
    to the most important one when a pair has fewer than ``i + 1`` paths), so
    table 0 resembles an always-on table and later tables resemble on-demand
    tables.
    """
    tables: List[RoutingTable] = []
    for position in range(num_tables):
        entries: Dict[Pair, Path] = {}
        for pair, paths in critical.items():
            if not paths:
                continue
            index = min(position, len(paths) - 1)
            entries[pair] = paths[index]
        tables.append(RoutingTable(entries, name=f"critical-paths-{position}"))
    return tables
