"""Computation of the failover paths (Section 4.3).

"Our goal is to construct the failover paths in a way that all paths combined
are not vulnerable to a single link failure ... In the case where it is not
possible to have such three paths, it is still desirable to find the set of
paths that are least likely to be all affected by a single failure.  We have
opted for a single failover path per (O,D) pair."

For every pair the failover path is the shortest path in a graph where links
already used by the pair's always-on and on-demand paths carry a large
penalty; the result is a fully link-disjoint path whenever one exists and the
least-overlapping path otherwise.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..routing.paths import Path, RoutingTable
from ..topology.base import Topology, link_key
from ..traffic.matrix import Pair

#: Multiplier applied to the weight of links that existing paths already use.
DISJOINTNESS_PENALTY = 1e6


def compute_failover(
    topology: Topology,
    existing_tables: Sequence[RoutingTable],
    pairs: Optional[Iterable[Pair]] = None,
    weight: str = "invcap",
    name: str = "failover",
) -> RoutingTable:
    """Compute one failover path per pair, maximally disjoint from existing paths.

    Args:
        topology: The physical topology.
        existing_tables: The always-on and on-demand tables to protect.
        pairs: Pairs to protect; defaults to the union of pairs present in
            the existing tables.
        weight: Base arc weight (``"invcap"``, ``"latency"`` or ``"hops"``).
        name: Name of the resulting routing table.

    Returns:
        A :class:`RoutingTable` with the failover path of every pair for
        which any path exists (disconnected pairs are skipped).
    """
    if pairs is None:
        seen: Set[Pair] = set()
        for table in existing_tables:
            seen.update(table.pairs())
        selected: List[Pair] = sorted(seen)
    else:
        selected = list(pairs)

    graph = topology.to_networkx()
    weight_attr = None if weight in (None, "hops") else weight

    failover: Dict[Pair, Path] = {}
    for pair in selected:
        origin, destination = pair
        used_links: Set[Tuple[str, str]] = set()
        for table in existing_tables:
            path = table.get(origin, destination)
            if path is not None:
                used_links.update(path.link_keys())

        def penalised_weight(u: str, v: str, data: dict) -> float:
            base = 1.0 if weight_attr is None else data[weight_attr]
            if link_key(u, v) in used_links:
                return base * DISJOINTNESS_PENALTY
            return base

        try:
            nodes = nx.shortest_path(graph, origin, destination, weight=penalised_weight)
        except nx.NetworkXNoPath:
            continue
        failover[pair] = Path.of(nodes)
    return RoutingTable(failover, name=name)


def vulnerable_pairs(
    topology: Topology,
    tables: Sequence[RoutingTable],
    pairs: Optional[Iterable[Pair]] = None,
) -> List[Pair]:
    """Pairs for which a single link failure can sever every installed path.

    The paper notes that a single failover path handles "the vast majority of
    failures without causing any disconnectivity"; this helper quantifies the
    residual exposure.
    """
    if pairs is None:
        seen: Set[Pair] = set()
        for table in tables:
            seen.update(table.pairs())
        selected: List[Pair] = sorted(seen)
    else:
        selected = list(pairs)

    exposed: List[Pair] = []
    for pair in selected:
        link_sets = []
        for table in tables:
            path = table.get(*pair)
            if path is not None:
                link_sets.append(set(path.link_keys()))
        if not link_sets:
            continue
        common = set.intersection(*link_sets)
        if common:
            exposed.append(pair)
    return exposed


def survives_single_failure(
    tables: Sequence[RoutingTable],
    pair: Pair,
    failed_link: Tuple[str, str],
) -> bool:
    """Whether some installed path of *pair* avoids the failed link."""
    failed = link_key(*failed_link)
    for table in tables:
        path = table.get(*pair)
        if path is not None and failed not in set(path.link_keys()):
            return True
    return False
