"""Computation of the always-on paths (Section 4.1).

"The goal of the always-on paths is to provide a routing that can carry low
to medium amounts of traffic at the lowest power consumption."  They are
obtained by solving the energy-minimisation problem with either

* the off-peak traffic matrix estimate ``d_low`` as the demand, or
* (demand-oblivious) every flow set to a tiny ε such as 1 bit/s, which yields
  a minimal-power routing with full connectivity.

The *REsPoNse-lat* variant adds constraint (4): every always-on path's
propagation delay must stay within ``(1 + β)`` of the OSPF-InvCap delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..exceptions import ConfigurationError
from ..optim.greedy import greedy_minimum_subset
from ..optim.pathmilp import PathMilpConfig, solve_path_milp
from ..optim.solution import EnergyAwareSolution
from ..power.model import PowerModel
from ..routing.ospf import ospf_delays
from ..topology.base import Topology
from ..traffic.matrix import Pair, TrafficMatrix, all_pairs

#: Default ε demand used for the demand-oblivious computation (1 bit/s).
DEFAULT_EPSILON_BPS = 1.0


@dataclass
class AlwaysOnConfig:
    """Configuration of the always-on path computation.

    Attributes:
        method: ``"milp"`` (path-restricted MILP, default) or ``"greedy"``
            (Chiaraviglio-style subset followed by shortest-path routing).
        k: Candidate paths per pair for the MILP.
        latency_beta: When not ``None``, enforce the REsPoNse-lat constraint
            ``delay <= (1 + beta) * delay_OSPF`` for every pair.
        utilisation_limit: Safety margin ``sm`` applied to link capacities.
        epsilon_bps: ε demand used when no off-peak matrix is supplied.
        time_limit_s: Solver time limit.
    """

    method: str = "milp"
    k: int = 3
    latency_beta: Optional[float] = None
    utilisation_limit: float = 1.0
    epsilon_bps: float = DEFAULT_EPSILON_BPS
    time_limit_s: Optional[float] = 60.0

    def __post_init__(self) -> None:
        if self.method not in ("milp", "greedy"):
            raise ConfigurationError(f"unknown always-on method: {self.method!r}")
        if self.latency_beta is not None and self.latency_beta < 0:
            raise ConfigurationError(
                f"latency_beta must be non-negative, got {self.latency_beta}"
            )


def compute_always_on(
    topology: Topology,
    power_model: PowerModel,
    pairs: Optional[Iterable[Pair]] = None,
    offpeak_matrix: Optional[TrafficMatrix] = None,
    config: Optional[AlwaysOnConfig] = None,
) -> EnergyAwareSolution:
    """Compute the always-on paths and the elements they keep active.

    Args:
        topology: The physical topology.
        power_model: Power coefficients minimised by the computation.
        pairs: Origin-destination pairs requiring connectivity; defaults to
            all ordered pairs of non-host nodes.
        offpeak_matrix: Off-peak traffic estimate ``d_low``; when omitted the
            demand-oblivious ε formulation is used.
        config: Tuning knobs; defaults to :class:`AlwaysOnConfig`.

    Returns:
        An :class:`EnergyAwareSolution` whose routing table holds the
        always-on path of every pair.
    """
    cfg = config or AlwaysOnConfig()
    selected: List[Pair] = list(pairs) if pairs is not None else all_pairs(topology.routers())
    if offpeak_matrix is not None:
        demands = offpeak_matrix.restricted_to(selected) if pairs is not None else offpeak_matrix
        # Pairs present in the selection but absent from the estimate still
        # need connectivity: give them the ε demand.
        missing = [pair for pair in selected if pair not in demands]
        if missing:
            demands = demands.merged_with(TrafficMatrix.epsilon(missing, cfg.epsilon_bps))
    else:
        demands = TrafficMatrix.epsilon(selected, cfg.epsilon_bps, name="always-on-epsilon")

    latency_bound: Optional[Dict[Pair, float]] = None
    if cfg.latency_beta is not None:
        reference = ospf_delays(topology, pairs=selected)
        latency_bound = {
            pair: (1.0 + cfg.latency_beta) * delay for pair, delay in reference.items()
        }

    if cfg.method == "greedy":
        solution = greedy_minimum_subset(
            topology,
            power_model,
            demands,
            utilisation_limit=cfg.utilisation_limit,
        )
        solution.solver = "always-on-greedy"
        return solution

    milp_config = PathMilpConfig(
        k=cfg.k,
        utilisation_limit=cfg.utilisation_limit,
        time_limit_s=cfg.time_limit_s,
    )
    solution = solve_path_milp(
        topology,
        power_model,
        demands,
        config=milp_config,
        latency_bound=latency_bound,
        solver_name="always-on-lat" if cfg.latency_beta is not None else "always-on",
    )
    return solution
