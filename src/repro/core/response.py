"""The REsPoNse framework front-end (Section 4).

:func:`build_response_plan` runs the complete off-line pipeline:

1. compute the **always-on** paths (minimal power, optionally
   latency-bounded — REsPoNse-lat),
2. compute one or more **on-demand** tables (stress-factor exclusion by
   default; peak-matrix, GreenTE-heuristic and OSPF variants reproduce the
   paper's REsPoNse / REsPoNse-heuristic / REsPoNse-ospf flavours),
3. compute the **failover** paths (maximally disjoint from the above).

The resulting :class:`~repro.core.plan.ResponsePlan` is what gets installed
into the network; the online component (:mod:`repro.core.planner` for trace
replays, :mod:`repro.core.te` for the packet/flow-level simulator) only picks
among the installed paths at run time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..exceptions import ConfigurationError
from ..power.model import PowerModel
from ..topology.base import Topology
from ..traffic.matrix import Pair, TrafficMatrix
from .always_on import AlwaysOnConfig, compute_always_on
from .failover import compute_failover
from .on_demand import OnDemandConfig, compute_on_demand
from .plan import ResponsePlan

#: The REsPoNse variants evaluated in the paper (Section 5).
RESPONSE_VARIANTS = ("response", "response-lat", "response-ospf", "response-heuristic")


@dataclass
class ResponseConfig:
    """End-to-end configuration of the off-line path computation.

    Attributes:
        num_paths: Total number of energy-critical paths per pair (the
            paper's N; defaults to 3: always-on, one on-demand, failover).
        latency_beta: When set, bound always-on path delay to
            ``(1 + beta) * delay_OSPF`` (REsPoNse-lat).
        on_demand_method: ``"stress"``, ``"peak"``, ``"heuristic"`` or
            ``"ospf"``.
        stress_exclude_fraction: Fraction of most-stressed links excluded by
            the stress-factor method.
        k: Candidate paths per pair for the solvers.
        utilisation_limit: Safety margin ``sm`` on link capacities.
        always_on_method: ``"milp"`` or ``"greedy"``.
        include_failover: Compute the failover table (on by default).
        time_limit_s: Per-solve time limit.
    """

    num_paths: int = 3
    latency_beta: Optional[float] = None
    on_demand_method: str = "stress"
    stress_exclude_fraction: float = 0.20
    k: int = 3
    utilisation_limit: float = 1.0
    always_on_method: str = "milp"
    include_failover: bool = True
    time_limit_s: Optional[float] = 60.0

    def __post_init__(self) -> None:
        if self.num_paths < 2:
            raise ConfigurationError(
                f"REsPoNse needs at least 2 paths per pair, got {self.num_paths}"
            )

    @property
    def num_on_demand_tables(self) -> int:
        """Number of on-demand tables: N minus always-on minus failover."""
        reserved = 2 if self.include_failover else 1
        return max(1, self.num_paths - reserved)

    @classmethod
    def for_variant(cls, variant: str, **overrides) -> "ResponseConfig":
        """Factory for the paper's named variants.

        ``"response"`` uses the stress-factor on-demand computation,
        ``"response-lat"`` adds the 25 % latency bound, ``"response-ospf"``
        reuses the OSPF table and ``"response-heuristic"`` uses GreenTE.
        """
        if variant not in RESPONSE_VARIANTS:
            raise ConfigurationError(
                f"unknown variant {variant!r}; expected one of {RESPONSE_VARIANTS}"
            )
        if variant == "response":
            config = cls(**overrides)
        elif variant == "response-lat":
            config = cls(latency_beta=overrides.pop("latency_beta", 0.25), **overrides)
        elif variant == "response-ospf":
            config = cls(on_demand_method="ospf", **overrides)
        else:  # response-heuristic
            config = cls(on_demand_method="heuristic", **overrides)
        return config


def build_response_plan(
    topology: Topology,
    power_model: PowerModel,
    pairs: Optional[Iterable[Pair]] = None,
    offpeak_matrix: Optional[TrafficMatrix] = None,
    peak_matrix: Optional[TrafficMatrix] = None,
    config: Optional[ResponseConfig] = None,
    variant: Optional[str] = None,
) -> ResponsePlan:
    """Run the complete off-line REsPoNse computation.

    Args:
        topology: The physical topology.
        power_model: Power coefficients minimised by the path computations.
        pairs: Origin-destination pairs to install; defaults to all ordered
            pairs of non-host nodes.
        offpeak_matrix: Optional ``d_low`` estimate for the always-on paths
            (the demand-oblivious ε formulation is used otherwise).
        peak_matrix: Optional ``d_peak`` estimate for the on-demand paths.
        config: Full configuration; mutually exclusive with *variant*.
        variant: Shortcut: one of :data:`RESPONSE_VARIANTS`.

    Returns:
        The computed :class:`ResponsePlan`.
    """
    if config is not None and variant is not None:
        raise ConfigurationError("pass either config or variant, not both")
    if config is None:
        config = (
            ResponseConfig.for_variant(variant) if variant is not None else ResponseConfig()
        )

    always_on = compute_always_on(
        topology,
        power_model,
        pairs=pairs,
        offpeak_matrix=offpeak_matrix,
        config=AlwaysOnConfig(
            method=config.always_on_method,
            k=config.k,
            latency_beta=config.latency_beta,
            utilisation_limit=config.utilisation_limit,
            time_limit_s=config.time_limit_s,
        ),
    )

    on_demand = compute_on_demand(
        topology,
        power_model,
        always_on,
        pairs=pairs,
        peak_matrix=peak_matrix,
        config=OnDemandConfig(
            method=config.on_demand_method,
            num_tables=config.num_on_demand_tables,
            stress_exclude_fraction=config.stress_exclude_fraction,
            k=config.k,
            utilisation_limit=config.utilisation_limit,
            time_limit_s=config.time_limit_s,
        ),
    )

    failover = None
    if config.include_failover:
        failover = compute_failover(
            topology,
            [always_on.routing, *on_demand],
            pairs=pairs,
        )

    variant_name = variant or _infer_variant_name(config)
    return ResponsePlan(
        always_on=always_on,
        on_demand=on_demand,
        failover=failover,
        topology_name=topology.name,
        variant=variant_name,
    )


def _infer_variant_name(config: ResponseConfig) -> str:
    if config.latency_beta is not None:
        return "response-lat"
    if config.on_demand_method == "ospf":
        return "response-ospf"
    if config.on_demand_method == "heuristic":
        return "response-heuristic"
    return "response"
