"""Computation of the on-demand paths (Section 4.2).

The on-demand paths "start carrying traffic when the load is beyond the
capacity offered by the always-on paths".  The paper describes four ways to
obtain them, all reproduced here:

* ``"peak"`` — re-solve the optimisation with the peak-hour matrix
  ``d_peak`` while keeping every element of the always-on solution powered
  on,
* ``"stress"`` — the demand-oblivious default: exclude the most-stressed
  fraction of the always-on links and re-solve with ε demands,
* ``"heuristic"`` — use an existing heuristic (GreenTE) — *REsPoNse-heuristic*,
* ``"ospf"`` — simply reuse the OSPF-InvCap table — *REsPoNse-ospf*.

The computation is repeated ``N - 2`` times when ``N`` energy-critical paths
are requested (two slots are reserved for the always-on and failover sets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..exceptions import ConfigurationError
from ..optim.greente import greente_heuristic
from ..optim.pathmilp import PathMilpConfig, solve_path_milp
from ..optim.solution import EnergyAwareSolution
from ..power.model import PowerModel
from ..routing.ospf import ospf_invcap_routing
from ..routing.paths import RoutingTable
from ..topology.base import Topology
from ..traffic.matrix import Pair, TrafficMatrix
from .stress import DEFAULT_EXCLUDE_FRACTION, most_stressed_links, stress_factors

#: The on-demand computation methods accepted by :func:`compute_on_demand`.
ON_DEMAND_METHODS = ("stress", "peak", "heuristic", "ospf")


@dataclass
class OnDemandConfig:
    """Configuration of the on-demand path computation.

    Attributes:
        method: One of :data:`ON_DEMAND_METHODS`.
        num_tables: How many on-demand tables to produce (``N - 2`` in the
            paper's notation).
        stress_exclude_fraction: Fraction of most-stressed links each table
            avoids (scaled per table index for successive tables).
        k: Candidate paths per pair for solver-based methods.
        utilisation_limit: Safety margin on link capacities.
        epsilon_bps: ε demand for the demand-oblivious variants.
        time_limit_s: Solver time limit per table.
    """

    method: str = "stress"
    num_tables: int = 1
    stress_exclude_fraction: float = DEFAULT_EXCLUDE_FRACTION
    k: int = 3
    utilisation_limit: float = 1.0
    epsilon_bps: float = 1.0
    time_limit_s: Optional[float] = 60.0

    def __post_init__(self) -> None:
        if self.method not in ON_DEMAND_METHODS:
            raise ConfigurationError(
                f"unknown on-demand method {self.method!r}; expected one of {ON_DEMAND_METHODS}"
            )
        if self.num_tables < 1:
            raise ConfigurationError(f"num_tables must be >= 1, got {self.num_tables}")
        if not 0.0 <= self.stress_exclude_fraction <= 1.0:
            raise ConfigurationError(
                "stress_exclude_fraction must be in [0, 1], "
                f"got {self.stress_exclude_fraction}"
            )


def compute_on_demand(
    topology: Topology,
    power_model: PowerModel,
    always_on: EnergyAwareSolution,
    pairs: Optional[Iterable[Pair]] = None,
    peak_matrix: Optional[TrafficMatrix] = None,
    config: Optional[OnDemandConfig] = None,
) -> List[RoutingTable]:
    """Compute the on-demand routing tables.

    Args:
        topology: The physical topology.
        power_model: Power coefficients for the solver-based methods.
        always_on: The always-on solution; its elements are kept powered on
            ("a network element already in use stays switched on") and its
            routing defines the stress factors.
        pairs: Pairs to install; defaults to the always-on table's pairs.
        peak_matrix: Peak-hour matrix ``d_peak`` (required by ``"peak"``,
            used by ``"heuristic"`` when available).
        config: Tuning knobs; defaults to :class:`OnDemandConfig`.

    Returns:
        A list of ``config.num_tables`` routing tables.

    Raises:
        ConfigurationError: If ``method="peak"`` without a peak matrix or the
            always-on solution has no routing table.
    """
    cfg = config or OnDemandConfig()
    if always_on.routing is None:
        raise ConfigurationError("the always-on solution carries no routing table")
    selected: List[Pair] = (
        list(pairs) if pairs is not None else list(always_on.routing.pairs())
    )

    tables: List[RoutingTable] = []
    for table_index in range(cfg.num_tables):
        if cfg.method == "ospf":
            table = ospf_invcap_routing(topology, pairs=selected, name="on-demand-ospf")
        elif cfg.method == "heuristic":
            demands = (
                peak_matrix.restricted_to(selected)
                if peak_matrix is not None
                else TrafficMatrix.epsilon(selected, cfg.epsilon_bps)
            )
            solution = greente_heuristic(
                topology,
                power_model,
                demands,
                k=cfg.k + table_index,
                utilisation_limit=cfg.utilisation_limit,
                fixed_on_nodes=always_on.active_nodes,
                fixed_on_links=always_on.active_links,
                allow_overload=True,
            )
            table = RoutingTable(
                dict(solution.routing.items()), name=f"on-demand-heuristic-{table_index}"
            )
        elif cfg.method == "peak":
            if peak_matrix is None:
                raise ConfigurationError("method 'peak' requires a peak traffic matrix")
            solution = solve_path_milp(
                topology,
                power_model,
                peak_matrix.restricted_to(selected),
                config=PathMilpConfig(
                    k=cfg.k,
                    utilisation_limit=cfg.utilisation_limit,
                    time_limit_s=cfg.time_limit_s,
                ),
                fixed_on_nodes=always_on.active_nodes,
                fixed_on_links=always_on.active_links,
                solver_name=f"on-demand-peak-{table_index}",
            )
            table = solution.routing
        else:  # "stress"
            factors = stress_factors(topology, always_on.routing, pairs=selected)
            fraction = min(1.0, cfg.stress_exclude_fraction * (table_index + 1))
            forbidden = most_stressed_links(factors, fraction)
            demands = TrafficMatrix.epsilon(selected, cfg.epsilon_bps)
            solution = solve_path_milp(
                topology,
                power_model,
                demands,
                config=PathMilpConfig(
                    k=cfg.k,
                    utilisation_limit=cfg.utilisation_limit,
                    time_limit_s=cfg.time_limit_s,
                ),
                fixed_on_nodes=always_on.active_nodes,
                fixed_on_links=always_on.active_links,
                forbidden_links=forbidden,
                solver_name=f"on-demand-stress-{table_index}",
            )
            table = solution.routing
        tables.append(table)
    return tables
