"""REsPoNseTE: the simple, scalable online traffic-engineering component.

Section 4.4: "the intermediate routers periodically report the link
utilization, while the edge routers (called agents), based on the reported
information, shift the traffic in a way that preserves network performance
and simultaneously minimizes energy".  Agents

* aggregate traffic on the always-on paths as long as the target SLO
  (a link-utilisation threshold) is achieved,
* activate on-demand paths — waking their sleeping elements — when it is not,
* fall back to failover (or any other usable installed) paths when a link on
  the current path fails,
* only need utilisation information for the paths they originate, collected
  every ``T`` seconds where ``T`` defaults to the maximum network RTT.

Stability follows the TeXCP recipe the paper cites: decisions are made only
at probe epochs, shifts use hysteresis (a lower deactivation threshold), and
a flow moves at most once per probe period.

The probe-epoch aggregation is array-based: the controller works against a
planned per-arc load vector (a copy of the network's
:meth:`~repro.simulator.network.SimulatedNetwork.arc_load_vector`) and
evaluates path utilisations with NumPy gathers over each installed path's
precompiled arc indices.  All installed paths are compiled into the
network's arc table once, at :meth:`ResponseTEController.initialise` time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..routing.paths import Path
from ..simulator.flows import Flow
from ..simulator.network import SimulatedNetwork
from .plan import ResponsePlan


@dataclass
class TEConfig:
    """Tuning knobs of the online controller.

    Attributes:
        utilisation_threshold: SLO above which on-demand paths are activated.
        release_threshold: Hysteresis: traffic returns to the always-on path
            only when its utilisation falls below this value.
        probe_interval_s: Probe period ``T``; ``None`` uses the network's
            maximum RTT (the paper's default), floored at 1 ms so that
            degenerate topologies cannot produce a zero-length epoch.
        failure_detection_delay_s: Time before an agent learns that a link on
            one of its paths failed (detection plus propagation to sources).
        allow_failover_for_load: Whether load (not only failures) may spill
            onto the failover table.
        start_time_s: Simulation time at which REsPoNseTE starts operating
            (the Click experiment starts it at t = 5 s); before that the
            controller neither shifts traffic nor puts links to sleep.
        initial_table_index: Table the flows start on before the controller's
            first probe (0 = always-on; the Click experiment starts with
            traffic spread on the on-demand paths).
    """

    utilisation_threshold: float = 0.9
    release_threshold: float = 0.5
    probe_interval_s: Optional[float] = None
    failure_detection_delay_s: float = 0.1
    allow_failover_for_load: bool = False
    start_time_s: float = 0.0
    initial_table_index: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.utilisation_threshold <= 1.0:
            raise ConfigurationError(
                f"utilisation_threshold must be in (0, 1], got {self.utilisation_threshold}"
            )
        if not 0.0 <= self.release_threshold <= self.utilisation_threshold:
            raise ConfigurationError(
                "release_threshold must lie in [0, utilisation_threshold], "
                f"got {self.release_threshold}"
            )


class ResponseTEController:
    """The online TE controller driven by the simulation engine.

    Every step the controller (i) moves flows off failed paths once the
    detection delay has elapsed, (ii) completes deferred shifts whose target
    path finished waking, and — at probe epochs only — (iii) shifts flows
    between the always-on and on-demand tables against a planned per-arc
    load vector, so that flows shifted within one epoch see each other's
    moves (the TeXCP-style stability ingredient).  Finally it puts every
    link not needed by a current or pending path (nor by the always-on
    element set) to sleep.

    At :meth:`initialise` time every installed path of every table is
    compiled into the network's integer-indexed arc table, so the per-epoch
    utilisation checks are NumPy gathers rather than per-arc dict walks.
    """

    def __init__(self, plan: ResponsePlan, config: Optional[TEConfig] = None) -> None:
        self.plan = plan
        self.config = config or TEConfig()
        self._tables = plan.tables(include_failover=True)
        self._num_load_tables = len(
            plan.tables(include_failover=self.config.allow_failover_for_load)
        )
        self._assignment: Dict[str, int] = {}
        self._pending: Dict[str, Tuple[int, Path]] = {}
        self._failure_noticed_at: Dict[str, float] = {}
        self._next_probe_at = 0.0
        self._probe_interval = 0.0

    # ------------------------------------------------------------------ #
    # Controller interface
    # ------------------------------------------------------------------ #
    def initialise(self, network: SimulatedNetwork, flows: List[Flow], now_s: float) -> None:
        """Assign every flow to its always-on path and set the probe clock.

        Also compiles every installed path into the network's arc table
        (plan-installation time), so the simulation loop never pays the
        path-to-indices translation again.
        """
        for path in self.plan.iter_paths():
            network.compile_path(path)
        self._probe_interval = (
            self.config.probe_interval_s
            if self.config.probe_interval_s is not None
            else max(network.max_rtt(), 1e-3)
        )
        start = max(now_s, self.config.start_time_s)
        self._next_probe_at = start + (
            self._probe_interval if self.config.start_time_s > now_s else 0.0
        )
        for flow in flows:
            preferred = self.config.initial_table_index
            path = self._installed_path(flow, preferred)
            assigned_index = preferred
            if path is None:
                # Fall back to the first table that knows the pair.
                for table_index in range(len(self._tables)):
                    path = self._installed_path(flow, table_index)
                    if path is not None:
                        assigned_index = table_index
                        break
            flow.path = path
            self._assignment[flow.flow_id] = assigned_index
        if now_s + 1e-12 >= self.config.start_time_s:
            self._apply_sleep_policy(network, flows)

    def control(self, network: SimulatedNetwork, flows: List[Flow], now_s: float) -> None:
        """Per-step control hook: failure handling every step, load shifts at probes."""
        if now_s + 1e-12 < self.config.start_time_s:
            return
        self._handle_failures(network, flows, now_s)
        self._apply_pending(network, flows, now_s)
        if now_s + 1e-12 >= self._next_probe_at:
            self._probe_and_shift(network, flows, now_s)
            self._next_probe_at = now_s + self._probe_interval
        self._apply_sleep_policy(network, flows)

    # ------------------------------------------------------------------ #
    # Internal machinery
    # ------------------------------------------------------------------ #
    def _installed_path(self, flow: Flow, table_index: int) -> Optional[Path]:
        if table_index >= len(self._tables):
            return None
        return self._tables[table_index].get(flow.origin, flow.destination)

    def _usable_alternative(
        self, network: SimulatedNetwork, flow: Flow, exclude_index: int
    ) -> Optional[Tuple[int, Path]]:
        """First installed path (any table) that avoids failed links."""
        best_waking: Optional[Tuple[int, Path]] = None
        for table_index in range(len(self._tables)):
            if table_index == exclude_index:
                continue
            path = self._installed_path(flow, table_index)
            if path is None or network.path_has_failure(path):
                continue
            if network.path_is_usable(path):
                return table_index, path
            if best_waking is None:
                best_waking = (table_index, path)
        return best_waking

    def _handle_failures(
        self, network: SimulatedNetwork, flows: List[Flow], now_s: float
    ) -> None:
        delay = self.config.failure_detection_delay_s
        for flow in flows:
            if flow.path is None:
                continue
            if not network.path_has_failure(flow.path):
                self._failure_noticed_at.pop(flow.flow_id, None)
                continue
            noticed = self._failure_noticed_at.setdefault(flow.flow_id, now_s)
            if now_s - noticed + 1e-12 < delay:
                continue
            current_index = self._assignment.get(flow.flow_id, 0)
            alternative = self._usable_alternative(network, flow, current_index)
            if alternative is None:
                continue
            table_index, path = alternative
            network.request_wake(path.link_keys(), now_s)
            flow.path = path
            self._assignment[flow.flow_id] = table_index
            self._pending.pop(flow.flow_id, None)
            self._failure_noticed_at.pop(flow.flow_id, None)

    def _apply_pending(
        self, network: SimulatedNetwork, flows: List[Flow], now_s: float
    ) -> None:
        """Complete deferred shifts whose target path finished waking up."""
        by_id = {flow.flow_id: flow for flow in flows}
        for flow_id, (table_index, path) in list(self._pending.items()):
            if network.path_is_usable(path):
                flow = by_id.get(flow_id)
                if flow is not None:
                    flow.path = path
                    self._assignment[flow_id] = table_index
                del self._pending[flow_id]

    def _probe_and_shift(
        self, network: SimulatedNetwork, flows: List[Flow], now_s: float
    ) -> None:
        threshold = self.config.utilisation_threshold
        release = self.config.release_threshold

        # Work against a planned view of the arc loads so that several flows
        # shifted within the same probe epoch see each other's moves — this is
        # the stability ingredient (TeXCP-style) that prevents all flows of a
        # hot link from stampeding to the same on-demand path and back.
        planned = network.arc_load_vector().copy()
        capacities = network.arc_table.arc_capacity

        def planned_utilisation(path: Path, extra_demand: float = 0.0) -> float:
            indices = network.compile_path(path).arc_indices
            if indices.size == 0:
                return 0.0
            return float(
                ((planned[indices] + extra_demand) / capacities[indices]).max()
            )

        def move_load(path: Optional[Path], delta: float) -> None:
            if path is None:
                return
            indices = network.compile_path(path).arc_indices
            planned[indices] = np.maximum(0.0, planned[indices] + delta)

        for flow in flows:
            current_index = self._assignment.get(flow.flow_id, 0)
            always_on_path = self._installed_path(flow, 0)
            if always_on_path is None:
                continue
            demand = flow.offered_load(now_s)
            current_path = flow.path or always_on_path
            utilisation = planned_utilisation(current_path)
            starved = demand > 0 and flow.rate_bps < demand * 0.999

            if current_index == 0:
                if utilisation > threshold or (starved and utilisation >= threshold * 0.999):
                    moved_to = self._activate_on_demand(network, flow, now_s, planned_utilisation)
                    if moved_to is not None:
                        move_load(current_path, -min(demand, flow.rate_bps or demand))
                        move_load(moved_to, +demand)
            else:
                if network.path_has_failure(always_on_path):
                    continue
                # Consider releasing the on-demand path: would the always-on
                # path absorb this flow without violating the SLO?
                fits_back = (
                    planned_utilisation(always_on_path, extra_demand=demand)
                    <= release + 1e-9
                )
                if fits_back and network.path_is_usable(always_on_path):
                    move_load(flow.path, -flow.rate_bps)
                    move_load(always_on_path, +demand)
                    flow.path = always_on_path
                    self._assignment[flow.flow_id] = 0
                    self._pending.pop(flow.flow_id, None)
                elif starved and flow.flow_id not in self._pending:
                    # The current on-demand path cannot serve the demand;
                    # move to the least-loaded usable installed path instead.
                    best = self._least_loaded_path(network, flow, planned_utilisation, demand)
                    if best is not None:
                        best_index, best_path = best
                        if best_path is not flow.path:
                            move_load(flow.path, -flow.rate_bps)
                            move_load(best_path, +demand)
                            if network.path_is_usable(best_path):
                                flow.path = best_path
                                self._assignment[flow.flow_id] = best_index
                            else:
                                network.request_wake(best_path.link_keys(), now_s)
                                self._pending[flow.flow_id] = (best_index, best_path)

    def _activate_on_demand(
        self,
        network: SimulatedNetwork,
        flow: Flow,
        now_s: float,
        planned_utilisation,
    ) -> Optional[Path]:
        """Pick the least-loaded usable on-demand path; wake it if asleep.

        Returns the path the flow was assigned or scheduled to move to, or
        ``None`` when no on-demand alternative exists.
        """
        demand = flow.offered_load(now_s)
        candidates: List[Tuple[float, int, Path]] = []
        for table_index in range(1, self._num_load_tables):
            path = self._installed_path(flow, table_index)
            if path is None or network.path_has_failure(path):
                continue
            candidates.append((planned_utilisation(path, demand), table_index, path))
        if not candidates:
            return None
        candidates.sort(key=lambda entry: entry[0])
        _utilisation, table_index, path = candidates[0]
        if network.path_is_usable(path):
            flow.path = path
            self._assignment[flow.flow_id] = table_index
            return path
        network.request_wake(path.link_keys(), now_s)
        self._pending[flow.flow_id] = (table_index, path)
        return path

    def _least_loaded_path(
        self,
        network: SimulatedNetwork,
        flow: Flow,
        planned_utilisation,
        demand: float,
    ) -> Optional[Tuple[int, Path]]:
        """The installed path with the lowest planned utilisation after adding the flow."""
        candidates: List[Tuple[float, int, Path]] = []
        for table_index in range(self._num_load_tables):
            path = self._installed_path(flow, table_index)
            if path is None or network.path_has_failure(path):
                continue
            candidates.append((planned_utilisation(path, demand), table_index, path))
        if not candidates:
            return None
        candidates.sort(key=lambda entry: entry[0])
        _utilisation, table_index, path = candidates[0]
        return table_index, path

    def _apply_sleep_policy(self, network: SimulatedNetwork, flows: List[Flow]) -> None:
        """Let every link not needed by current paths or the always-on set sleep."""
        keep: Set[Tuple[str, str]] = set()
        _nodes, always_on_links = self.plan.always_on_elements()
        keep.update(always_on_links)
        for flow in flows:
            if flow.path is not None:
                keep.update(flow.path.link_keys())
        for _flow_id, (_index, path) in self._pending.items():
            keep.update(path.link_keys())
        network.sleep_idle_links(keep)

    # ------------------------------------------------------------------ #
    # Introspection helpers (used by tests and experiments)
    # ------------------------------------------------------------------ #
    def table_index_of(self, flow: Flow) -> int:
        """Which table the flow is currently using (0 = always-on)."""
        return self._assignment.get(flow.flow_id, 0)

    @property
    def probe_interval_s(self) -> float:
        """The probe period in effect after initialisation."""
        return self._probe_interval
