"""The REsPoNse plan: the precomputed path sets installed into the network."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..exceptions import ConfigurationError
from ..optim.solution import EnergyAwareSolution
from ..routing.paths import Path, RoutingTable
from ..traffic.matrix import Pair


@dataclass
class ResponsePlan:
    """The three path sets REsPoNse installs into network elements.

    Attributes:
        always_on: Solution of the always-on computation (routing plus the
            set of elements that stay powered at all times).
        on_demand: One or more on-demand routing tables, activated in order
            when the always-on paths can no longer meet the utilisation SLO.
        failover: The failover table protecting against single link failures.
        topology_name: Name of the topology the plan was computed for.
        variant: Human-readable variant label (``"response"``,
            ``"response-lat"``, ``"response-ospf"``, ``"response-heuristic"``).
    """

    always_on: EnergyAwareSolution
    on_demand: List[RoutingTable]
    failover: Optional[RoutingTable]
    topology_name: str = ""
    variant: str = "response"

    def __post_init__(self) -> None:
        if self.always_on.routing is None:
            raise ConfigurationError("a ResponsePlan needs an always-on routing table")

    @classmethod
    def from_tables(
        cls,
        topology,
        power_model,
        always_on_table: RoutingTable,
        on_demand_tables: Sequence[RoutingTable],
        failover_table: Optional[RoutingTable] = None,
        variant: str = "response",
    ) -> "ResponsePlan":
        """Build a plan from explicitly given routing tables.

        Useful when the paths are known a priori (the paper's Figure 3
        example) or produced by an external tool.  The always-on element set
        is derived from the always-on table.
        """
        from ..optim.solution import EnergyAwareSolution, solution_power

        active_nodes = set(always_on_table.used_nodes())
        active_links = set(always_on_table.used_links())
        always_on = EnergyAwareSolution(
            active_nodes=active_nodes,
            active_links=active_links,
            routing=always_on_table,
            power_w=solution_power(topology, power_model, active_nodes, active_links),
            objective_w=0.0,
            optimal=False,
            solver="explicit-tables",
        )
        return cls(
            always_on=always_on,
            on_demand=list(on_demand_tables),
            failover=failover_table,
            topology_name=topology.name,
            variant=variant,
        )

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def always_on_table(self) -> RoutingTable:
        """The always-on routing table."""
        assert self.always_on.routing is not None  # guaranteed by __post_init__
        return self.always_on.routing

    def tables(self, include_failover: bool = True) -> List[RoutingTable]:
        """All routing tables in activation order (always-on first)."""
        ordered = [self.always_on_table, *self.on_demand]
        if include_failover and self.failover is not None:
            ordered.append(self.failover)
        return ordered

    @property
    def num_paths(self) -> int:
        """Number of precomputed paths per pair (the paper's N)."""
        return len(self.tables(include_failover=True))

    def pairs(self) -> List[Pair]:
        """Pairs covered by the always-on table."""
        return self.always_on_table.pairs()

    def paths_for(self, origin: str, destination: str) -> List[Path]:
        """All distinct installed paths for a pair, in activation order."""
        paths: List[Path] = []
        for table in self.tables(include_failover=True):
            path = table.get(origin, destination)
            if path is not None and path not in paths:
                paths.append(path)
        return paths

    def iter_paths(self):
        """Iterate over every installed path of every table (with repeats).

        Used by the TE controller to compile the whole plan into a
        network's arc table at installation time.
        """
        for table in self.tables(include_failover=True):
            for _pair, path in table.items():
                yield path

    def always_on_elements(self) -> Tuple[Set[str], Set[Tuple[str, str]]]:
        """Nodes and links that stay powered regardless of demand."""
        return set(self.always_on.active_nodes), set(self.always_on.active_links)

    def table_count_per_pair(self) -> Dict[Pair, int]:
        """Number of distinct installed paths per pair.

        Useful for checking the deployment constraint discussed in Section
        4.5 (modern routers supported about 600 MPLS tunnels in 2005).
        """
        return {
            (origin, destination): len(self.paths_for(origin, destination))
            for origin, destination in self.pairs()
        }

    def summary(self) -> Dict[str, object]:
        """Compact description used by reports and experiment logs."""
        return {
            "variant": self.variant,
            "topology": self.topology_name,
            "pairs": len(self.pairs()),
            "num_on_demand_tables": len(self.on_demand),
            "has_failover": self.failover is not None,
            "always_on_nodes": len(self.always_on.active_nodes),
            "always_on_links": len(self.always_on.active_links),
        }
