"""Stress factor of links (Section 4.2).

"We define the stress factor ``sf_{i->j}`` of a link as the ratio between the
number of flows routed via that link in the always-on assignments and the
link capacity ... Intuitively, this metric captures how likely it is that a
link might be a bottleneck."  On-demand paths are then computed while
avoiding a fraction (20 % by default) of the most stressed links, which is
the paper's demand-oblivious way of discovering useful extra capacity.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from ..exceptions import ConfigurationError
from ..routing.paths import RoutingTable
from ..topology.base import Topology
from ..traffic.matrix import Pair

#: Fraction of most-stressed links excluded by default (the paper's 20 %).
DEFAULT_EXCLUDE_FRACTION = 0.20

LinkKey = Tuple[str, str]


def stress_factors(
    topology: Topology,
    always_on_routing: RoutingTable,
    pairs: Optional[Iterable[Pair]] = None,
) -> Dict[LinkKey, float]:
    """Stress factor per undirected link under the always-on assignment.

    The factor counts how many installed flows traverse the link (in either
    direction) divided by the link capacity, expressed per Gb/s so the values
    are readable.  Only relative order matters to the framework.
    """
    flow_count: Dict[LinkKey, int] = {key: 0 for key in topology.link_keys()}
    selected = list(pairs) if pairs is not None else always_on_routing.pairs()
    for pair in selected:
        path = always_on_routing.get(*pair)
        if path is None:
            continue
        for key in path.link_keys():
            if key in flow_count:
                flow_count[key] += 1
    factors: Dict[LinkKey, float] = {}
    for key, count in flow_count.items():
        capacity = topology.link(*key).capacity_bps
        factors[key] = count / (capacity / 1e9)
    return factors


def most_stressed_links(
    factors: Dict[LinkKey, float],
    exclude_fraction: float = DEFAULT_EXCLUDE_FRACTION,
) -> Set[LinkKey]:
    """The most-stressed *exclude_fraction* of links (only ones carrying flows).

    Args:
        factors: Output of :func:`stress_factors`.
        exclude_fraction: Fraction of the network's links to exclude,
            in ``[0, 1]``.

    Raises:
        ConfigurationError: If the fraction is outside ``[0, 1]``.
    """
    if not 0.0 <= exclude_fraction <= 1.0:
        raise ConfigurationError(
            f"exclude_fraction must be in [0, 1], got {exclude_fraction}"
        )
    loaded = [(key, value) for key, value in factors.items() if value > 0.0]
    if not loaded or exclude_fraction == 0.0:
        return set()
    count = int(round(exclude_fraction * len(factors)))
    count = min(count, len(loaded))
    ranked = sorted(loaded, key=lambda item: item[1], reverse=True)
    return {key for key, _ in ranked[:count]}


def stressed_links_for_routing(
    topology: Topology,
    always_on_routing: RoutingTable,
    exclude_fraction: float = DEFAULT_EXCLUDE_FRACTION,
    pairs: Optional[Iterable[Pair]] = None,
) -> Set[LinkKey]:
    """Convenience wrapper combining the two steps above."""
    factors = stress_factors(topology, always_on_routing, pairs=pairs)
    return most_stressed_links(factors, exclude_fraction)
