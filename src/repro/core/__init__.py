"""The paper's primary contribution: the REsPoNse framework.

Off-line path computation (always-on, on-demand, failover), energy-critical
path identification, the trace-replay activation planner and the REsPoNseTE
online controller.
"""

from .always_on import AlwaysOnConfig, compute_always_on
from .critical_paths import (
    RankedPath,
    coverage_curve,
    paths_needed_for_coverage,
    rank_paths_by_traffic,
    routing_tables_from_critical_paths,
    select_energy_critical_paths,
)
from .failover import compute_failover, survives_single_failure, vulnerable_pairs
from .on_demand import ON_DEMAND_METHODS, OnDemandConfig, compute_on_demand
from .plan import ResponsePlan
from .planner import (
    DEFAULT_UTILISATION_THRESHOLD,
    ActivationResult,
    activate_paths,
    replay_trace,
)
from .response import RESPONSE_VARIANTS, ResponseConfig, build_response_plan
from .stress import (
    DEFAULT_EXCLUDE_FRACTION,
    most_stressed_links,
    stress_factors,
    stressed_links_for_routing,
)
from .te import ResponseTEController, TEConfig

__all__ = [
    "AlwaysOnConfig",
    "compute_always_on",
    "RankedPath",
    "coverage_curve",
    "paths_needed_for_coverage",
    "rank_paths_by_traffic",
    "routing_tables_from_critical_paths",
    "select_energy_critical_paths",
    "compute_failover",
    "survives_single_failure",
    "vulnerable_pairs",
    "ON_DEMAND_METHODS",
    "OnDemandConfig",
    "compute_on_demand",
    "ResponsePlan",
    "DEFAULT_UTILISATION_THRESHOLD",
    "ActivationResult",
    "activate_paths",
    "replay_trace",
    "RESPONSE_VARIANTS",
    "ResponseConfig",
    "build_response_plan",
    "DEFAULT_EXCLUDE_FRACTION",
    "most_stressed_links",
    "stress_factors",
    "stressed_links_for_routing",
    "ResponseTEController",
    "TEConfig",
]
