"""Offline path activation: which installed paths carry a given demand.

Trace-replay experiments (Figures 4, 5, 6 of the paper) need, for every
traffic matrix of a trace, the network state REsPoNseTE would converge to:
traffic aggregated onto the always-on paths while the utilisation SLO holds,
on-demand paths (and their elements) activated only for the pairs that need
them.  :func:`activate_paths` computes exactly that steady state without
simulating the control loop (the control loop itself lives in
:mod:`repro.core.te` and runs on the flow-level simulator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..exceptions import ConfigurationError
from ..power.accounting import full_power, network_power
from ..power.model import PowerModel
from ..routing.paths import Path
from ..topology.base import Topology
from ..traffic.matrix import Pair, TrafficMatrix
from .plan import ResponsePlan

#: Default utilisation threshold at which on-demand paths start activating.
DEFAULT_UTILISATION_THRESHOLD = 0.9


@dataclass
class ActivationResult:
    """Steady-state outcome of placing one traffic matrix on a plan.

    Attributes:
        assignment: Chosen table index per pair (0 = always-on, then the
            on-demand tables in order, then failover if allowed).
        active_nodes: Powered-on nodes (always-on elements plus elements of
            activated on-demand paths).
        active_links: Active undirected links.
        power_w: Power of the active subset.
        power_percent: Power as a percentage of the fully-powered network.
        max_utilisation: Largest arc utilisation of the placement.
        overloaded_pairs: Pairs whose demand could not be placed within the
            utilisation threshold on any installed path (they are placed on
            their least-loaded path instead).
    """

    assignment: Dict[Pair, int]
    active_nodes: Set[str]
    active_links: Set[Tuple[str, str]]
    power_w: float
    power_percent: float
    max_utilisation: float
    overloaded_pairs: List[Pair] = field(default_factory=list)

    @property
    def num_on_demand_pairs(self) -> int:
        """Number of pairs routed over a non-always-on path."""
        return sum(1 for index in self.assignment.values() if index > 0)

    def energy_savings_percent(self) -> float:
        """Savings relative to the fully powered network."""
        return 100.0 - self.power_percent


def activate_paths(
    topology: Topology,
    power_model: PowerModel,
    plan: ResponsePlan,
    demands: TrafficMatrix,
    utilisation_threshold: float = DEFAULT_UTILISATION_THRESHOLD,
    include_failover: bool = False,
    failed_links: Optional[Set[Tuple[str, str]]] = None,
) -> ActivationResult:
    """Place a traffic matrix on the plan's installed paths.

    Pairs are placed in descending order of demand.  Each pair uses the first
    installed path (always-on first, then the on-demand tables in order, then
    optionally failover) whose arcs all stay below the utilisation threshold
    after adding the pair's demand; if no installed path fits, the pair is
    placed on the installed path with the most residual bottleneck capacity
    and recorded in ``overloaded_pairs``.

    Args:
        topology: The physical topology.
        power_model: Power model for the resulting active subset.
        plan: The REsPoNse plan.
        demands: The traffic matrix to place.
        utilisation_threshold: The ISP's link-utilisation SLO (the paper's
            threshold that triggers on-demand activation).
        include_failover: Allow traffic on failover paths even without
            failures (normally only used when a failure is present).
        failed_links: Undirected links currently failed; installed paths
            crossing them are unusable.

    Returns:
        The :class:`ActivationResult` describing the converged network state.
    """
    if not 0.0 < utilisation_threshold <= 1.0:
        raise ConfigurationError(
            f"utilisation_threshold must be in (0, 1], got {utilisation_threshold}"
        )
    tables = plan.tables(include_failover=include_failover)
    failed = failed_links or set()

    loads: Dict[Tuple[str, str], float] = {key: 0.0 for key in topology.arc_keys()}
    assignment: Dict[Pair, int] = {}
    overloaded: List[Pair] = []

    def usable(path: Path) -> bool:
        return not any(key in failed for key in path.link_keys())

    def fits(path: Path, demand: float) -> bool:
        for src, dst in path.arc_keys():
            capacity = topology.arc(src, dst).capacity_bps
            if loads[(src, dst)] + demand > capacity * utilisation_threshold + 1e-9:
                return False
        return True

    def add_load(path: Path, demand: float) -> None:
        for arc_key in path.arc_keys():
            loads[arc_key] += demand

    ordered_pairs = sorted(
        (pair for pair in demands.pairs() if demands[pair] > 0.0),
        key=lambda pair: demands[pair],
        reverse=True,
    )
    for pair in ordered_pairs:
        demand = demands[pair]
        candidates: List[Tuple[int, Path]] = []
        for table_index, table in enumerate(tables):
            path = table.get(*pair)
            if path is not None and usable(path):
                candidates.append((table_index, path))
        if not candidates:
            overloaded.append(pair)
            continue
        placed = False
        for table_index, path in candidates:
            if fits(path, demand):
                assignment[pair] = table_index
                add_load(path, demand)
                placed = True
                break
        if not placed:
            # No installed path respects the SLO: fall back to the path with
            # the most remaining bottleneck capacity (congestion, not loss of
            # connectivity — matching the paper's "no worse than existing
            # approaches under unexpected peaks").
            def residual(entry: Tuple[int, Path]) -> float:
                _, path = entry
                return min(
                    topology.arc(src, dst).capacity_bps - loads[(src, dst)]
                    for src, dst in path.arc_keys()
                )

            table_index, path = max(candidates, key=residual)
            assignment[pair] = table_index
            add_load(path, demand)
            overloaded.append(pair)

    # Elements kept active: the always-on elements are on by definition;
    # elements of on-demand/failover paths are only awake for pairs that use
    # them.
    active_nodes, active_links = plan.always_on_elements()
    active_nodes = set(active_nodes)
    active_links = set(active_links)
    for pair, table_index in assignment.items():
        if table_index == 0:
            continue
        path = tables[table_index].get(*pair)
        if path is None:
            continue
        active_nodes.update(path.nodes)
        active_links.update(path.link_keys())
    active_links -= failed

    breakdown = network_power(topology, power_model, active_nodes, active_links)
    baseline = full_power(topology, power_model).total_w
    max_utilisation = 0.0
    for (src, dst), load in loads.items():
        if load <= 0.0:
            continue
        utilisation = load / topology.arc(src, dst).capacity_bps
        max_utilisation = max(max_utilisation, utilisation)

    return ActivationResult(
        assignment=assignment,
        active_nodes=active_nodes,
        active_links=active_links,
        power_w=breakdown.total_w,
        power_percent=100.0 * breakdown.total_w / baseline if baseline > 0 else 0.0,
        max_utilisation=max_utilisation,
        overloaded_pairs=overloaded,
    )


def replay_trace(
    topology: Topology,
    power_model: PowerModel,
    plan: ResponsePlan,
    matrices: List[TrafficMatrix],
    utilisation_threshold: float = DEFAULT_UTILISATION_THRESHOLD,
) -> List[ActivationResult]:
    """Activate the plan for every matrix of a trace (Figure 5-style replay)."""
    return [
        activate_paths(
            topology,
            power_model,
            plan,
            matrix,
            utilisation_threshold=utilisation_threshold,
        )
        for matrix in matrices
    ]
