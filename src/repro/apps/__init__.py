"""Application workloads run over REsPoNse-chosen paths (Section 5.4)."""

from .streaming import (
    DEFAULT_STREAM_RATE_BPS,
    StreamingConfig,
    StreamingResult,
    pick_client_nodes,
    run_streaming_workload,
)
from .web import WebConfig, WebResult, run_web_workload, specweb_file_sizes

__all__ = [
    "DEFAULT_STREAM_RATE_BPS",
    "StreamingConfig",
    "StreamingResult",
    "pick_client_nodes",
    "run_streaming_workload",
    "WebConfig",
    "WebResult",
    "run_web_workload",
    "specweb_file_sizes",
]
