"""Media-streaming workload (BulletMedia-style, Section 5.4 / Figure 9).

The paper streams a 600 kb/s file to 50 participants over REsPoNse-lat paths
in a ModelNet emulation of Abovenet, then doubles the client population so
that the on-demand paths must be activated, and measures (a) the percentage
of clients that can play the video (blocks arrive before their play
deadlines) and (b) the average block retrieval latency.

The reproduction models each client as a long-lived flow from the streaming
source; achieved rates follow from proportional sharing of bottleneck links
under the supplied routing, and block retrieval latency combines propagation
delay with the serialisation time of a block at the achieved rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..routing.paths import RoutingTable
from ..topology.base import Topology
from ..traffic.matrix import TrafficMatrix
from ..units import kbps

#: Stream rate used in the paper's experiment.
DEFAULT_STREAM_RATE_BPS = kbps(600)


@dataclass
class StreamingConfig:
    """Parameters of the streaming workload.

    Attributes:
        stream_rate_bps: Media bit rate each client must sustain.
        block_duration_s: Playback duration of one media block.
        startup_buffer_s: Client-side buffer before playback starts; a client
            can absorb block latencies up to ``block_duration_s +
            startup_buffer_s`` without stalling.
        playable_rate_fraction: Minimum fraction of the stream rate a client
            must achieve to keep up in steady state.
        max_fetch_rate_multiple: Clients fetch blocks at most this multiple of
            the stream rate (streaming players pace their downloads), which
            keeps block-latency comparisons from being dominated by idle
            capacity differences between routings.
    """

    stream_rate_bps: float = DEFAULT_STREAM_RATE_BPS
    block_duration_s: float = 2.0
    startup_buffer_s: float = 5.0
    playable_rate_fraction: float = 0.98
    max_fetch_rate_multiple: float = 1.5


@dataclass
class StreamingResult:
    """Outcome of a streaming run.

    Attributes:
        per_client_delivery_percent: Percentage of the stream each client can
            play (100 when it keeps up; lower when its share of a bottleneck
            is insufficient) — the quantity whose boxplot is Figure 9.
        playable_client_fraction: Fraction of clients that can play the video.
        mean_block_latency_s: Average block retrieval latency across clients.
        per_client_block_latency_s: Block retrieval latency per client.
    """

    per_client_delivery_percent: Dict[str, float]
    playable_client_fraction: float
    mean_block_latency_s: float
    per_client_block_latency_s: Dict[str, float]

    def delivery_percent_summary(self) -> Tuple[float, float, float]:
        """(min, median, max) of the per-client delivery percentage."""
        values = np.array(list(self.per_client_delivery_percent.values()))
        if values.size == 0:
            return (0.0, 0.0, 0.0)
        return float(values.min()), float(np.median(values)), float(values.max())


def run_streaming_workload(
    topology: Topology,
    routing: RoutingTable,
    source: str,
    clients: Sequence[str],
    config: Optional[StreamingConfig] = None,
) -> StreamingResult:
    """Run the streaming workload over a fixed routing.

    Args:
        topology: The emulated topology.
        routing: Paths in effect (e.g. the activation planner's choice of
            REsPoNse paths, or the OSPF-InvCap baseline).
        source: The streaming source node.
        clients: Client nodes (one stream per entry; repeat a node to attach
            several clients to it).
        config: Workload parameters.

    Returns:
        The :class:`StreamingResult` for this routing.

    Raises:
        ConfigurationError: If a client has no path from the source.
    """
    cfg = config or StreamingConfig()
    if not clients:
        raise ConfigurationError("the streaming workload needs at least one client")

    # Demands: one stream per client instance.  Clients co-located on a node
    # multiply that pair's demand.
    demand_per_pair: Dict[Tuple[str, str], float] = {}
    client_ids: List[Tuple[str, str]] = []  # (client_id, node)
    for position, node in enumerate(clients):
        if node == source:
            raise ConfigurationError("clients must not be co-located with the source")
        client_ids.append((f"client-{position}", node))
        pair = (source, node)
        demand_per_pair[pair] = demand_per_pair.get(pair, 0.0) + cfg.stream_rate_bps
    demands = TrafficMatrix(demand_per_pair, name="streaming")

    missing = [pair for pair in demands.pairs() if routing.get(*pair) is None]
    if missing:
        raise ConfigurationError(f"routing has no path for pair {missing[0]}")

    # Number of concurrent streams crossing every arc (for the per-stream
    # fair-share bandwidth each client can pull blocks at).
    streams_per_arc: Dict[Tuple[str, str], int] = {key: 0 for key in topology.arc_keys()}
    for _client_id, node in client_ids:
        for arc in routing.path(source, node).arc_keys():
            streams_per_arc[arc] += 1

    delivery: Dict[str, float] = {}
    latency: Dict[str, float] = {}
    block_bits = cfg.stream_rate_bps * cfg.block_duration_s
    for client_id, node in client_ids:
        path = routing.path(source, node)
        # Fair-share bandwidth: the client's equal share of every arc it
        # crosses; the stream keeps up as long as the share covers its rate.
        bandwidth = min(
            topology.arc(src, dst).capacity_bps / max(streams_per_arc[(src, dst)], 1)
            for src, dst in path.arc_keys()
        )
        achieved = min(cfg.stream_rate_bps, bandwidth)
        share = achieved / cfg.stream_rate_bps
        propagation = path.latency(topology)
        fetch_rate = min(bandwidth, cfg.stream_rate_bps * cfg.max_fetch_rate_multiple)
        block_latency = propagation + block_bits / max(fetch_rate, 1.0)
        deadline = cfg.block_duration_s + cfg.startup_buffer_s
        keeps_up = achieved >= cfg.playable_rate_fraction * cfg.stream_rate_bps
        in_time = block_latency <= deadline
        delivery[client_id] = 100.0 if keeps_up and in_time else 100.0 * min(1.0, share)
        latency[client_id] = block_latency

    playable = sum(
        1
        for value in delivery.values()
        if value >= cfg.playable_rate_fraction * 100.0
    )
    return StreamingResult(
        per_client_delivery_percent=delivery,
        playable_client_fraction=playable / len(delivery),
        mean_block_latency_s=float(np.mean(list(latency.values()))),
        per_client_block_latency_s=latency,
    )


def pick_client_nodes(
    topology: Topology,
    source: str,
    num_clients: int,
    seed: Optional[int] = None,
) -> List[str]:
    """Choose client attachment nodes uniformly at random (excluding the source)."""
    rng = np.random.default_rng(seed)
    candidates = [node for node in topology.routers() if node != source]
    if not candidates:
        raise ConfigurationError("topology has no candidate client nodes")
    indices = rng.integers(0, len(candidates), size=num_clients)
    return [candidates[int(index)] for index in indices]
