"""Web workload (SPECweb2005-style, Section 5.4).

"One of the stub nodes is running the Apache Web server, while the remaining
four stub nodes are using httperf.  The Web workload ... consists of 100
static files with the file size drawn at random to follow the online banking
file distribution from the SPECweb2005 benchmark.  The web retrieval latency
increases by only 9 % when we switch from OSPF-InvCap to REsPoNse."

The reproduction models each retrieval as one round trip (request) plus the
transfer time of the file at the client's bottleneck share, plus a small
constant server service time.  The SPECweb2005 banking mix is dominated by
small dynamic-looking pages and images (a few KB to a few tens of KB) with a
thin tail of larger objects; a lognormal fit captures that shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..routing.paths import RoutingTable, link_loads
from ..topology.base import Topology
from ..traffic.matrix import TrafficMatrix

#: Lognormal parameters of the synthetic SPECweb-banking file-size mix (bytes).
BANKING_LOGNORMAL_MEAN = 9.6   # exp(9.6) ~ 15 KB median
BANKING_LOGNORMAL_SIGMA = 1.0
BANKING_MAX_FILE_BYTES = 2_000_000


@dataclass
class WebConfig:
    """Parameters of the web workload.

    Attributes:
        num_files: Number of distinct static files on the server.
        requests_per_client: Retrievals issued by every client node.
        server_time_s: Constant per-request server processing time.
        concurrency: Simultaneous requests per client used to estimate the
            per-request bandwidth share.
        seed: Seed of the file-size and request generators.
    """

    num_files: int = 100
    requests_per_client: int = 200
    server_time_s: float = 0.002
    concurrency: int = 4
    seed: int = 2005


@dataclass
class WebResult:
    """Latency statistics of one web-workload run."""

    mean_latency_s: float
    median_latency_s: float
    p95_latency_s: float
    per_request_latency_s: List[float]

    def mean_latency_increase_percent(self, reference: "WebResult") -> float:
        """Mean latency increase relative to a reference run, in percent."""
        if reference.mean_latency_s <= 0:
            return 0.0
        return 100.0 * (self.mean_latency_s / reference.mean_latency_s - 1.0)


def specweb_file_sizes(num_files: int, seed: int) -> np.ndarray:
    """File sizes (bytes) following the synthetic SPECweb banking mix."""
    if num_files <= 0:
        raise ConfigurationError(f"num_files must be positive, got {num_files}")
    rng = np.random.default_rng(seed)
    sizes = rng.lognormal(BANKING_LOGNORMAL_MEAN, BANKING_LOGNORMAL_SIGMA, size=num_files)
    return np.clip(sizes, 500, BANKING_MAX_FILE_BYTES)


def run_web_workload(
    topology: Topology,
    routing: RoutingTable,
    server: str,
    client_nodes: Sequence[str],
    config: Optional[WebConfig] = None,
    background_demands: Optional[TrafficMatrix] = None,
) -> WebResult:
    """Run the web workload over a fixed routing.

    Args:
        topology: The emulated topology.
        routing: Paths in effect for the server-to-client traffic.
        server: Node hosting the web server.
        client_nodes: Stub nodes issuing requests (the paper uses four).
        config: Workload parameters.
        background_demands: Optional background traffic whose load shares the
            links with the web transfers.

    Returns:
        A :class:`WebResult` with per-request latencies.
    """
    cfg = config or WebConfig()
    if not client_nodes:
        raise ConfigurationError("the web workload needs at least one client node")
    sizes = specweb_file_sizes(cfg.num_files, cfg.seed)
    rng = np.random.default_rng(cfg.seed + 1)

    background_loads: Dict[Tuple[str, str], float] = {
        key: 0.0 for key in topology.arc_keys()
    }
    if background_demands is not None:
        background_loads = link_loads(topology, routing, background_demands)

    latencies: List[float] = []
    for client in client_nodes:
        if client == server:
            raise ConfigurationError("clients must not be co-located with the server")
        path = routing.get(server, client)
        reverse = routing.get(client, server)
        if path is None or reverse is None:
            raise ConfigurationError(f"routing has no path between {server} and {client}")
        forward_latency = path.latency(topology)
        request_latency = reverse.latency(topology)

        # Available bandwidth: the bottleneck residual capacity divided by the
        # client's concurrent requests.
        residual = min(
            max(
                topology.arc(src, dst).capacity_bps - background_loads[(src, dst)],
                topology.arc(src, dst).capacity_bps * 0.01,
            )
            for src, dst in path.arc_keys()
        )
        per_request_bandwidth = residual / max(cfg.concurrency, 1)

        chosen = rng.integers(0, cfg.num_files, size=cfg.requests_per_client)
        for index in chosen:
            size_bits = float(sizes[index]) * 8.0
            transfer = size_bits / per_request_bandwidth
            latencies.append(
                request_latency + cfg.server_time_s + forward_latency + transfer
            )

    array = np.array(latencies)
    return WebResult(
        mean_latency_s=float(array.mean()),
        median_latency_s=float(np.median(array)),
        p95_latency_s=float(np.percentile(array, 95)),
        per_request_latency_s=latencies,
    )
