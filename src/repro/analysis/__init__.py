"""Trace analyses and evaluation metrics (Section 3 and Section 5 support)."""

from .deviation import change_ccdf, fraction_changing_at_least, median_change
from .dominance import DominanceResult, configuration_dominance
from .metrics import (
    LatencyStretch,
    hop_count_distribution,
    latency_stretch,
    percentile_summary,
    power_percent_of_original,
    savings_percent,
)
from .recomputation import (
    RecomputationSeries,
    configuration_changes,
    recomputation_rate,
)

__all__ = [
    "change_ccdf",
    "fraction_changing_at_least",
    "median_change",
    "DominanceResult",
    "configuration_dominance",
    "LatencyStretch",
    "hop_count_distribution",
    "latency_stretch",
    "percentile_summary",
    "power_percent_of_original",
    "savings_percent",
    "RecomputationSeries",
    "configuration_changes",
    "recomputation_rate",
]
