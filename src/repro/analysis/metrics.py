"""Cross-cutting evaluation metrics: power, savings, latency stretch."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..power.accounting import full_power, network_power
from ..power.model import PowerModel
from ..routing.paths import RoutingTable
from ..topology.base import Topology
from ..traffic.matrix import Pair


def power_percent_of_original(
    topology: Topology,
    power_model: PowerModel,
    active_nodes: Iterable[str],
    active_links: Iterable[Tuple[str, str]],
) -> float:
    """Power of an active subset as a percentage of the fully-on network."""
    baseline = full_power(topology, power_model).total_w
    if baseline <= 0:
        return 0.0
    subset = network_power(topology, power_model, active_nodes, active_links).total_w
    return 100.0 * subset / baseline


def savings_percent(power_percent: float) -> float:
    """Energy savings implied by a power percentage."""
    return 100.0 - power_percent


@dataclass(frozen=True)
class LatencyStretch:
    """Propagation-delay comparison between two routings.

    Attributes:
        mean_stretch: Mean of per-pair ``candidate_delay / reference_delay``.
        max_stretch: Worst-case per-pair ratio.
        mean_increase_percent: Mean delay increase in percent.
    """

    mean_stretch: float
    max_stretch: float
    mean_increase_percent: float


def latency_stretch(
    topology: Topology,
    candidate: RoutingTable,
    reference: RoutingTable,
    pairs: Optional[Sequence[Pair]] = None,
) -> LatencyStretch:
    """Compare the propagation delay of two routings pair by pair.

    Pairs missing from either table are skipped.  Reference delays of zero
    (adjacent nodes with negligible latency) are skipped as well to keep the
    ratios meaningful.
    """
    selected = list(pairs) if pairs is not None else candidate.pairs()
    ratios: List[float] = []
    for pair in selected:
        candidate_path = candidate.get(*pair)
        reference_path = reference.get(*pair)
        if candidate_path is None or reference_path is None:
            continue
        reference_delay = reference_path.latency(topology)
        if reference_delay <= 0:
            continue
        ratios.append(candidate_path.latency(topology) / reference_delay)
    if not ratios:
        return LatencyStretch(1.0, 1.0, 0.0)
    array = np.array(ratios)
    return LatencyStretch(
        mean_stretch=float(array.mean()),
        max_stretch=float(array.max()),
        mean_increase_percent=float((array.mean() - 1.0) * 100.0),
    )


def hop_count_distribution(routing: RoutingTable) -> Dict[int, int]:
    """Histogram of path hop counts of a routing table."""
    histogram: Dict[int, int] = {}
    for _pair, path in routing.items():
        histogram[path.num_hops] = histogram.get(path.num_hops, 0) + 1
    return histogram


def percentile_summary(values: Sequence[float]) -> Dict[str, float]:
    """Min/median/mean/p95/max summary used in experiment reports."""
    if len(values) == 0:
        return {"min": 0.0, "median": 0.0, "mean": 0.0, "p95": 0.0, "max": 0.0}
    array = np.asarray(list(values), dtype=float)
    return {
        "min": float(array.min()),
        "median": float(np.median(array)),
        "mean": float(array.mean()),
        "p95": float(np.percentile(array, 95)),
        "max": float(array.max()),
    }
