"""Recomputation-rate analysis (Figure 1b).

The paper introduces the *recomputation rate* metric: how often an
energy-aware routing approach must recompute and redeploy its routing tables
because the minimal active subset changed between consecutive intervals of a
demand trace.  On the GÉANT trace the rate reaches the trace-granularity
upper bound of four recomputations per hour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..exceptions import TrafficError
from ..routing.paths import RoutingConfiguration
from ..units import HOUR


@dataclass(frozen=True)
class RecomputationSeries:
    """Recomputation counts aggregated per hour.

    Attributes:
        hour_start_s: Start time (seconds since trace start) of each hour bin.
        recomputations_per_hour: Number of configuration changes in that hour.
        total_changes: Total number of changes over the trace.
        change_fraction: Fraction of interval transitions that changed the
            configuration.
        upper_bound_per_hour: The trace-granularity upper bound
            (``3600 / interval``).
    """

    hour_start_s: List[float]
    recomputations_per_hour: List[float]
    total_changes: int
    change_fraction: float
    upper_bound_per_hour: float

    @property
    def mean_rate_per_hour(self) -> float:
        """Average recomputation rate over the trace."""
        if not self.recomputations_per_hour:
            return 0.0
        return float(np.mean(self.recomputations_per_hour))

    @property
    def max_rate_per_hour(self) -> float:
        """Peak recomputation rate over the trace."""
        if not self.recomputations_per_hour:
            return 0.0
        return float(np.max(self.recomputations_per_hour))


def configuration_changes(configurations: Sequence[RoutingConfiguration]) -> List[bool]:
    """Whether each interval transition changed the active-element set."""
    if len(configurations) < 2:
        return []
    return [
        configurations[index] != configurations[index - 1]
        for index in range(1, len(configurations))
    ]


def recomputation_rate(
    configurations: Sequence[RoutingConfiguration],
    interval_s: float,
) -> RecomputationSeries:
    """Compute the per-hour recomputation rate of a configuration sequence.

    Args:
        configurations: The active-element configuration computed for each
            trace interval (e.g. by re-running the optimisation per interval).
        interval_s: Trace measurement interval in seconds.

    Returns:
        A :class:`RecomputationSeries` with one value per hour of the trace.
    """
    if interval_s <= 0:
        raise TrafficError(f"interval must be positive, got {interval_s}")
    changes = configuration_changes(configurations)
    intervals_per_hour = max(1, int(round(HOUR / interval_s)))

    per_hour: List[float] = []
    hour_starts: List[float] = []
    for start in range(0, len(changes), intervals_per_hour):
        window = changes[start : start + intervals_per_hour]
        per_hour.append(float(sum(window)))
        hour_starts.append(start * interval_s)

    total = int(sum(changes))
    fraction = total / len(changes) if changes else 0.0
    return RecomputationSeries(
        hour_start_s=hour_starts,
        recomputations_per_hour=per_hour,
        total_changes=total,
        change_fraction=fraction,
        upper_bound_per_hour=HOUR / interval_s,
    )
