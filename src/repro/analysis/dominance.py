"""Routing-configuration dominance analysis (Figure 2a).

For the GÉANT replay the paper measures "the fraction of time over which the
network was operating under each routing configuration" and finds that a
single configuration (the minimal power tree) is active almost 60 % of the
time — yet 13 distinct configurations appear overall, too many to
pre-install.  This module computes that distribution.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Sequence

from ..routing.paths import RoutingConfiguration


@dataclass(frozen=True)
class DominanceResult:
    """Distribution of time across distinct routing configurations.

    Attributes:
        fractions: Fraction of intervals spent in each distinct
            configuration, sorted in descending order.
        num_configurations: Number of distinct configurations observed.
        dominant_fraction: Fraction of time spent in the most common one.
    """

    fractions: List[float]
    num_configurations: int
    dominant_fraction: float

    def cumulative(self) -> List[float]:
        """Cumulative time fraction covered by the top-k configurations."""
        totals: List[float] = []
        running = 0.0
        for fraction in self.fractions:
            running += fraction
            totals.append(running)
        return totals

    def configurations_for_coverage(self, target: float = 0.95) -> int:
        """How many configurations are needed to cover the target time share."""
        for index, value in enumerate(self.cumulative(), start=1):
            if value >= target:
                return index
        return self.num_configurations


def configuration_dominance(
    configurations: Sequence[RoutingConfiguration],
) -> DominanceResult:
    """Measure how long the network dwells in each distinct configuration."""
    if not configurations:
        return DominanceResult(fractions=[], num_configurations=0, dominant_fraction=0.0)
    counts = Counter(configurations)
    total = len(configurations)
    fractions = sorted((count / total for count in counts.values()), reverse=True)
    return DominanceResult(
        fractions=fractions,
        num_configurations=len(counts),
        dominant_fraction=fractions[0],
    )
