"""Traffic-deviation analysis (Figure 1a).

The paper plots the CCDF of the relative traffic change over 5-minute
intervals in a production Google datacenter and observes that "in almost 50 %
cases the traffic changes at least by 20 % percent over a 5-min interval" —
the motivation for why recompute-on-every-change approaches cannot keep up.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..exceptions import TrafficError
from ..traffic.google_trace import relative_changes


def change_ccdf(
    series: Sequence[float],
    change_percentages: Sequence[float] = tuple(range(0, 101, 5)),
) -> List[Tuple[float, float]]:
    """CCDF of the per-interval relative traffic change.

    Args:
        series: Aggregate traffic volume per interval.
        change_percentages: The x-axis values (percent change) to evaluate.

    Returns:
        ``(change_percent, ccdf_percent)`` pairs: the percentage of intervals
        whose relative change is at least ``change_percent``.
    """
    changes = relative_changes(series) * 100.0
    points: List[Tuple[float, float]] = []
    for threshold in change_percentages:
        fraction = float(np.mean(changes >= threshold)) * 100.0
        points.append((float(threshold), fraction))
    return points


def fraction_changing_at_least(series: Sequence[float], threshold_fraction: float) -> float:
    """Fraction of intervals whose relative change is at least the threshold.

    ``fraction_changing_at_least(volumes, 0.20)`` reproduces the paper's
    headline statistic (≈0.5 for the Google trace).
    """
    if threshold_fraction < 0:
        raise TrafficError(f"threshold must be non-negative, got {threshold_fraction}")
    changes = relative_changes(series)
    return float(np.mean(changes >= threshold_fraction))


def median_change(series: Sequence[float]) -> float:
    """Median relative change between consecutive intervals."""
    return float(np.median(relative_changes(series)))
