"""Network topologies: core data structures and the paper's evaluation networks."""

from .base import Arc, Link, Node, Topology, link_key
from .example import build_example, example_paths
from .fattree import build_fattree, core_switches, edge_switches, hosts
from .geant import build_geant, geant_pop_names
from .generators import from_networkx, random_connected_topology, waxman_topology
from .pop_access import build_pop_access, core_routers, metro_routers
from .rocketfuel import (
    build_abovenet,
    build_genuity,
    build_rocketfuel,
    rocketfuel_capacity_for_degree,
)

__all__ = [
    "Arc",
    "Link",
    "Node",
    "Topology",
    "link_key",
    "build_example",
    "example_paths",
    "build_fattree",
    "core_switches",
    "edge_switches",
    "hosts",
    "build_geant",
    "geant_pop_names",
    "from_networkx",
    "random_connected_topology",
    "waxman_topology",
    "build_pop_access",
    "core_routers",
    "metro_routers",
    "build_abovenet",
    "build_genuity",
    "build_rocketfuel",
    "rocketfuel_capacity_for_degree",
]
