"""Random topology generators used for tests, ablations and extra scenarios.

The evaluation topologies of the paper are deterministic (GÉANT, Rocketfuel,
PoP-access, fat-tree); the generators here provide additional inputs for
property-based tests and scale studies.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np

from ..exceptions import TopologyError
from ..units import mbps
from .base import Topology

DEFAULT_CAPACITY_BPS = mbps(100)
DEFAULT_LATENCY_S = 0.002


def from_networkx(
    graph: nx.Graph,
    name: str = "imported",
    default_capacity_bps: float = DEFAULT_CAPACITY_BPS,
    default_latency_s: float = DEFAULT_LATENCY_S,
) -> Topology:
    """Convert an undirected :mod:`networkx` graph into a :class:`Topology`.

    Edge attributes ``capacity`` and ``latency`` are honoured when present;
    otherwise the provided defaults are used.  Node names are converted to
    strings.
    """
    topo = Topology(name=name)
    for node in graph.nodes:
        topo.add_node(str(node))
    for u, v, data in graph.edges(data=True):
        if u == v:
            continue
        topo.add_link(
            str(u),
            str(v),
            capacity_bps=float(data.get("capacity", default_capacity_bps)),
            latency_s=float(data.get("latency", default_latency_s)),
        )
    return topo


def random_connected_topology(
    num_nodes: int,
    num_links: int,
    seed: Optional[int] = None,
    capacity_bps: float = DEFAULT_CAPACITY_BPS,
    latency_s: float = DEFAULT_LATENCY_S,
    name: str = "random",
) -> Topology:
    """Generate a random connected topology with exact node and link counts.

    A random spanning tree guarantees connectivity; the remaining links are
    sampled uniformly at random from the absent pairs.

    Raises:
        TopologyError: If the requested link count cannot produce a simple
            connected graph.
    """
    if num_nodes < 2:
        raise TopologyError("need at least 2 nodes")
    min_links = num_nodes - 1
    max_links = num_nodes * (num_nodes - 1) // 2
    if not (min_links <= num_links <= max_links):
        raise TopologyError(
            f"link count {num_links} out of range [{min_links}, {max_links}] "
            f"for {num_nodes} nodes"
        )
    rng = np.random.default_rng(seed)
    names = [f"n{i}" for i in range(num_nodes)]
    topo = Topology(name=name)
    for node in names:
        topo.add_node(node)

    # Random spanning tree via random attachment order.
    order = list(rng.permutation(num_nodes))
    for position in range(1, num_nodes):
        node = names[order[position]]
        parent = names[order[int(rng.integers(0, position))]]
        topo.add_link(node, parent, capacity_bps=capacity_bps, latency_s=latency_s)

    while topo.num_links < num_links:
        i, j = rng.choice(num_nodes, size=2, replace=False)
        u, v = names[int(i)], names[int(j)]
        if not topo.has_link(u, v):
            topo.add_link(u, v, capacity_bps=capacity_bps, latency_s=latency_s)
    return topo


def waxman_topology(
    num_nodes: int,
    alpha: float = 0.4,
    beta: float = 0.25,
    seed: Optional[int] = None,
    capacity_bps: float = DEFAULT_CAPACITY_BPS,
    name: str = "waxman",
) -> Topology:
    """Generate a Waxman random graph and repair it to be connected.

    Waxman graphs are the classic synthetic ISP-like topologies: link
    probability decays exponentially with distance.  Latencies are derived
    from the embedded coordinates.
    """
    if num_nodes < 2:
        raise TopologyError("need at least 2 nodes")
    graph = nx.waxman_graph(num_nodes, alpha=alpha, beta=beta, seed=seed)
    positions = nx.get_node_attributes(graph, "pos")
    # Repair connectivity by linking consecutive components.
    components = [sorted(c) for c in nx.connected_components(graph)]
    for first, second in zip(components, components[1:], strict=False):
        graph.add_edge(first[0], second[0])
    topo = Topology(name=name)
    for node in graph.nodes:
        topo.add_node(str(node))
    span_km = 3_000.0
    for u, v in graph.edges:
        if u == v:
            continue
        (x1, y1), (x2, y2) = positions[u], positions[v]
        distance_km = float(np.hypot(x1 - x2, y1 - y2)) * span_km + 5.0
        latency_s = distance_km / 200_000.0
        topo.add_link(
            str(u), str(v), capacity_bps=capacity_bps, latency_s=latency_s, length_km=distance_km
        )
    return topo
