"""Synthetic Rocketfuel-style PoP-level ISP topologies (Abovenet, Genuity).

The paper uses two PoP-level topologies inferred by Rocketfuel (Spring et
al. [32]): Abovenet (AS 6461) and Genuity/Level3 (AS 1).  The original maps
are no longer distributed, so this module regenerates PoP-level graphs with
the same construction the paper relies on:

* node and link counts of the published PoP-level maps,
* link capacities chosen as in Kandula et al. [26] and quoted in the paper:
  "links are assigned 100 Mbps if they are connected to an end point with a
  degree of less than seven, otherwise they are assigned 52 Mbps",
* link latencies "as determined by the Rocketfuel mapping engine" — here
  derived from synthetic continental-scale PoP coordinates.

Construction is deterministic (seeded) so every run of the evaluation sees
the same network.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..exceptions import TopologyError
from ..units import mbps
from .base import Topology

#: Published PoP-level sizes (PoPs, inter-PoP links) used as generation targets.
ABOVENET_NUM_POPS = 22
ABOVENET_NUM_LINKS = 42
GENUITY_NUM_POPS = 42
GENUITY_NUM_LINKS = 110

#: Capacity rule from the paper (after Kandula et al. [26]).
HIGH_DEGREE_THRESHOLD = 7
LOW_DEGREE_CAPACITY_BPS = mbps(100)
HIGH_DEGREE_CAPACITY_BPS = mbps(52)

#: Continental-scale coordinate box (kilometres) for synthetic PoP placement.
_CONTINENT_SPAN_KM = 4_500.0
_FIBRE_SPEED_KM_PER_S = 200_000.0


def _generate_pop_graph(
    name: str,
    num_pops: int,
    num_links: int,
    seed: int,
) -> Topology:
    """Generate a connected PoP-level graph with the requested size.

    The generator mimics ISP backbone structure: a preferential-attachment
    backbone (which yields a few high-degree hub PoPs, as observed in
    Rocketfuel maps) augmented with random shortcut links until the target
    link count is reached.
    """
    if num_pops < 3:
        raise TopologyError(f"need at least 3 PoPs, got {num_pops}")
    min_links = num_pops - 1
    if num_links < min_links:
        raise TopologyError(
            f"{num_links} links cannot connect {num_pops} PoPs (need >= {min_links})"
        )
    rng = np.random.default_rng(seed)
    pop_names = [f"{name}-pop{i:02d}" for i in range(num_pops)]
    positions = {
        pop: (
            float(rng.uniform(0.0, _CONTINENT_SPAN_KM)),
            float(rng.uniform(0.0, _CONTINENT_SPAN_KM * 0.6)),
        )
        for pop in pop_names
    }

    # Preferential-attachment backbone: node i attaches to an existing node
    # chosen with probability proportional to (degree + 1).
    degrees = {pop: 0 for pop in pop_names}
    edges: set[Tuple[str, str]] = set()

    def canonical(u: str, v: str) -> Tuple[str, str]:
        return (u, v) if u <= v else (v, u)

    for index in range(1, num_pops):
        candidates = pop_names[:index]
        weights = np.array([degrees[c] + 1.0 for c in candidates])
        weights = weights / weights.sum()
        target = candidates[int(rng.choice(len(candidates), p=weights))]
        edge = canonical(pop_names[index], target)
        edges.add(edge)
        degrees[edge[0]] += 1
        degrees[edge[1]] += 1

    # Shortcut links, biased toward nearby PoPs (ISP backbones are roughly
    # geographic), until the target count is reached.
    attempts = 0
    max_attempts = 50 * num_links
    while len(edges) < num_links and attempts < max_attempts:
        attempts += 1
        u, v = rng.choice(num_pops, size=2, replace=False)
        pu, pv = pop_names[int(u)], pop_names[int(v)]
        edge = canonical(pu, pv)
        if edge in edges:
            continue
        (x1, y1), (x2, y2) = positions[pu], positions[pv]
        distance = float(np.hypot(x1 - x2, y1 - y2))
        accept_probability = np.exp(-distance / (_CONTINENT_SPAN_KM / 3.0))
        if rng.random() > accept_probability:
            continue
        edges.add(edge)
        degrees[edge[0]] += 1
        degrees[edge[1]] += 1
    # If geographic rejection was too strict, fill in uniformly at random.
    while len(edges) < num_links:
        u, v = rng.choice(num_pops, size=2, replace=False)
        edge = canonical(pop_names[int(u)], pop_names[int(v)])
        if edge not in edges:
            edges.add(edge)
            degrees[edge[0]] += 1
            degrees[edge[1]] += 1

    topo = Topology(name=name)
    for pop in pop_names:
        topo.add_node(pop, kind="router", level="pop")
    for u, v in sorted(edges):
        (x1, y1), (x2, y2) = positions[u], positions[v]
        distance_km = float(np.hypot(x1 - x2, y1 - y2)) * 1.3 + 10.0
        latency_s = distance_km / _FIBRE_SPEED_KM_PER_S
        # Capacities are assigned after the degree distribution is known; add
        # a placeholder now and rewrite below via a second pass.
        topo.add_link(u, v, capacity_bps=1.0, latency_s=latency_s, length_km=distance_km)

    return _assign_rocketfuel_capacities(topo)


def _assign_rocketfuel_capacities(topo: Topology) -> Topology:
    """Apply the degree-based capacity rule, rebuilding the topology."""
    rebuilt = Topology(name=topo.name)
    for node in topo.nodes():
        record = topo.node(node)
        rebuilt.add_node(
            record.name,
            kind=record.kind,
            level=record.level,
            always_powered=record.always_powered,
        )
    for link in topo.links():
        low_degree = (
            topo.degree(link.u) < HIGH_DEGREE_THRESHOLD
            and topo.degree(link.v) < HIGH_DEGREE_THRESHOLD
        )
        capacity = LOW_DEGREE_CAPACITY_BPS if low_degree else HIGH_DEGREE_CAPACITY_BPS
        rebuilt.add_link(
            link.u,
            link.v,
            capacity_bps=capacity,
            latency_s=link.latency_s,
            length_km=link.length_km,
        )
    return rebuilt


def build_abovenet(seed: int = 6461) -> Topology:
    """Build the synthetic Abovenet (AS 6461) PoP-level topology."""
    return _generate_pop_graph("abovenet", ABOVENET_NUM_POPS, ABOVENET_NUM_LINKS, seed)


def build_genuity(seed: int = 1) -> Topology:
    """Build the synthetic Genuity (AS 1) PoP-level topology."""
    return _generate_pop_graph("genuity", GENUITY_NUM_POPS, GENUITY_NUM_LINKS, seed)


def build_rocketfuel(
    name: str,
    num_pops: int,
    num_links: int,
    seed: Optional[int] = None,
) -> Topology:
    """Build a custom Rocketfuel-style PoP-level topology.

    Args:
        name: Topology name (also the node-name prefix).
        num_pops: Number of PoPs.
        num_links: Number of inter-PoP links (must allow connectivity).
        seed: Random seed; defaults to a hash of the name for determinism.
    """
    if seed is None:
        seed = abs(hash(name)) % (2**31)
    return _generate_pop_graph(name, num_pops, num_links, seed)


def rocketfuel_capacity_for_degree(degree_u: int, degree_v: int) -> float:
    """Capacity assigned to a link given its endpoint degrees.

    Exposed for tests and for callers who build their own Rocketfuel-style
    graphs.
    """
    if degree_u < HIGH_DEGREE_THRESHOLD and degree_v < HIGH_DEGREE_THRESHOLD:
        return LOW_DEGREE_CAPACITY_BPS
    return HIGH_DEGREE_CAPACITY_BPS
