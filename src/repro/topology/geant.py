"""Synthetic GÉANT-like pan-European research network topology.

The paper replays 15 days of GÉANT traffic matrices (May–June 2005, 15-minute
intervals, dataset of Uhlig et al. [33]).  The original matrices are not
redistributable, so this module rebuilds the 2005 GÉANT PoP-level topology
from public information: 23 national PoPs interconnected by 10 Gb/s, 2.5 Gb/s
and 155 Mb/s circuits, with the characteristic sparse European mesh (average
degree a little over 3).

The node set and adjacency below follow the published GÉANT maps of that
period closely enough for the reproduction's purposes: what matters to the
paper's findings is the limited built-in redundancy (only a few alternative
paths per node pair), the link-capacity hierarchy and the continental-scale
propagation delays — all preserved here.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..units import gbps, mbps
from .base import Topology

#: (node, approximate latitude, approximate longitude) for the 23 PoPs.
GEANT_POPS: List[Tuple[str, float, float]] = [
    ("AT", 48.2, 16.4),   # Vienna
    ("BE", 50.8, 4.4),    # Brussels
    ("CH", 46.2, 6.1),    # Geneva
    ("CZ", 50.1, 14.4),   # Prague
    ("DE", 50.1, 8.7),    # Frankfurt
    ("ES", 40.4, -3.7),   # Madrid
    ("FR", 48.9, 2.4),    # Paris
    ("GR", 38.0, 23.7),   # Athens
    ("HR", 45.8, 16.0),   # Zagreb
    ("HU", 47.5, 19.0),   # Budapest
    ("IE", 53.3, -6.3),   # Dublin
    ("IL", 32.1, 34.8),   # Tel Aviv
    ("IT", 45.5, 9.2),    # Milan
    ("LU", 49.6, 6.1),    # Luxembourg
    ("NL", 52.4, 4.9),    # Amsterdam
    ("NY", 40.7, -74.0),  # New York (transatlantic PoP)
    ("PL", 52.2, 21.0),   # Warsaw
    ("PT", 38.7, -9.1),   # Lisbon
    ("SE", 59.3, 18.1),   # Stockholm
    ("SI", 46.1, 14.5),   # Ljubljana
    ("SK", 48.1, 17.1),   # Bratislava
    ("UK", 51.5, -0.1),   # London
    ("LT", 54.7, 25.3),   # Vilnius
]

#: Links as (u, v, capacity).  Capacities follow the 2005 GÉANT hierarchy:
#: a 10 Gb/s core ring plus 2.5 Gb/s and 155 Mb/s spurs.
GEANT_LINKS: List[Tuple[str, str, float]] = [
    # 10 Gb/s core
    ("UK", "NL", gbps(10)),
    ("UK", "FR", gbps(10)),
    ("NL", "DE", gbps(10)),
    ("DE", "FR", gbps(10)),
    ("DE", "CH", gbps(10)),
    ("FR", "CH", gbps(10)),
    ("CH", "IT", gbps(10)),
    ("DE", "AT", gbps(10)),
    ("IT", "AT", gbps(10)),
    ("DE", "PL", gbps(10)),
    ("DE", "CZ", gbps(10)),
    ("DE", "SE", gbps(10)),
    ("NL", "BE", gbps(10)),
    # 2.5 Gb/s
    ("FR", "BE", gbps(2.5)),
    ("FR", "ES", gbps(2.5)),
    ("ES", "PT", gbps(2.5)),
    ("UK", "PT", gbps(2.5)),
    ("ES", "IT", gbps(2.5)),
    ("IT", "GR", gbps(2.5)),
    ("AT", "GR", gbps(2.5)),
    ("AT", "HU", gbps(2.5)),
    ("AT", "CZ", gbps(2.5)),
    ("AT", "SI", gbps(2.5)),
    ("AT", "SK", gbps(2.5)),
    ("CZ", "SK", gbps(2.5)),
    ("HU", "SK", gbps(2.5)),
    ("HU", "HR", gbps(2.5)),
    ("SI", "HR", gbps(2.5)),
    ("PL", "CZ", gbps(2.5)),
    ("SE", "PL", gbps(2.5)),
    ("UK", "SE", gbps(2.5)),
    ("UK", "IE", gbps(2.5)),
    ("NL", "IE", gbps(2.5)),
    ("UK", "NY", gbps(2.5)),
    ("NY", "NL", gbps(2.5)),
    # 155 Mb/s spurs
    ("IT", "IL", mbps(155)),
    ("NL", "IL", mbps(155)),
    ("SE", "LT", mbps(155)),
    ("PL", "LT", mbps(155)),
    ("LU", "FR", mbps(155)),
    ("LU", "DE", mbps(155)),
]

#: Propagation speed in fibre, used to derive latencies from great-circle
#: distances (roughly two thirds of the speed of light).
_FIBRE_SPEED_KM_PER_S = 200_000.0


def _haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in kilometres between two (lat, lon) points."""
    import math

    radius_km = 6_371.0
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    d_phi = math.radians(lat2 - lat1)
    d_lambda = math.radians(lon2 - lon1)
    a = (
        math.sin(d_phi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(d_lambda / 2.0) ** 2
    )
    return 2.0 * radius_km * math.asin(math.sqrt(a))


def build_geant(route_stretch: float = 1.4) -> Topology:
    """Build the synthetic GÉANT-like topology.

    Args:
        route_stretch: Multiplier applied to great-circle distances to account
            for real fibre routes being longer than the geodesic.

    Returns:
        A 23-node, 41-link :class:`~repro.topology.base.Topology` whose link
        latencies follow fibre distances and whose capacities follow the 2005
        GÉANT capacity hierarchy.
    """
    positions: Dict[str, Tuple[float, float]] = {
        name: (lat, lon) for name, lat, lon in GEANT_POPS
    }
    topo = Topology(name="geant")
    for name, _lat, _lon in GEANT_POPS:
        topo.add_node(name, kind="router", level="pop")
    for u, v, capacity in GEANT_LINKS:
        lat1, lon1 = positions[u]
        lat2, lon2 = positions[v]
        distance_km = _haversine_km(lat1, lon1, lat2, lon2) * route_stretch
        latency_s = max(distance_km / _FIBRE_SPEED_KM_PER_S, 1e-4)
        topo.add_link(u, v, capacity_bps=capacity, latency_s=latency_s, length_km=distance_km)
    return topo


def geant_pop_names() -> List[str]:
    """Names of the 23 GÉANT PoPs."""
    return [name for name, _lat, _lon in GEANT_POPS]
