"""k-ary fat-tree datacenter topology (Al-Fares et al., SIGCOMM 2008).

The paper evaluates REsPoNse on fat-tree datacenter networks: a ``k=4``
fat-tree for the power/time experiment (Figure 4) and a fat-tree with 36 core
switches (``k=12``) for the energy-critical-path analysis (Figure 2b).

A ``k``-ary fat-tree has:

* ``(k/2)^2`` core switches,
* ``k`` pods, each with ``k/2`` aggregation and ``k/2`` edge switches,
* ``k/2`` hosts attached to every edge switch (``k^3/4`` hosts in total).

Every switch has ``k`` ports of equal speed, so the topology is rearrangeably
non-blocking.  Host links are modelled explicitly (kind ``"host"``) because
the datacenter experiments express demands between hosts, but hosts are
``always_powered`` and never considered for sleeping.
"""

from __future__ import annotations

from typing import List

from ..exceptions import TopologyError
from ..units import gbps
from .base import Topology

#: Default port speed for fat-tree links (commodity 1 GbE, as in ElasticTree).
DEFAULT_LINK_CAPACITY_BPS = gbps(1.0)

#: Default propagation latency inside a datacenter (tens of microseconds).
DEFAULT_DC_LATENCY_S = 50e-6


def core_switch_name(index: int) -> str:
    """Name of the *index*-th core switch."""
    return f"core{index}"


def aggregation_switch_name(pod: int, index: int) -> str:
    """Name of the *index*-th aggregation switch in *pod*."""
    return f"agg{pod}_{index}"


def edge_switch_name(pod: int, index: int) -> str:
    """Name of the *index*-th edge switch in *pod*."""
    return f"edge{pod}_{index}"


def host_name(pod: int, edge: int, index: int) -> str:
    """Name of the *index*-th host below edge switch *edge* in *pod*."""
    return f"host{pod}_{edge}_{index}"


def build_fattree(
    k: int = 4,
    link_capacity_bps: float = DEFAULT_LINK_CAPACITY_BPS,
    latency_s: float = DEFAULT_DC_LATENCY_S,
    with_hosts: bool = True,
) -> Topology:
    """Build a ``k``-ary fat-tree.

    Args:
        k: Arity of the fat-tree; must be a positive even integer.
        link_capacity_bps: Capacity of every link (all ports are equal speed).
        latency_s: Propagation latency of every link.
        with_hosts: When ``True`` (default), attach ``k/2`` hosts to every
            edge switch.  Host-less trees are useful when demands are
            expressed between edge switches directly.

    Returns:
        The constructed :class:`~repro.topology.base.Topology`.  Switch nodes
        carry ``level`` in ``{"core", "aggregation", "edge"}``; hosts carry
        ``level="host"`` and ``always_powered=True``.

    Raises:
        TopologyError: If ``k`` is not a positive even integer.
    """
    if k <= 0 or k % 2 != 0:
        raise TopologyError(f"fat-tree arity must be a positive even integer, got {k}")

    half = k // 2
    topo = Topology(name=f"fattree-k{k}")

    core_switches: List[str] = []
    for index in range(half * half):
        name = core_switch_name(index)
        topo.add_node(name, kind="switch", level="core")
        core_switches.append(name)

    for pod in range(k):
        aggregation = [aggregation_switch_name(pod, i) for i in range(half)]
        edges = [edge_switch_name(pod, i) for i in range(half)]
        for name in aggregation:
            topo.add_node(name, kind="switch", level="aggregation")
        for name in edges:
            topo.add_node(name, kind="switch", level="edge")

        # Edge <-> aggregation: complete bipartite graph inside the pod.
        for edge in edges:
            for agg in aggregation:
                topo.add_link(edge, agg, capacity_bps=link_capacity_bps, latency_s=latency_s)

        # Aggregation <-> core: aggregation switch i in every pod connects to
        # core switches [i*half, (i+1)*half).
        for agg_index, agg in enumerate(aggregation):
            for offset in range(half):
                core = core_switches[agg_index * half + offset]
                topo.add_link(agg, core, capacity_bps=link_capacity_bps, latency_s=latency_s)

        if with_hosts:
            for edge_index, edge in enumerate(edges):
                for host_index in range(half):
                    host = host_name(pod, edge_index, host_index)
                    topo.add_node(host, kind="host", level="host", always_powered=True)
                    topo.add_link(
                        host, edge, capacity_bps=link_capacity_bps, latency_s=latency_s
                    )

    return topo


def pod_of(node: str) -> int:
    """Return the pod index encoded in a fat-tree switch or host name.

    Raises:
        TopologyError: If the node name does not belong to a pod (e.g. a core
            switch).
    """
    for prefix in ("agg", "edge", "host"):
        if node.startswith(prefix):
            remainder = node[len(prefix):]
            pod_part = remainder.split("_", 1)[0]
            return int(pod_part)
    raise TopologyError(f"node {node!r} does not belong to a pod")


def edge_switches(topo: Topology) -> List[str]:
    """All edge-level switches of a fat-tree topology."""
    return topo.nodes_at_level("edge")


def core_switches(topo: Topology) -> List[str]:
    """All core-level switches of a fat-tree topology."""
    return topo.nodes_at_level("core")


def hosts(topo: Topology) -> List[str]:
    """All hosts of a fat-tree topology."""
    return topo.nodes_at_level("host")
