"""The example topology of Figure 3 and the Click testbed of Section 5.3.

The paper's running example has routers ``A``–``K`` (no ``I``).  Sources
``A``, ``B`` and ``C`` send traffic toward ``K``:

* the **always-on** path goes through the "middle" link ``E - H - K``,
* the **upper on-demand** path is ``D - G - K`` (reachable from ``A``),
* the **lower on-demand** path is ``F - J - K`` (reachable from ``C``),
* the failover paths coincide with the on-demand paths in this topology.

The Click experiment (Figure 7) uses the same topology excluding router
``B``, with 10 Mb/s links and 16.67 ms per-hop latency, and 5 flows of about
1 Mb/s from each of ``A`` and ``C`` toward ``K``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..units import mbps, milliseconds
from .base import Topology

#: Link latency used in the Click experiment (Section 5.3).
CLICK_LINK_LATENCY_S = milliseconds(16.67)

#: Link capacity used in the Click experiment.
CLICK_LINK_CAPACITY_BPS = mbps(10)

#: The undirected adjacency of Figure 3.
EXAMPLE_LINKS: List[Tuple[str, str]] = [
    ("A", "D"),
    ("A", "E"),
    ("B", "E"),
    ("C", "E"),
    ("C", "F"),
    ("D", "G"),
    ("G", "K"),
    ("E", "H"),
    ("H", "K"),
    ("F", "J"),
    ("J", "K"),
]


def build_example(
    include_b: bool = True,
    capacity_bps: float = CLICK_LINK_CAPACITY_BPS,
    latency_s: float = CLICK_LINK_LATENCY_S,
) -> Topology:
    """Build the Figure 3 example topology.

    Args:
        include_b: Include router ``B``; the Click experiment of Section 5.3
            excludes it (10 routers in the figure, 10 Click instances minus
            the unused ``B`` leaves 9 forwarding routers plus the testbed
            controller).
        capacity_bps: Capacity of every link.
        latency_s: Propagation latency of every link.

    Returns:
        The example :class:`~repro.topology.base.Topology`.
    """
    topo = Topology(name="example-fig3" if include_b else "example-fig3-click")
    nodes = {node for link in EXAMPLE_LINKS for node in link}
    if not include_b:
        nodes.discard("B")
    for node in sorted(nodes):
        topo.add_node(node, kind="router")
    for u, v in EXAMPLE_LINKS:
        if not include_b and "B" in (u, v):
            continue
        topo.add_link(u, v, capacity_bps=capacity_bps, latency_s=latency_s)
    return topo


def example_paths() -> Dict[str, Dict[Tuple[str, str], List[str]]]:
    """The REsPoNse path sets the paper draws in Figure 3.

    Returns:
        A mapping with keys ``"always_on"``, ``"on_demand"`` and
        ``"failover"``, each a mapping from ``(origin, destination)`` to a
        node path.  Only the ``A``/``C`` → ``K`` pairs used by the Click
        experiment are listed.
    """
    always_on = {
        ("A", "K"): ["A", "E", "H", "K"],
        ("C", "K"): ["C", "E", "H", "K"],
    }
    on_demand = {
        ("A", "K"): ["A", "D", "G", "K"],
        ("C", "K"): ["C", "F", "J", "K"],
    }
    failover = {
        ("A", "K"): ["A", "D", "G", "K"],
        ("C", "K"): ["C", "F", "J", "K"],
    }
    return {"always_on": always_on, "on_demand": on_demand, "failover": failover}
