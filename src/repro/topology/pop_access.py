"""Synthetic hierarchical Italian-ISP "PoP-access" topology.

The paper's third ISP topology comes from Chiaraviglio et al. [15]: an Italian
ISP with a hierarchical design (core, backbone, metro, feeder, access) and "a
significant amount of redundancy at each level".  The paper only uses the top
three levels — core, backbone and metro — because feeder nodes must always be
powered.

This module rebuilds that structure synthetically:

* a small full-mesh core,
* backbone PoPs dual-homed to two distinct core nodes and chained sideways
  for extra redundancy,
* metro PoPs dual-homed to two distinct backbone nodes.

Capacities decrease down the hierarchy (10 Gb/s core, 2.5 Gb/s backbone
uplinks, 1 Gb/s metro uplinks) as in typical national ISP designs.
"""

from __future__ import annotations

from typing import List

from ..exceptions import TopologyError
from ..units import gbps
from .base import Topology

#: Default level sizes mirroring the published topology's top three levels.
DEFAULT_NUM_CORE = 4
DEFAULT_NUM_BACKBONE = 10
DEFAULT_NUM_METRO = 20

CORE_CAPACITY_BPS = gbps(10)
BACKBONE_CAPACITY_BPS = gbps(2.5)
METRO_CAPACITY_BPS = gbps(1)

_CORE_LATENCY_S = 0.002
_BACKBONE_LATENCY_S = 0.003
_METRO_LATENCY_S = 0.002


def core_name(index: int) -> str:
    """Name of the *index*-th core router."""
    return f"core{index}"


def backbone_name(index: int) -> str:
    """Name of the *index*-th backbone router."""
    return f"bb{index}"


def metro_name(index: int) -> str:
    """Name of the *index*-th metro router."""
    return f"metro{index}"


def build_pop_access(
    num_core: int = DEFAULT_NUM_CORE,
    num_backbone: int = DEFAULT_NUM_BACKBONE,
    num_metro: int = DEFAULT_NUM_METRO,
) -> Topology:
    """Build the hierarchical PoP-access topology.

    Args:
        num_core: Number of core routers (full mesh), at least 2.
        num_backbone: Number of backbone routers, each dual-homed to core.
        num_metro: Number of metro routers, each dual-homed to backbone.

    Returns:
        A three-level :class:`~repro.topology.base.Topology`.  Node levels are
        ``"core"``, ``"backbone"`` and ``"metro"``.

    Raises:
        TopologyError: If any level is too small for dual-homing.
    """
    if num_core < 2:
        raise TopologyError("need at least 2 core routers for redundancy")
    if num_backbone < 2:
        raise TopologyError("need at least 2 backbone routers for redundancy")
    if num_metro < 1:
        raise TopologyError("need at least 1 metro router")

    topo = Topology(name="pop-access")

    cores: List[str] = []
    for index in range(num_core):
        name = core_name(index)
        topo.add_node(name, kind="router", level="core")
        cores.append(name)

    backbones: List[str] = []
    for index in range(num_backbone):
        name = backbone_name(index)
        topo.add_node(name, kind="router", level="backbone")
        backbones.append(name)

    metros: List[str] = []
    for index in range(num_metro):
        name = metro_name(index)
        topo.add_node(name, kind="router", level="metro")
        metros.append(name)

    # Core full mesh.
    for i in range(num_core):
        for j in range(i + 1, num_core):
            topo.add_link(
                cores[i], cores[j], capacity_bps=CORE_CAPACITY_BPS, latency_s=_CORE_LATENCY_S
            )

    # Backbone routers: dual-homed to two distinct core routers, plus a ring
    # between consecutive backbone routers for lateral redundancy.
    for index, backbone in enumerate(backbones):
        primary = cores[index % num_core]
        secondary = cores[(index + 1) % num_core]
        topo.add_link(
            backbone, primary, capacity_bps=BACKBONE_CAPACITY_BPS, latency_s=_BACKBONE_LATENCY_S
        )
        topo.add_link(
            backbone, secondary, capacity_bps=BACKBONE_CAPACITY_BPS, latency_s=_BACKBONE_LATENCY_S
        )
    if num_backbone > 2:
        for index in range(num_backbone):
            u = backbones[index]
            v = backbones[(index + 1) % num_backbone]
            if not topo.has_link(u, v):
                topo.add_link(
                    u, v, capacity_bps=BACKBONE_CAPACITY_BPS, latency_s=_BACKBONE_LATENCY_S
                )

    # Metro routers: dual-homed to two distinct backbone routers.
    for index, metro in enumerate(metros):
        primary = backbones[index % num_backbone]
        secondary = backbones[(index + 1) % num_backbone]
        topo.add_link(
            metro, primary, capacity_bps=METRO_CAPACITY_BPS, latency_s=_METRO_LATENCY_S
        )
        topo.add_link(
            metro, secondary, capacity_bps=METRO_CAPACITY_BPS, latency_s=_METRO_LATENCY_S
        )

    return topo


def metro_routers(topo: Topology) -> List[str]:
    """The metro-level routers (the traffic origins/destinations)."""
    return topo.nodes_at_level("metro")


def core_routers(topo: Topology) -> List[str]:
    """The core-level routers."""
    return topo.nodes_at_level("core")
