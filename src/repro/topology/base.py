"""Core topology data structures.

The topology model follows the notation of Section 2.2.1 of the paper:

* a set of routers/switches ``N`` (here :class:`Node`),
* a set of directed arcs ``A`` (here :class:`Arc`), where a physical link
  between routers ``i`` and ``j`` is represented by the two arcs ``i -> j``
  and ``j -> i`` grouped into one :class:`Link`.  A link cannot be
  half-powered (``Y_{i->j} == Y_{j->i}``), which is why power accounting and
  the optimisation layer operate on :class:`Link` objects while routing and
  capacity constraints operate on :class:`Arc` objects.

The :class:`Topology` container is deliberately independent of
:mod:`networkx`; algorithms that want graph machinery call
:meth:`Topology.to_networkx` (the conversion is cached and invalidated on
mutation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from ..exceptions import (
    DuplicateElementError,
    TopologyError,
    UnknownArcError,
    UnknownNodeError,
)

#: Default propagation latency assigned to links that do not specify one.
DEFAULT_LATENCY_S = 0.001


@dataclass(frozen=True)
class Node:
    """A router or switch.

    Attributes:
        name: Unique node identifier.
        kind: Free-form device class, e.g. ``"router"``, ``"switch"`` or
            ``"host"``.  Hosts are never powered down by the framework.
        level: Optional hierarchy level (e.g. ``"core"``, ``"aggregation"``,
            ``"edge"``, ``"metro"``) used by hierarchical topologies and by
            power models that scale the chassis cost with the device class.
        always_powered: When ``True`` the optimisation layer must keep the
            node active regardless of traffic (the paper's "feeder nodes").
    """

    name: str
    kind: str = "router"
    level: Optional[str] = None
    always_powered: bool = False


@dataclass(frozen=True)
class Arc:
    """A directed arc ``src -> dst`` with its capacity and latency.

    Attributes:
        src: Origin node name.
        dst: Destination node name.
        capacity_bps: Bandwidth capacity ``C_{i->j}`` in bits per second.
        latency_s: One-way propagation latency in seconds.
        length_km: Optional physical length, used by amplifier power models.
    """

    src: str
    dst: str
    capacity_bps: float
    latency_s: float = DEFAULT_LATENCY_S
    length_km: float = 0.0

    @property
    def key(self) -> Tuple[str, str]:
        """The ``(src, dst)`` pair identifying this arc."""
        return (self.src, self.dst)

    @property
    def link_key(self) -> Tuple[str, str]:
        """The canonical (sorted) endpoint pair identifying the parent link."""
        return (self.src, self.dst) if self.src <= self.dst else (self.dst, self.src)

    def reversed_key(self) -> Tuple[str, str]:
        """The key of the opposite-direction arc."""
        return (self.dst, self.src)


@dataclass(frozen=True)
class Link:
    """An undirected physical link grouping the two directed arcs.

    The power state of a link is shared by both directions
    (constraint ``Y_{i->j} = Y_{j->i}`` in the paper).
    """

    u: str
    v: str
    capacity_bps: float
    reverse_capacity_bps: float
    latency_s: float = DEFAULT_LATENCY_S
    length_km: float = 0.0

    @property
    def key(self) -> Tuple[str, str]:
        """Canonical (sorted) endpoint pair."""
        return (self.u, self.v) if self.u <= self.v else (self.v, self.u)

    @property
    def endpoints(self) -> Tuple[str, str]:
        """The two endpoints in insertion order."""
        return (self.u, self.v)

    def arc_keys(self) -> Tuple[Tuple[str, str], Tuple[str, str]]:
        """Both directed arc keys belonging to this link."""
        return ((self.u, self.v), (self.v, self.u))


def link_key(u: str, v: str) -> Tuple[str, str]:
    """Return the canonical undirected key for the pair ``(u, v)``."""
    return (u, v) if u <= v else (v, u)


class Topology:
    """A mutable network topology of nodes, directed arcs and undirected links.

    The class offers the small set of graph queries the rest of the library
    needs (neighbours, degrees, shortest paths, connectivity) and conversion
    to :class:`networkx.DiGraph` / :class:`networkx.Graph` for anything more
    involved.

    Example:
        >>> topo = Topology("triangle")
        >>> for n in "abc":
        ...     topo.add_node(n)
        >>> topo.add_link("a", "b", capacity_bps=1e9)
        >>> topo.add_link("b", "c", capacity_bps=1e9)
        >>> topo.add_link("a", "c", capacity_bps=1e9)
        >>> topo.num_nodes, topo.num_links, topo.num_arcs
        (3, 3, 6)
    """

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._arcs: Dict[Tuple[str, str], Arc] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._adjacency: Dict[str, List[str]] = {}
        self._nx_cache: Optional[nx.DiGraph] = None

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add_node(
        self,
        name: str,
        kind: str = "router",
        level: Optional[str] = None,
        always_powered: bool = False,
    ) -> Node:
        """Add a node and return it.

        Raises:
            DuplicateElementError: If a node with the same name exists.
        """
        if name in self._nodes:
            raise DuplicateElementError(f"node already exists: {name!r}")
        node = Node(name=name, kind=kind, level=level, always_powered=always_powered)
        self._nodes[name] = node
        self._adjacency[name] = []
        self._invalidate()
        return node

    def add_link(
        self,
        u: str,
        v: str,
        capacity_bps: float,
        latency_s: float = DEFAULT_LATENCY_S,
        reverse_capacity_bps: Optional[float] = None,
        length_km: float = 0.0,
    ) -> Link:
        """Add an undirected link (two directed arcs) between ``u`` and ``v``.

        Args:
            u: First endpoint (must already be a node).
            v: Second endpoint (must already be a node).
            capacity_bps: Capacity of the ``u -> v`` arc in bits per second.
            latency_s: One-way propagation latency, identical in both
                directions.
            reverse_capacity_bps: Capacity of the ``v -> u`` arc; defaults to
                ``capacity_bps`` (links are usually symmetric but the paper
                notes they need not be).
            length_km: Physical length used by amplifier power models.

        Raises:
            UnknownNodeError: If either endpoint is not a node.
            DuplicateElementError: If the link already exists.
            TopologyError: If ``u == v`` or a capacity is not positive.
        """
        if u == v:
            raise TopologyError(f"self-loops are not allowed: {u!r}")
        for endpoint in (u, v):
            if endpoint not in self._nodes:
                raise UnknownNodeError(endpoint)
        if capacity_bps <= 0:
            raise TopologyError(f"capacity must be positive, got {capacity_bps}")
        reverse = capacity_bps if reverse_capacity_bps is None else reverse_capacity_bps
        if reverse <= 0:
            raise TopologyError(f"reverse capacity must be positive, got {reverse}")
        key = link_key(u, v)
        if key in self._links:
            raise DuplicateElementError(f"link already exists: {u!r} <-> {v!r}")
        link = Link(
            u=u,
            v=v,
            capacity_bps=float(capacity_bps),
            reverse_capacity_bps=float(reverse),
            latency_s=float(latency_s),
            length_km=float(length_km),
        )
        self._links[key] = link
        self._arcs[(u, v)] = Arc(u, v, float(capacity_bps), float(latency_s), float(length_km))
        self._arcs[(v, u)] = Arc(v, u, float(reverse), float(latency_s), float(length_km))
        self._adjacency[u].append(v)
        self._adjacency[v].append(u)
        self._invalidate()
        return link

    def remove_link(self, u: str, v: str) -> None:
        """Remove the undirected link between ``u`` and ``v``.

        Raises:
            UnknownArcError: If no such link exists.
        """
        key = link_key(u, v)
        if key not in self._links:
            raise UnknownArcError(u, v)
        del self._links[key]
        del self._arcs[(u, v)]
        del self._arcs[(v, u)]
        self._adjacency[u].remove(v)
        self._adjacency[v].remove(u)
        self._invalidate()

    def _invalidate(self) -> None:
        self._nx_cache = None

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    @property
    def num_links(self) -> int:
        """Number of undirected links."""
        return len(self._links)

    @property
    def num_arcs(self) -> int:
        """Number of directed arcs (twice the number of links)."""
        return len(self._arcs)

    def nodes(self) -> List[str]:
        """All node names, in insertion order."""
        return list(self._nodes)

    def node(self, name: str) -> Node:
        """Return the :class:`Node` record for *name*."""
        try:
            return self._nodes[name]
        except KeyError:
            raise UnknownNodeError(name) from None

    def has_node(self, name: str) -> bool:
        """Whether *name* is a node of this topology."""
        return name in self._nodes

    def routers(self) -> List[str]:
        """Node names whose kind is not ``"host"``."""
        return [n for n, rec in self._nodes.items() if rec.kind != "host"]

    def hosts(self) -> List[str]:
        """Node names whose kind is ``"host"``."""
        return [n for n, rec in self._nodes.items() if rec.kind == "host"]

    def nodes_at_level(self, level: str) -> List[str]:
        """Node names whose ``level`` attribute equals *level*."""
        return [n for n, rec in self._nodes.items() if rec.level == level]

    def arcs(self) -> List[Arc]:
        """All directed arcs."""
        return list(self._arcs.values())

    def arc(self, src: str, dst: str) -> Arc:
        """Return the directed arc ``src -> dst``."""
        try:
            return self._arcs[(src, dst)]
        except KeyError:
            raise UnknownArcError(src, dst) from None

    def has_arc(self, src: str, dst: str) -> bool:
        """Whether the directed arc ``src -> dst`` exists."""
        return (src, dst) in self._arcs

    def arc_keys(self) -> List[Tuple[str, str]]:
        """The ``(src, dst)`` keys of all directed arcs."""
        return list(self._arcs)

    def links(self) -> List[Link]:
        """All undirected links."""
        return list(self._links.values())

    def link(self, u: str, v: str) -> Link:
        """Return the undirected link between ``u`` and ``v``."""
        try:
            return self._links[link_key(u, v)]
        except KeyError:
            raise UnknownArcError(u, v) from None

    def has_link(self, u: str, v: str) -> bool:
        """Whether an undirected link between ``u`` and ``v`` exists."""
        return link_key(u, v) in self._links

    def link_keys(self) -> List[Tuple[str, str]]:
        """Canonical keys of all undirected links."""
        return list(self._links)

    def neighbors(self, node: str) -> List[str]:
        """Adjacent node names of *node*."""
        if node not in self._adjacency:
            raise UnknownNodeError(node)
        return list(self._adjacency[node])

    def degree(self, node: str) -> int:
        """Number of links incident to *node*."""
        if node not in self._adjacency:
            raise UnknownNodeError(node)
        return len(self._adjacency[node])

    def outgoing_arcs(self, node: str) -> List[Arc]:
        """Arcs originating at *node* (the paper's ``A_i``)."""
        if node not in self._adjacency:
            raise UnknownNodeError(node)
        return [self._arcs[(node, nbr)] for nbr in self._adjacency[node]]

    def incident_links(self, node: str) -> List[Link]:
        """Undirected links incident to *node*."""
        if node not in self._adjacency:
            raise UnknownNodeError(node)
        return [self._links[link_key(node, nbr)] for nbr in self._adjacency[node]]

    def total_capacity_bps(self, node: str) -> float:
        """Combined capacity of all arcs originating at *node*.

        Used by the capacity-based gravity traffic model.
        """
        return sum(arc.capacity_bps for arc in self.outgoing_arcs(node))

    # ------------------------------------------------------------------ #
    # Graph algorithms
    # ------------------------------------------------------------------ #
    def to_networkx(self) -> nx.DiGraph:
        """Return (and cache) a directed :mod:`networkx` view of the topology.

        Arc attributes: ``capacity`` (bps), ``latency`` (s) and ``invcap``
        (the Cisco-recommended OSPF weight, inverse of capacity).
        """
        if self._nx_cache is None:
            graph = nx.DiGraph(name=self.name)
            for name, record in self._nodes.items():
                graph.add_node(name, kind=record.kind, level=record.level)
            for (src, dst), arc in self._arcs.items():
                graph.add_edge(
                    src,
                    dst,
                    capacity=arc.capacity_bps,
                    latency=arc.latency_s,
                    invcap=1.0 / arc.capacity_bps,
                )
            self._nx_cache = graph
        return self._nx_cache

    def to_undirected_networkx(self) -> nx.Graph:
        """Return an undirected :mod:`networkx` view (one edge per link)."""
        graph = nx.Graph(name=self.name)
        for name, record in self._nodes.items():
            graph.add_node(name, kind=record.kind, level=record.level)
        for link in self._links.values():
            graph.add_edge(
                link.u,
                link.v,
                capacity=link.capacity_bps,
                latency=link.latency_s,
            )
        return graph

    def is_connected(self) -> bool:
        """Whether the topology is connected (ignoring direction)."""
        if not self._nodes:
            return True
        return nx.is_connected(self.to_undirected_networkx())

    def shortest_path(
        self, origin: str, destination: str, weight: str = "invcap"
    ) -> List[str]:
        """Shortest path between two nodes using the given arc weight.

        Args:
            origin: Path origin.
            destination: Path destination.
            weight: Arc attribute used as the additive weight.  ``"invcap"``
                reproduces the Cisco-recommended OSPF setting, ``"latency"``
                yields the propagation-delay-shortest path and ``None``
                (the string ``"hops"``) counts hops.

        Raises:
            PathNotFoundError: If the destination is unreachable.
        """
        from ..exceptions import PathNotFoundError

        for endpoint in (origin, destination):
            if endpoint not in self._nodes:
                raise UnknownNodeError(endpoint)
        graph = self.to_networkx()
        weight_attr = None if weight in (None, "hops") else weight
        try:
            return nx.shortest_path(graph, origin, destination, weight=weight_attr)
        except nx.NetworkXNoPath:
            raise PathNotFoundError(origin, destination) from None

    def path_latency(self, path: Iterable[str]) -> float:
        """Sum of per-arc propagation latencies along a node path."""
        nodes = list(path)
        total = 0.0
        for src, dst in zip(nodes, nodes[1:], strict=False):
            total += self.arc(src, dst).latency_s
        return total

    def path_capacity(self, path: Iterable[str]) -> float:
        """Bottleneck (minimum) arc capacity along a node path."""
        nodes = list(path)
        if len(nodes) < 2:
            return float("inf")
        return min(
            self.arc(src, dst).capacity_bps
            for src, dst in zip(nodes, nodes[1:], strict=False)
        )

    def validate_path(self, path: Iterable[str]) -> bool:
        """Whether every consecutive pair in *path* is an existing arc."""
        nodes = list(path)
        if not nodes:
            return False
        if any(node not in self._nodes for node in nodes):
            return False
        return all(self.has_arc(src, dst) for src, dst in zip(nodes, nodes[1:], strict=False))

    # ------------------------------------------------------------------ #
    # Derived topologies
    # ------------------------------------------------------------------ #
    def copy(self, name: Optional[str] = None) -> "Topology":
        """Return a deep copy of this topology."""
        clone = Topology(name or self.name)
        for record in self._nodes.values():
            clone.add_node(
                record.name,
                kind=record.kind,
                level=record.level,
                always_powered=record.always_powered,
            )
        for link in self._links.values():
            clone.add_link(
                link.u,
                link.v,
                capacity_bps=link.capacity_bps,
                latency_s=link.latency_s,
                reverse_capacity_bps=link.reverse_capacity_bps,
                length_km=link.length_km,
            )
        return clone

    def subgraph(
        self,
        active_nodes: Iterable[str],
        active_links: Optional[Iterable[Tuple[str, str]]] = None,
        name: Optional[str] = None,
    ) -> "Topology":
        """Return the topology induced by a set of active nodes and links.

        Links whose endpoints are both active are kept unless *active_links*
        is given, in which case only the listed links (canonical keys) are
        kept.  This mirrors constraint (1) of the paper: links attached to a
        powered-off router are inactive.
        """
        active_node_set = set(active_nodes)
        unknown = active_node_set - set(self._nodes)
        if unknown:
            raise UnknownNodeError(min(unknown))
        keep_links = (
            None
            if active_links is None
            else {link_key(u, v) for (u, v) in active_links}
        )
        clone = Topology(name or f"{self.name}-subset")
        for node_name in self._nodes:
            if node_name in active_node_set:
                record = self._nodes[node_name]
                clone.add_node(
                    record.name,
                    kind=record.kind,
                    level=record.level,
                    always_powered=record.always_powered,
                )
        for key, link in self._links.items():
            if link.u not in active_node_set or link.v not in active_node_set:
                continue
            if keep_links is not None and key not in keep_links:
                continue
            clone.add_link(
                link.u,
                link.v,
                capacity_bps=link.capacity_bps,
                latency_s=link.latency_s,
                reverse_capacity_bps=link.reverse_capacity_bps,
                length_km=link.length_km,
            )
        return clone

    # ------------------------------------------------------------------ #
    # Dunders
    # ------------------------------------------------------------------ #
    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(name={self.name!r}, nodes={self.num_nodes}, "
            f"links={self.num_links})"
        )
