"""The scenario engine: build and run declarative experiment specs.

:func:`build_scenario` resolves a :class:`~repro.scenario.spec.ScenarioSpec`
against the component registry into a concrete stack (topology, power model,
traffic trace, pairs, optional baseline routing).  :func:`run_scenario`
drives the spec's schemes over the merged event/trace timeline
(:func:`~repro.scenario.timeline.run_timeline`) and returns a uniform
:class:`ScenarioResult` — including, for eventful scenarios, the fired
events and per-event reaction metrics.  :func:`run_scenario_dict` is the
importable module-level entry point sweeps and worker processes resolve,
which is what makes a spec's
:meth:`~repro.scenario.spec.ScenarioSpec.config_hash` a sweep-cache key.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from ..obs import trace
from ..power.accounting import full_power
from ..power.model import PowerModel
from ..routing.paths import RoutingTable
from ..topology.base import Topology
from ..traffic.matrix import Pair, TrafficMatrix
from ..traffic.replay import TrafficTrace
from .components import BuiltTraffic, as_built_traffic
from .schemes import SchemeOutcome
from .spec import ScenarioSpec
from .spill import SeriesSpill
from .timeline import GroupComputeCache, TimelineRun, run_timeline, run_timeline_batch


@dataclass
class BuiltScenario:
    """A spec resolved into concrete objects, ready to run.

    Attributes:
        spec: The declarative spec this stack was built from.
        topology: The physical network.
        power_model: The device power model.
        trace: The demand trace (a single matrix is a one-interval trace).
        pairs: Origin-destination pairs of the workload, shared with plan
            construction.
        baseline_power_w: Power of the fully powered network (100 %).
        routing: Optional baseline routing table (spec's ``routing`` section).
        traffic: The full built workload, including its peak estimate.
    """

    spec: ScenarioSpec
    topology: Topology
    power_model: PowerModel
    trace: TrafficTrace
    pairs: List[Pair]
    baseline_power_w: float
    routing: Optional[RoutingTable] = None
    traffic: Optional[BuiltTraffic] = None
    #: Group-shared computation cache, set by the batch planner when this
    #: scenario runs as part of a batched group (see
    #: :class:`~repro.scenario.timeline.GroupComputeCache`); ``None`` for
    #: solo runs.  Scheme runtimes treat it as optional.
    shared: Optional[Any] = None

    @property
    def utilisation_threshold(self) -> float:
        """The spec's utilisation SLO (schemes may override it per-scheme)."""
        return self.spec.utilisation_threshold

    def peak_matrix(self) -> TrafficMatrix:
        """The workload's peak demand estimate."""
        if self.traffic is not None:
            return self.traffic.peak()
        return self.trace.peak_matrix()


@dataclass
class ScenarioResult:
    """Uniform outcome of :func:`run_scenario`.

    Attributes:
        name: The scenario name (from the spec).
        config_hash: The spec's sweep-cache hash — two runs with equal
            hashes are the same experiment.
        times_s: Interval start times of the replayed trace.
        power_percent: Per-scheme power series (% of the original network),
            keyed by scheme label.
        recomputations: Per-scheme count of active-configuration changes
            during the replay.
        max_utilisation: Per-scheme largest arc utilisation per interval
            (empty list where the scheme does not track it).
        spec: The plain-dict spec the scenario was built from.
        events: Every dynamic event that took effect during the replay
            (JSON-ready records, in firing order; empty for event-free runs).
        compute_seconds: Per-scheme wall-clock cost of each timeline step —
            the recomputation-latency proxy (how long the scheme took to
            react to the interval's demand/topology).
        violations: Per-scheme booleans per interval: whether the scheme's
            max utilisation exceeded the spec's SLO (only schemes that track
            utilisation appear).
        reaction: Per-scheme reaction records, one per fired event: the
            event, the interval it hit, and the scheme's post-event power,
            utilisation, violation flag and step latency.
    """

    name: str
    config_hash: str
    times_s: List[float]
    power_percent: Dict[str, List[float]]
    recomputations: Dict[str, int]
    max_utilisation: Dict[str, List[float]] = field(default_factory=dict)
    spec: Dict[str, Any] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)
    compute_seconds: Dict[str, List[float]] = field(default_factory=dict)
    violations: Dict[str, List[bool]] = field(default_factory=dict)
    reaction: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)

    def mean_power_percent(self, label: str) -> float:
        """Average power of a scheme over the replay."""
        series = self.power_percent[label]
        return sum(series) / len(series) if series else 0.0

    def mean_savings_percent(self, label: str) -> float:
        """Average savings of a scheme relative to the full network."""
        return 100.0 - self.mean_power_percent(label)

    def labels(self) -> List[str]:
        """Scheme labels, in spec order."""
        return list(self.power_percent)

    def rows(self) -> List[tuple]:
        """Report rows: one ``(time, power per scheme...)`` tuple per interval."""
        labels = self.labels()
        return [
            (time,) + tuple(self.power_percent[label][index] for label in labels)
            for index, time in enumerate(self.times_s)
        ]

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-scheme headline numbers (mean power/savings, recomputations)."""
        return {
            label: {
                "mean_power_percent": self.mean_power_percent(label),
                "mean_savings_percent": self.mean_savings_percent(label),
                "recomputations": float(self.recomputations.get(label, 0)),
            }
            for label in self.labels()
        }

    def headline_metrics(self) -> Dict[str, Dict[str, float]]:
        """Flattened per-scheme scalar metrics for stores and reports.

        Extends :meth:`summary` with the utilisation/SLO and timing series
        reduced to scalars — the rows the campaign store's ``metrics`` table
        holds, so whole grids aggregate without re-parsing result JSON.
        Only metrics the scheme actually tracked appear (e.g. no
        ``peak_utilisation`` for schemes without a utilisation series).
        """
        metrics: Dict[str, Dict[str, float]] = {}
        for label in self.labels():
            entry = {
                "mean_power_percent": self.mean_power_percent(label),
                "mean_savings_percent": self.mean_savings_percent(label),
                "recomputations": float(self.recomputations.get(label, 0)),
            }
            utilisation = self.max_utilisation.get(label)
            if utilisation:
                entry["peak_utilisation"] = max(utilisation)
            violations = self.violations.get(label)
            if violations is not None:
                entry["violation_intervals"] = float(sum(violations))
            compute = self.compute_seconds.get(label)
            if compute:
                # Wall-clock: useful for latency reports, excluded from
                # determinism-sensitive store comparisons.
                entry["mean_compute_s"] = sum(compute) / len(compute)
                entry["total_compute_s"] = sum(compute)
            reactions = self.reaction.get(label)
            if reactions:
                entry["reaction_events"] = float(len(reactions))
            metrics[label] = entry
        return metrics

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready view of the result."""
        return {
            "name": self.name,
            "config_hash": self.config_hash,
            "times_s": list(self.times_s),
            "power_percent": {k: list(v) for k, v in self.power_percent.items()},
            "recomputations": dict(self.recomputations),
            "max_utilisation": {k: list(v) for k, v in self.max_utilisation.items()},
            "spec": self.spec,
            "events": [dict(event) for event in self.events],
            "compute_seconds": {k: list(v) for k, v in self.compute_seconds.items()},
            "violations": {k: list(v) for k, v in self.violations.items()},
            "reaction": {
                k: [dict(record) for record in v] for k, v in self.reaction.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioResult":
        """Rebuild a result from :meth:`to_dict` output (e.g. a ``--output`` file)."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"a scenario result must be a mapping, got {data!r}"
            )
        missing = {"name", "config_hash", "times_s", "power_percent"} - set(data)
        if missing:
            raise ConfigurationError(
                f"scenario result is missing fields: {sorted(missing)}"
            )
        return cls(
            name=str(data["name"]),
            config_hash=str(data["config_hash"]),
            times_s=[float(t) for t in data["times_s"]],
            power_percent={
                str(k): [float(x) for x in v]
                for k, v in data["power_percent"].items()
            },
            recomputations={
                str(k): int(v) for k, v in data.get("recomputations", {}).items()
            },
            max_utilisation={
                str(k): [float(x) for x in v]
                for k, v in data.get("max_utilisation", {}).items()
            },
            spec=dict(data.get("spec", {})),
            events=[dict(event) for event in data.get("events", [])],
            compute_seconds={
                str(k): [float(x) for x in v]
                for k, v in data.get("compute_seconds", {}).items()
            },
            violations={
                str(k): [bool(x) for x in v]
                for k, v in data.get("violations", {}).items()
            },
            reaction={
                str(k): [dict(record) for record in v]
                for k, v in data.get("reaction", {}).items()
            },
        )


def _coerce_spec(spec: Any) -> ScenarioSpec:
    if isinstance(spec, ScenarioSpec):
        return spec
    if isinstance(spec, Mapping):
        return ScenarioSpec.from_dict(spec)
    raise ConfigurationError(
        f"expected a ScenarioSpec or a spec mapping, got {type(spec).__qualname__}"
    )


def build_scenario(
    spec: Any,
    topology: Optional[Topology] = None,
    power_model: Optional[PowerModel] = None,
) -> BuiltScenario:
    """Resolve a spec into a runnable stack.

    Args:
        spec: A :class:`ScenarioSpec` or its dict form.
        topology: Programmatic override — drivers whose public signature
            accepts a prebuilt :class:`Topology` pass it here instead of
            expressing it as a spec.
        power_model: Programmatic override for the power model, likewise.

    Returns:
        The :class:`BuiltScenario` with every component constructed.
    """
    scenario_spec = _coerce_spec(spec).validate()
    with trace.span("scenario.build", scenario=scenario_spec.name):
        topo = (
            topology
            if topology is not None
            else scenario_spec.topology.build()
        )
        model = (
            power_model
            if power_model is not None
            else scenario_spec.power.build(topo)
        )
        built = as_built_traffic(
            scenario_spec.traffic.build(topo), scenario_spec.traffic.name
        )
        routing = None
        if scenario_spec.routing is not None:
            routing = scenario_spec.routing.build(topo, built.pairs)
        return BuiltScenario(
            spec=scenario_spec,
            topology=topo,
            power_model=model,
            trace=built.trace,
            pairs=list(built.pairs),
            baseline_power_w=full_power(topo, model).total_w,
            routing=routing,
            traffic=built,
        )


def run_scenario(
    spec: Any,
    topology: Optional[Topology] = None,
    power_model: Optional[PowerModel] = None,
) -> ScenarioResult:
    """Build a spec's stack and replay its trace under every scheme.

    This is the single entry point behind the figure drivers, the
    ``run-scenario`` CLI subcommand and ad-hoc sweeps: any composition of
    registered topology × traffic × power × schemes runs through here.
    """
    scenario_spec = _coerce_spec(spec)
    if not scenario_spec.schemes:
        raise ConfigurationError(
            "the scenario names no schemes; add at least one to its 'schemes' list"
        )
    built = build_scenario(scenario_spec, topology=topology, power_model=power_model)
    return run_built_scenario(built)


def run_built_scenario(
    built: BuiltScenario,
    on_interval: Optional[Any] = None,
    spill_path: Optional[Any] = None,
) -> ScenarioResult:
    """Drive an already-built scenario's schemes over its merged timeline.

    Args:
        built: The built scenario.
        on_interval: Optional streaming hook forwarded to
            :func:`~repro.scenario.timeline.run_timeline` — called once per
            interval with the step and its per-scheme outcomes, which is how
            the scenario service pushes live replay telemetry while the
            returned result stays bit-identical to an offline run.
        spill_path: Optional path for a per-interval NDJSON spill sidecar
            (see :mod:`repro.scenario.spill`): the replay holds at most one
            interval's series state in memory and the returned result reads
            its series back from the sidecar — bit-identical to an
            in-memory run, except for the wall-clock ``compute_seconds``.
    """
    spill = SeriesSpill(spill_path) if spill_path is not None else None
    with trace.span("timeline.run", scenario=built.spec.name):
        run = run_timeline(built, on_interval=on_interval, spill=spill)
    return _result_from_run(built, run)


def _result_from_run(built: BuiltScenario, run: TimelineRun) -> ScenarioResult:
    """Assemble the uniform result from a completed timeline run."""
    threshold = built.spec.utilisation_threshold
    utilisation = {
        label: scheme_run.max_utilisation() for label, scheme_run in run.schemes.items()
    }
    return ScenarioResult(
        name=built.spec.name,
        config_hash=built.spec.config_hash(),
        times_s=run.times_s,
        power_percent={
            label: scheme_run.power_percent()
            for label, scheme_run in run.schemes.items()
        },
        recomputations={
            label: scheme_run.recomputations
            for label, scheme_run in run.schemes.items()
        },
        max_utilisation={label: series for label, series in utilisation.items() if series},
        spec=built.spec.to_dict(),
        events=run.events,
        compute_seconds={
            label: scheme_run.compute_seconds()
            for label, scheme_run in run.schemes.items()
        },
        violations={
            label: [value > threshold + 1e-9 for value in series]
            for label, series in utilisation.items()
            if series
        },
        reaction={label: records for label, records in run.reaction.items() if records},
    )


def run_scenario_dict(spec: Mapping[str, Any]) -> ScenarioResult:
    """Run a scenario given as a plain dict (the sweep-point entry).

    This module-level function is what
    :meth:`~repro.scenario.spec.ScenarioSpec.sweep_point` references: worker
    processes re-import it by name, and its single ``spec`` parameter is
    canonicalised by :meth:`~repro.experiments.runner.SweepPoint.config_hash`
    — equal specs hash (and cache) identically across processes.
    """
    return run_scenario(ScenarioSpec.from_dict(spec))


def _section_key(section: Any) -> str:
    """A canonical JSON key for one section of a spec dict."""
    return json.dumps(section, sort_keys=True, separators=(",", ":"))


def build_scenario_group(specs: Sequence[Any]) -> List[BuiltScenario]:
    """Build many specs as one group, sharing everything shareable.

    All specs must declare identical ``topology``, ``power`` and ``routing``
    sections (the batch planner's grouping key guarantees this).  The group
    shares one built :class:`Topology` and :class:`PowerModel` object, one
    baseline-power evaluation, one built workload per distinct traffic
    section and one routing table per distinct (routing, pairs) combination.
    Every returned :class:`BuiltScenario` carries the same
    :class:`~repro.scenario.timeline.GroupComputeCache` in ``shared``, which
    scheme runtimes use to reuse candidate paths, plans and solver calls
    across the group's points.

    Because the shared objects are built by exactly the same calls a solo
    :func:`build_scenario` would make, each returned scenario runs
    bit-identically to its solo build.
    """
    scenario_specs = [_coerce_spec(spec).validate() for spec in specs]
    if not scenario_specs:
        return []
    head = scenario_specs[0].to_dict()
    for scenario_spec in scenario_specs[1:]:
        other = scenario_spec.to_dict()
        for section in ("topology", "power", "routing"):
            if _section_key(head.get(section)) != _section_key(other.get(section)):
                raise ConfigurationError(
                    f"cannot group scenarios with differing {section!r} sections"
                )

    with trace.span("scenario.build", group_size=len(scenario_specs)):
        shared_topology = scenario_specs[0].topology.build()
        shared_model = scenario_specs[0].power.build(shared_topology)
        baseline_power_w = full_power(shared_topology, shared_model).total_w
        shared_cache = GroupComputeCache()

        traffic_cache: Dict[str, BuiltTraffic] = {}
        routing_cache: Dict[Tuple[str, Tuple[Pair, ...]], RoutingTable] = {}
        builts: List[BuiltScenario] = []
        for scenario_spec in scenario_specs:
            spec_dict = scenario_spec.to_dict()
            traffic_key = _section_key(spec_dict.get("traffic"))
            built_traffic = traffic_cache.get(traffic_key)
            if built_traffic is None:
                built_traffic = as_built_traffic(
                    scenario_spec.traffic.build(shared_topology),
                    scenario_spec.traffic.name,
                )
                traffic_cache[traffic_key] = built_traffic
            routing = None
            if scenario_spec.routing is not None:
                routing_key = (
                    _section_key(spec_dict.get("routing")),
                    tuple(built_traffic.pairs),
                )
                routing = routing_cache.get(routing_key)
                if routing is None:
                    routing = scenario_spec.routing.build(
                        shared_topology, built_traffic.pairs
                    )
                    routing_cache[routing_key] = routing
            builts.append(
                BuiltScenario(
                    spec=scenario_spec,
                    topology=shared_topology,
                    power_model=shared_model,
                    trace=built_traffic.trace,
                    pairs=list(built_traffic.pairs),
                    baseline_power_w=baseline_power_w,
                    routing=routing,
                    traffic=built_traffic,
                    shared=shared_cache,
                )
            )
        return builts


def run_built_scenarios_batch(builts: Sequence[BuiltScenario]) -> List[ScenarioResult]:
    """Run a group of built scenarios through one interval-major pass.

    The companion to :func:`build_scenario_group`: all scenarios' timelines
    advance together (see
    :func:`~repro.scenario.timeline.run_timeline_batch`), so group-shared
    caches stay hot across points.  Each result is assembled exactly as
    :func:`run_built_scenario` would.
    """
    for built in builts:
        if not built.spec.schemes:
            raise ConfigurationError(
                "the scenario names no schemes; add at least one to its"
                " 'schemes' list"
            )
    with trace.span("timeline.run", group_size=len(builts)):
        runs = run_timeline_batch(builts)
    return [_result_from_run(built, run) for built, run in zip(builts, runs, strict=True)]


def scheme_outcomes(built: BuiltScenario) -> Dict[str, SchemeOutcome]:
    """Run every scheme of a built scenario, returning the raw outcomes.

    For drivers that need scheme ``details`` (per-interval solutions,
    activation objects) rather than the uniform :class:`ScenarioResult`.
    The schemes run through the same timeline engine as
    :func:`run_scenario`.
    """
    with trace.span("timeline.run", scenario=built.spec.name):
        run = run_timeline(built)
    return {
        label: SchemeOutcome(
            power_percent=scheme_run.power_percent(),
            recomputations=scheme_run.recomputations,
            max_utilisation=scheme_run.max_utilisation(),
            details=scheme_run.details,
        )
        for label, scheme_run in run.schemes.items()
    }
