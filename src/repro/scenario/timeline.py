"""The event-driven timeline engine.

The replay loop used to be monolithic: every scheme rebuilt its
routing/solver state from scratch for each trace interval and nothing could
change mid-run.  This module replaces it with a **stateful timeline**:

* a :class:`Timeline` merges the trace's intervals with the scenario's
  dynamic :class:`~repro.scenario.spec.EventSpec` axis — link/node failures
  and repairs (driven through
  :meth:`~repro.simulator.failures.FailureSchedule.due`, so interval-edge
  events fire exactly once) plus traffic surges — into a sequence of
  :class:`TimelineStep` objects, each carrying the interval's (possibly
  surged) matrix and the failure-adjusted
  :class:`~repro.simulator.failures.TopologyView`;
* every scheme runs as a :class:`SchemeRuntime` — ``start(scenario)``
  builds long-lived state once (REsPoNse plans, candidate-path caches),
  ``step(state, t, matrix, view)`` advances one interval incrementally and
  returns an :class:`IntervalOutcome`;
* :func:`run_timeline` drives each runtime over the steps, times every step
  (the recomputation-latency proxy) and assembles per-event reaction
  records.

Event-free timelines are bit-identical to the pre-timeline replay: runtimes
only *reuse* state (precomputed plans, cached candidates, unchanged-input
memoisation), they never change what is computed.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..exceptions import ConfigurationError
from ..obs import trace
from ..simulator.failures import (
    FailureSchedule,
    LinkEvent,
    NodeEvent,
    TopologyView,
)
from ..topology.base import link_key
from ..traffic.matrix import Pair, TrafficMatrix
from .registry import register, resolve
from .spec import EventSpec, SchemeSpec
from .spill import SeriesSpill

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..topology.base import Topology
    from .engine import BuiltScenario


# --------------------------------------------------------------------- #
# Timeline events
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class TopologyChange:
    """A scheduled failure or repair of a link or node.

    Attributes:
        time_s: When the change takes effect (trace wall-clock seconds).
        element: ``"link"`` or ``"node"``.
        action: ``"fail"`` or ``"repair"``.
        target: ``(u, v)`` for a link, ``(node,)`` for a node.
    """

    time_s: float
    element: str
    action: str
    target: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.element not in ("link", "node"):
            raise ConfigurationError(
                f"topology change element must be 'link' or 'node', got {self.element!r}"
            )
        if self.action not in ("fail", "repair"):
            raise ConfigurationError(
                f"topology change action must be 'fail' or 'repair', got {self.action!r}"
            )

    @property
    def kind(self) -> str:
        """The registry-style event kind, e.g. ``"link-failure"``."""
        suffix = "failure" if self.action == "fail" else "repair"
        return f"{self.element}-{suffix}"

    def to_scheduled(self) -> Union[LinkEvent, NodeEvent]:
        """The simulator-schedule form of this change."""
        if self.element == "link":
            u, v = self.target
            return LinkEvent(self.time_s, (u, v), self.action)
        return NodeEvent(self.time_s, self.target[0], self.action)

    def record(self) -> Dict[str, Any]:
        """A JSON-ready description used in results and reaction metrics."""
        data: Dict[str, Any] = {"time_s": self.time_s, "kind": self.kind}
        if self.element == "link":
            data["link"] = list(self.target)
        else:
            data["node"] = self.target[0]
        return data


@dataclass(frozen=True)
class TrafficSurge:
    """A demand multiplier active over a time window.

    Attributes:
        start_s: First instant the surge applies.
        factor: Multiplier applied to the demand of the affected pairs.
        end_s: First instant the surge no longer applies (``None`` = until
            the end of the trace).
        pairs: Pairs the surge affects (``None`` = every pair).
    """

    start_s: float
    factor: float
    end_s: Optional[float] = None
    pairs: Optional[Tuple[Pair, ...]] = None

    def __post_init__(self) -> None:
        if self.factor < 0:
            raise ConfigurationError(
                f"surge factor must be non-negative, got {self.factor}"
            )
        if self.end_s is not None and self.end_s <= self.start_s:
            raise ConfigurationError(
                f"surge window is empty: start={self.start_s}, end={self.end_s}"
            )

    @property
    def time_s(self) -> float:
        """When the surge begins (for merged-stream ordering)."""
        return self.start_s

    @property
    def kind(self) -> str:
        return "traffic-surge"

    def active_at(self, time_s: float) -> bool:
        """Whether the surge applies at *time_s*."""
        if time_s < self.start_s:
            return False
        return self.end_s is None or time_s < self.end_s

    def apply(self, matrix: TrafficMatrix) -> TrafficMatrix:
        """The matrix with the surge's multiplier applied."""
        if self.pairs is None:
            return matrix.scaled(self.factor, name=f"{matrix.name}-surge")
        affected = set(self.pairs)
        demands = {
            pair: demand * self.factor if pair in affected else demand
            for pair, demand in matrix.items()
        }
        return TrafficMatrix(demands, name=f"{matrix.name}-surge")

    def record(self) -> Dict[str, Any]:
        """A JSON-ready description used in results and reaction metrics."""
        data: Dict[str, Any] = {
            "time_s": self.start_s,
            "kind": self.kind,
            "factor": self.factor,
        }
        if self.end_s is not None:
            data["end_s"] = self.end_s
        if self.pairs is not None:
            data["pairs"] = [list(pair) for pair in self.pairs]
        return data


TimelineEvent = Union[TopologyChange, TrafficSurge]


# --------------------------------------------------------------------- #
# Registered event kinds (the ``events`` axis of a ScenarioSpec)
# --------------------------------------------------------------------- #


def _as_link(link: Sequence[str]) -> Tuple[str, str]:
    if not isinstance(link, (list, tuple)) or len(link) != 2:
        raise ConfigurationError(
            f"a link target must be a [u, v] endpoint pair, got {link!r}"
        )
    return (str(link[0]), str(link[1]))


@register("event", "link-failure")
def _link_failure_event(
    time_s: float, link: Sequence[str], repair_s: Optional[float] = None
) -> List[TopologyChange]:
    """Fail one link at ``time_s`` (optionally auto-repairing at ``repair_s``)."""
    events = [TopologyChange(float(time_s), "link", "fail", _as_link(link))]
    if repair_s is not None:
        if repair_s <= time_s:
            raise ConfigurationError(
                f"repair_s ({repair_s}) must come after time_s ({time_s})"
            )
        events.append(TopologyChange(float(repair_s), "link", "repair", _as_link(link)))
    return events


@register("event", "link-repair")
def _link_repair_event(time_s: float, link: Sequence[str]) -> TopologyChange:
    """Repair one previously failed link at ``time_s``."""
    return TopologyChange(float(time_s), "link", "repair", _as_link(link))


@register("event", "node-failure")
def _node_failure_event(
    time_s: float, node: str, repair_s: Optional[float] = None
) -> List[TopologyChange]:
    """Fail one node (and every incident link) at ``time_s``."""
    events = [TopologyChange(float(time_s), "node", "fail", (str(node),))]
    if repair_s is not None:
        if repair_s <= time_s:
            raise ConfigurationError(
                f"repair_s ({repair_s}) must come after time_s ({time_s})"
            )
        events.append(TopologyChange(float(repair_s), "node", "repair", (str(node),)))
    return events


@register("event", "node-repair")
def _node_repair_event(time_s: float, node: str) -> TopologyChange:
    """Repair one previously failed node at ``time_s``."""
    return TopologyChange(float(time_s), "node", "repair", (str(node),))


@register("event", "traffic-surge")
def _traffic_surge_event(
    start_s: float,
    factor: float = 2.0,
    end_s: Optional[float] = None,
    pairs: Optional[Sequence[Sequence[str]]] = None,
) -> TrafficSurge:
    """Multiply demand by ``factor`` over ``[start_s, end_s)`` (all pairs by default)."""
    selected = (
        None
        if pairs is None
        else tuple((str(origin), str(destination)) for origin, destination in pairs)
    )
    return TrafficSurge(
        float(start_s),
        float(factor),
        end_s=None if end_s is None else float(end_s),
        pairs=selected,
    )


def resolve_events(specs: Sequence[EventSpec]) -> List[TimelineEvent]:
    """Build every event spec, flattening builders that return several events."""
    events: List[TimelineEvent] = []
    for spec in specs:
        built = spec.build()
        items = built if isinstance(built, (list, tuple)) else [built]
        for item in items:
            if not isinstance(item, (TopologyChange, TrafficSurge)):
                raise ConfigurationError(
                    f"event component {spec.name!r} must build TopologyChange/"
                    f"TrafficSurge events, got {type(item).__qualname__}"
                )
            events.append(item)
    return sorted(events, key=lambda event: event.time_s)


def failure_schedule(
    events: Sequence[Union[EventSpec, TimelineEvent]],
) -> FailureSchedule:
    """The flow-level simulator's :class:`FailureSchedule` for these events.

    Accepts raw :class:`EventSpec` entries (resolved through the registry)
    or already-built timeline events; traffic surges have no simulator
    equivalent and are skipped.  This is how simulator-based drivers (e.g.
    Figure 7) source their failures from the scenario's events axis.
    """
    resolved: List[TimelineEvent] = []
    specs = [event for event in events if isinstance(event, EventSpec)]
    resolved.extend(resolve_events(specs))
    resolved.extend(
        event for event in events if isinstance(event, (TopologyChange, TrafficSurge))
    )
    schedule = FailureSchedule()
    for event in sorted(resolved, key=lambda event: event.time_s):
        if isinstance(event, TopologyChange):
            schedule.add(event.to_scheduled())
    return schedule


# --------------------------------------------------------------------- #
# The merged timeline
# --------------------------------------------------------------------- #


def _validate_target(topology: "Topology", event: TopologyChange) -> None:
    """Reject topology events naming elements the topology does not have.

    Validation is eager — it covers every declared event, including ones
    scheduled past the end of the trace that would otherwise never fire
    (a typoed target must not silently turn a failure run into an
    event-free one).
    """
    if event.element == "link":
        if not topology.has_link(*event.target):
            raise ConfigurationError(
                f"{event.kind} event targets unknown link "
                f"{list(event.target)} of topology {topology.name!r}"
            )
    elif not topology.has_node(event.target[0]):
        raise ConfigurationError(
            f"{event.kind} event targets unknown node "
            f"{event.target[0]!r} of topology {topology.name!r}"
        )


@dataclass
class TimelineStep:
    """One interval of the merged trace/event stream.

    Attributes:
        index: Interval index within the trace.
        time_s: Interval start time.
        matrix: The interval's demand matrix, surges applied.
        view: The failure-adjusted topology in effect during the interval.
        fired: JSON-ready records of the events that took effect at this
            step (empty for ordinary intervals).
    """

    index: int
    time_s: float
    matrix: TrafficMatrix
    view: TopologyView
    fired: List[Dict[str, Any]] = field(default_factory=list)


class Timeline:
    """The merged stream of trace intervals and dynamic events."""

    def __init__(self, steps: List[TimelineStep], events: List[TimelineEvent]):
        self.steps = steps
        self.events = events

    @property
    def has_events(self) -> bool:
        """Whether the scenario declares any dynamic events at all."""
        return bool(self.events)

    def fired_records(self) -> List[Dict[str, Any]]:
        """Every event that actually took effect, in firing order."""
        return [dict(record) for step in self.steps for record in step.fired]

    def __len__(self) -> int:
        return len(self.steps)


def build_timeline(topology: "Topology", trace, events: Sequence[EventSpec]) -> Timeline:
    """Merge a trace with an event axis into concrete timeline steps.

    Topology events are driven through
    :meth:`~repro.simulator.failures.FailureSchedule.due` over the
    half-open windows between consecutive interval starts (the first window
    opens at ``-inf`` so events at or before the trace start apply to the
    first interval).  Views are cached by failure state, so repeated states
    share one :class:`TopologyView` object — and therefore one derived
    topology, keeping per-topology solver caches warm.
    """
    resolved = resolve_events(events)
    surges = [event for event in resolved if isinstance(event, TrafficSurge)]
    schedule = FailureSchedule()
    for event in resolved:
        if isinstance(event, TopologyChange):
            _validate_target(topology, event)
            schedule.add(event.to_scheduled())
    change_by_schedule = {
        event.to_scheduled(): event
        for event in resolved
        if isinstance(event, TopologyChange)
    }

    steps: List[TimelineStep] = []
    failed_links: set = set()
    failed_nodes: set = set()
    views: Dict[Tuple[frozenset, frozenset], TopologyView] = {}
    previous_t = -math.inf
    active_surges: set = set()
    for index, interval in enumerate(trace):
        t = interval.start_s
        fired: List[Dict[str, Any]] = []
        for scheduled in schedule.due(previous_t, t):
            change = change_by_schedule[scheduled]
            if isinstance(scheduled, LinkEvent):
                key = link_key(*scheduled.link)
                if scheduled.kind == "fail":
                    failed_links.add(key)
                else:
                    failed_links.discard(key)
            else:
                if scheduled.kind == "fail":
                    failed_nodes.add(scheduled.node)
                else:
                    failed_nodes.discard(scheduled.node)
            fired.append(change.record())

        matrix = interval.matrix
        for surge in surges:
            if surge.active_at(t):
                matrix = surge.apply(matrix)
                if surge not in active_surges:
                    active_surges.add(surge)
                    fired.append(surge.record())
            else:
                active_surges.discard(surge)

        state_key = (frozenset(failed_links), frozenset(failed_nodes))
        if state_key not in views:
            views[state_key] = TopologyView(
                topology, failed_links=state_key[0], failed_nodes=state_key[1]
            )
        steps.append(
            TimelineStep(
                index=index,
                time_s=t,
                matrix=matrix,
                view=views[state_key],
                fired=fired,
            )
        )
        previous_t = t
    return Timeline(steps, resolved)


# --------------------------------------------------------------------- #
# Scheme runtimes
# --------------------------------------------------------------------- #


@dataclass
class IntervalOutcome:
    """What one scheme produced for one timeline step.

    Attributes:
        power_percent: Power of the interval's active subset (% of the
            fully powered network).
        max_utilisation: Largest arc utilisation, where the scheme knows it.
        recomputed: Whether the scheme changed its active-element
            configuration relative to the previous interval (always
            ``False`` on the first step).
        compute_seconds: Wall-clock cost of the step — the recomputation
            latency proxy.  Filled in by :func:`run_timeline`.
    """

    power_percent: float
    max_utilisation: Optional[float] = None
    recomputed: bool = False
    compute_seconds: float = 0.0


class SchemeRuntime:
    """Incremental evaluation protocol for schemes on the timeline.

    ``start(scenario)`` builds the runtime's long-lived state once —
    precomputed plans, candidate-path caches, warm-start memory.
    ``step(state, time_s, matrix, view)`` advances one interval against the
    failure-adjusted :class:`~repro.simulator.failures.TopologyView` and
    returns an :class:`IntervalOutcome`.  ``finish(state)`` returns the
    scheme's ``details`` dict (per-interval solutions, plans, activations)
    for drivers that need more than the uniform series.

    Set :attr:`event_capable` to ``False`` for runtimes that cannot react
    to dynamic events (the timeline refuses to run them on an eventful
    scenario instead of silently ignoring the events).
    """

    #: Whether the runtime understands mid-run events.
    event_capable = True

    def start(self, scenario: "BuiltScenario") -> Any:
        """Build and return the runtime's long-lived state."""
        raise NotImplementedError

    def step(
        self,
        state: Any,
        time_s: float,
        matrix: TrafficMatrix,
        view: TopologyView,
    ) -> IntervalOutcome:
        """Advance one interval; must be callable once per timeline step."""
        raise NotImplementedError

    def finish(self, state: Any) -> Dict[str, Any]:
        """The scheme's ``details`` after the replay (default: none)."""
        return {}

    def recomputations(self, state: Any, outcomes: Sequence[IntervalOutcome]) -> int:
        """Total recomputation count (default: sum of per-step flags)."""
        return sum(1 for outcome in outcomes if outcome.recomputed)


class FunctionRuntime(SchemeRuntime):
    """Adapter wrapping a legacy ``fn(scenario, **params) -> SchemeOutcome``.

    The whole legacy computation runs in :meth:`start`; steps serve the
    precomputed series.  Legacy schemes know nothing about events, so the
    adapter declares itself not event-capable.
    """

    event_capable = False

    def __init__(self, function, params: Mapping[str, Any]):
        self._function = function
        self._params = dict(params)

    def start(self, scenario: "BuiltScenario") -> Dict[str, Any]:
        outcome = self._function(scenario, **self._params)
        if not hasattr(outcome, "power_percent"):
            raise ConfigurationError(
                f"scheme component {self._function!r} must return a SchemeOutcome, "
                f"got {type(outcome).__qualname__}"
            )
        expected = len(scenario.trace)
        if len(outcome.power_percent) != expected:
            raise ConfigurationError(
                f"scheme returned {len(outcome.power_percent)} intervals "
                f"for a {expected}-interval trace"
            )
        return {"outcome": outcome, "index": 0}

    def step(
        self,
        state: Dict[str, Any],
        time_s: float,
        matrix: TrafficMatrix,
        view: TopologyView,
    ) -> IntervalOutcome:
        outcome = state["outcome"]
        index = state["index"]
        state["index"] = index + 1
        utilisation = (
            outcome.max_utilisation[index]
            if index < len(outcome.max_utilisation)
            else None
        )
        return IntervalOutcome(
            power_percent=outcome.power_percent[index],
            max_utilisation=utilisation,
        )

    def finish(self, state: Dict[str, Any]) -> Dict[str, Any]:
        return dict(state["outcome"].details)

    def recomputations(self, state, outcomes) -> int:
        # The legacy outcome carries the authoritative total.
        return int(state["outcome"].recomputations)


def as_runtime(component: Any, params: Mapping[str, Any]) -> SchemeRuntime:
    """Instantiate the runtime behind a registered scheme component.

    A component registered as a :class:`SchemeRuntime` subclass is
    instantiated with the scheme parameters; any other callable is treated
    as a legacy outcome function and wrapped in :class:`FunctionRuntime`.
    """
    if isinstance(component, type) and issubclass(component, SchemeRuntime):
        return component(**params)
    if callable(component):
        return FunctionRuntime(component, params)
    raise ConfigurationError(
        f"a scheme component must be a SchemeRuntime subclass or a callable, "
        f"got {type(component).__qualname__}"
    )


# --------------------------------------------------------------------- #
# Driving the timeline
# --------------------------------------------------------------------- #


@dataclass
class SchemeRun:
    """One scheme's full pass over the timeline."""

    label: str
    outcomes: List[IntervalOutcome]
    details: Dict[str, Any]
    recomputations: int

    def power_percent(self) -> List[float]:
        """The per-interval power series."""
        return [outcome.power_percent for outcome in self.outcomes]

    def max_utilisation(self) -> List[float]:
        """The utilisation series (empty when the scheme never tracked it)."""
        if all(outcome.max_utilisation is None for outcome in self.outcomes):
            return []
        return [
            outcome.max_utilisation if outcome.max_utilisation is not None else 0.0
            for outcome in self.outcomes
        ]

    def compute_seconds(self) -> List[float]:
        """Per-interval step cost (the recomputation-latency proxy)."""
        return [outcome.compute_seconds for outcome in self.outcomes]


@dataclass
class SpilledSchemeRun(SchemeRun):
    """A :class:`SchemeRun` whose per-interval series live in a spill file.

    ``outcomes`` stays empty — the series accessors re-read the NDJSON
    sidecar instead, returning exactly what the in-memory run would have
    (JSON float round-trips are exact), so downstream result assembly is
    bit-identical while resident memory stays bounded during the replay.
    """

    spill: Optional[SeriesSpill] = None

    def _series(self, metric: str) -> List[Any]:
        if self.spill is None:
            raise ConfigurationError(
                f"spilled scheme run {self.label!r} has no spill attached"
            )
        return self.spill.series(self.label, metric)

    def power_percent(self) -> List[float]:
        """The per-interval power series, read back from the spill."""
        return [float(value) for value in self._series("power_percent")]

    def max_utilisation(self) -> List[float]:
        """The utilisation series (same conventions as :class:`SchemeRun`)."""
        raw = self._series("max_utilisation")
        if all(value is None for value in raw):
            return []
        return [float(value) if value is not None else 0.0 for value in raw]

    def compute_seconds(self) -> List[float]:
        """Per-interval step cost, read back from the spill."""
        return [float(value) for value in self._series("compute_seconds")]


@dataclass
class TimelineRun:
    """The result of driving every scheme over one timeline."""

    times_s: List[float]
    events: List[Dict[str, Any]]
    schemes: Dict[str, SchemeRun]
    reaction: Dict[str, List[Dict[str, Any]]]


class GroupComputeCache:
    """Memoised shared computations for a batch of scenarios on one topology.

    The batch planner builds every scenario of a group against the *same*
    topology/power objects and attaches one of these caches to each
    :class:`~repro.scenario.engine.BuiltScenario` (its ``shared`` field).
    Scheme runtimes consult it in ``start``/``step``: the first point of a
    group pays for a REsPoNse plan, a GreenTE solve or an ECMP expansion,
    and every other point whose inputs are the *same objects* reuses the
    value.  Keys embed ``id(...)`` of the shared inputs, so the cache pins
    strong references to them — an id must never outlive its object.

    Sharing never changes a value: a memoised computation is a pure
    function of inputs that are identical (same objects) across the group,
    so each point's results stay bit-identical to a solo run.
    """

    def __init__(self) -> None:
        self._values: Dict[Any, Any] = {}
        self._pins: List[Any] = []

    def memo(self, key: Any, factory, pin: Sequence[Any] = ()) -> Any:
        """The cached value for *key*, computing it via *factory* once."""
        if key not in self._values:
            self._values[key] = factory()
            self._pins.extend(pin)
        return self._values[key]


def _step_scheme(
    runtime: SchemeRuntime,
    state: Any,
    step: TimelineStep,
    threshold: float,
    outcomes: List[IntervalOutcome],
    records: List[Dict[str, Any]],
    label: str = "",
) -> None:
    """Advance one scheme by one timeline step, collecting its records."""
    with trace.span("scheme.step", scheme=label, interval=step.index) as step_span:
        # compute_seconds is the paper's recomputation-latency proxy: a
        # deliberate wall-clock measurement that never feeds results —
        # canonical_dump strips it (pinned by the identity batteries).
        # repro: allow[REP101] compute_seconds latency proxy, stripped from canonical dumps
        started = time.perf_counter()
        outcome = runtime.step(state, step.time_s, step.matrix, step.view)
        # repro: allow[REP101] compute_seconds latency proxy, stripped from canonical dumps
        outcome.compute_seconds = time.perf_counter() - started
        step_span.set(recomputed=outcome.recomputed)
    outcomes.append(outcome)
    for fired in step.fired:
        violation = (
            None
            if outcome.max_utilisation is None
            else bool(outcome.max_utilisation > threshold + 1e-9)
        )
        records.append(
            {
                **fired,
                "interval_index": step.index,
                "interval_s": step.time_s,
                "recomputed": outcome.recomputed,
                "compute_seconds": outcome.compute_seconds,
                "power_percent": outcome.power_percent,
                "max_utilisation": outcome.max_utilisation,
                "violation": violation,
            }
        )


def _spill_metrics(outcome: IntervalOutcome, threshold: float) -> Dict[str, Any]:
    """One scheme's spill-row payload for a completed interval."""
    violation = (
        None
        if outcome.max_utilisation is None
        else bool(outcome.max_utilisation > threshold + 1e-9)
    )
    return {
        "power_percent": outcome.power_percent,
        "max_utilisation": outcome.max_utilisation,
        "violation": violation,
        "recomputed": outcome.recomputed,
        "compute_seconds": outcome.compute_seconds,
    }


def _spilled_recomputations(
    runtime: SchemeRuntime, state: Any, flag_total: int
) -> int:
    """Recomputation total when per-interval outcomes were spilled.

    The base protocol sums per-step flags, which the spill loop already
    accumulated; a runtime overriding :meth:`SchemeRuntime.recomputations`
    (the legacy adapter reads its authoritative total off the state) is
    called with no outcomes instead.
    """
    if type(runtime).recomputations is SchemeRuntime.recomputations:
        return flag_total
    return runtime.recomputations(state, [])


#: Signature of the :func:`run_timeline` streaming hook: called once per
#: timeline step, after every scheme has advanced through it, with the step
#: and that interval's per-scheme outcomes (keyed by scheme label).
IntervalCallback = Any


def run_timeline(
    built: "BuiltScenario",
    schemes: Optional[Sequence[SchemeSpec]] = None,
    on_interval: Optional[IntervalCallback] = None,
    spill: Optional[SeriesSpill] = None,
) -> TimelineRun:
    """Drive every scheme of a built scenario over its merged timeline.

    Args:
        built: The built scenario (its spec supplies trace, events and —
            unless *schemes* overrides them — the scheme list).
        schemes: Optional explicit scheme specs to evaluate instead of the
            spec's own.
        on_interval: Optional streaming hook ``fn(step, outcomes)`` called
            once per :class:`TimelineStep` — after **every** scheme has
            advanced through it — with the interval's per-scheme
            :class:`IntervalOutcome` keyed by label.  With a hook the replay
            runs interval-major (all schemes advance through interval ``i``
            before any sees ``i+1``) so consumers receive whole-interval
            telemetry as it is computed; per scheme the sequence of ``step``
            calls — and therefore every computed value — is exactly the
            scheme-major one, so results stay bit-identical.
        spill: Optional :class:`~repro.scenario.spill.SeriesSpill`.  When
            given, the replay runs interval-major, each completed interval
            is written to the spill's NDJSON sidecar and dropped from
            memory (resident series state stays bounded by one interval),
            and the returned run's schemes are
            :class:`SpilledSchemeRun` objects that read the series back
            from the sidecar — bit-identically.  The spill is closed before
            returning.

    Returns:
        The :class:`TimelineRun` with per-scheme series, fired events and
        per-event reaction records.
    """
    timeline = build_timeline(built.topology, built.trace, built.spec.events)
    scheme_specs = list(schemes if schemes is not None else built.spec.schemes)
    threshold = built.spec.utilisation_threshold

    runs: Dict[str, SchemeRun] = {}
    reaction: Dict[str, List[Dict[str, Any]]] = {}
    if on_interval is not None or spill is not None:
        # Interval-major streaming pass: start every runtime up-front, then
        # advance all schemes one step at a time, handing each completed
        # interval to the hook and/or the spill.  Schemes are independent
        # (each runtime owns its state), so only the interleaving differs
        # from the scheme-major loop below — the batched engine relies on
        # the same property.
        states: List[_BatchSchemeState] = []
        for scheme in scheme_specs:
            component = resolve("scheme", scheme.name)
            runtime = as_runtime(component, scheme.kwargs())
            if timeline.has_events and not runtime.event_capable:
                raise ConfigurationError(
                    f"scheme {scheme.label!r} does not support dynamic events; "
                    "implement it as a SchemeRuntime to use the events axis"
                )
            with trace.span("scheme.start", scheme=scheme.label):
                state = runtime.start(built)
            states.append(
                _BatchSchemeState(spec=scheme, runtime=runtime, state=state)
            )
        recomputed_totals = [0] * len(states)
        for step in timeline.steps:
            with trace.span(
                "timeline.interval", interval=step.index, time_s=step.time_s
            ):
                for scheme_state in states:
                    _step_scheme(
                        scheme_state.runtime,
                        scheme_state.state,
                        step,
                        threshold,
                        scheme_state.outcomes,
                        scheme_state.records,
                        label=scheme_state.spec.label,
                    )
                if on_interval is not None:
                    on_interval(
                        step,
                        {
                            scheme_state.spec.label: scheme_state.outcomes[-1]
                            for scheme_state in states
                        },
                    )
                if spill is not None:
                    spill.write_step(
                        index=step.index,
                        time_s=step.time_s,
                        events=step.fired,
                        schemes={
                            scheme_state.spec.label: _spill_metrics(
                                scheme_state.outcomes[-1], threshold
                            )
                            for scheme_state in states
                        },
                    )
                    # Bounded resident memory: the interval is on disk now.
                    for position, scheme_state in enumerate(states):
                        recomputed_totals[position] += int(
                            scheme_state.outcomes[-1].recomputed
                        )
                        scheme_state.outcomes.clear()
        if spill is not None:
            spill.close()
        for position, scheme_state in enumerate(states):
            label = scheme_state.spec.label
            if spill is not None:
                runs[label] = SpilledSchemeRun(
                    label=label,
                    outcomes=[],
                    details=scheme_state.runtime.finish(scheme_state.state),
                    recomputations=_spilled_recomputations(
                        scheme_state.runtime,
                        scheme_state.state,
                        recomputed_totals[position],
                    ),
                    spill=spill,
                )
            else:
                runs[label] = SchemeRun(
                    label=label,
                    outcomes=scheme_state.outcomes,
                    details=scheme_state.runtime.finish(scheme_state.state),
                    recomputations=scheme_state.runtime.recomputations(
                        scheme_state.state, scheme_state.outcomes
                    ),
                )
            reaction[label] = scheme_state.records
        return TimelineRun(
            times_s=built.trace.timestamps(),
            events=timeline.fired_records(),
            schemes=runs,
            reaction=reaction,
        )
    for scheme in scheme_specs:
        component = resolve("scheme", scheme.name)
        runtime = as_runtime(component, scheme.kwargs())
        if timeline.has_events and not runtime.event_capable:
            raise ConfigurationError(
                f"scheme {scheme.label!r} does not support dynamic events; "
                "implement it as a SchemeRuntime to use the events axis"
            )
        with trace.span("scheme.start", scheme=scheme.label):
            state = runtime.start(built)
        outcomes: List[IntervalOutcome] = []
        records: List[Dict[str, Any]] = []
        for step in timeline.steps:
            _step_scheme(
                runtime, state, step, threshold, outcomes, records,
                label=scheme.label,
            )
        runs[scheme.label] = SchemeRun(
            label=scheme.label,
            outcomes=outcomes,
            details=runtime.finish(state),
            recomputations=runtime.recomputations(state, outcomes),
        )
        reaction[scheme.label] = records
    return TimelineRun(
        times_s=built.trace.timestamps(),
        events=timeline.fired_records(),
        schemes=runs,
        reaction=reaction,
    )


@dataclass
class _BatchSchemeState:
    """One (scenario, scheme) pair being driven through the batched pass."""

    spec: SchemeSpec
    runtime: SchemeRuntime
    state: Any
    outcomes: List[IntervalOutcome] = field(default_factory=list)
    records: List[Dict[str, Any]] = field(default_factory=list)


@dataclass
class _BatchEntry:
    """One scenario of the batch: its timeline plus per-scheme progress."""

    built: "BuiltScenario"
    timeline: Timeline
    threshold: float
    schemes: List[_BatchSchemeState]


def run_timeline_batch(builts: Sequence["BuiltScenario"]) -> List[TimelineRun]:
    """Drive a whole group of built scenarios in one interval-major pass.

    Where :func:`run_timeline` replays one scenario scheme by scheme, this
    advances **all** points of a batch group one interval at a time: every
    runtime is started up-front, then interval ``i`` of every (point,
    scheme) pair runs before interval ``i+1`` of any.  Per (point, scheme)
    the sequence of ``step`` calls — and therefore every computed value —
    is exactly the serial one; only the interleaving across points changes,
    which is what lets a group-shared :class:`GroupComputeCache` (attached
    by the batch planner) convert repeated plan builds and solves into
    lookups.  Wall-clock ``compute_seconds`` are the only fields that can
    differ from a serial run, and every determinism-sensitive comparison
    strips them.
    """
    entries: List[_BatchEntry] = []
    for built in builts:
        timeline = build_timeline(built.topology, built.trace, built.spec.events)
        schemes: List[_BatchSchemeState] = []
        for scheme in built.spec.schemes:
            component = resolve("scheme", scheme.name)
            runtime = as_runtime(component, scheme.kwargs())
            if timeline.has_events and not runtime.event_capable:
                raise ConfigurationError(
                    f"scheme {scheme.label!r} does not support dynamic events; "
                    "implement it as a SchemeRuntime to use the events axis"
                )
            with trace.span("scheme.start", scheme=scheme.label):
                state = runtime.start(built)
            schemes.append(
                _BatchSchemeState(spec=scheme, runtime=runtime, state=state)
            )
        entries.append(
            _BatchEntry(
                built=built,
                timeline=timeline,
                threshold=built.spec.utilisation_threshold,
                schemes=schemes,
            )
        )

    # The interval-major pass.  Traces may differ in length across the
    # group; a shorter point simply stops participating early.
    max_steps = max((len(entry.timeline.steps) for entry in entries), default=0)
    for step_index in range(max_steps):
        with trace.span(
            "timeline.interval", interval=step_index, group_size=len(entries)
        ):
            for entry in entries:
                if step_index >= len(entry.timeline.steps):
                    continue
                step = entry.timeline.steps[step_index]
                for scheme in entry.schemes:
                    _step_scheme(
                        scheme.runtime,
                        scheme.state,
                        step,
                        entry.threshold,
                        scheme.outcomes,
                        scheme.records,
                        label=scheme.spec.label,
                    )

    results: List[TimelineRun] = []
    for entry in entries:
        runs: Dict[str, SchemeRun] = {}
        reaction: Dict[str, List[Dict[str, Any]]] = {}
        for scheme in entry.schemes:
            runs[scheme.spec.label] = SchemeRun(
                label=scheme.spec.label,
                outcomes=scheme.outcomes,
                details=scheme.runtime.finish(scheme.state),
                recomputations=scheme.runtime.recomputations(
                    scheme.state, scheme.outcomes
                ),
            )
            reaction[scheme.spec.label] = scheme.records
        results.append(
            TimelineRun(
                times_s=entry.built.trace.timestamps(),
                events=entry.timeline.fired_records(),
                schemes=runs,
                reaction=reaction,
            )
        )
    return results
