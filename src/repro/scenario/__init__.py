"""Declarative scenarios: registry-backed topology × traffic × power × solver.

The paper's evaluation is a cross-product — topologies × traffic patterns ×
power models × schemes (ECMP / GreenTE-style / ElasticTree / REsPoNse) — and
this package is the single entry point that expresses any point of that
product declaratively:

* :class:`~repro.scenario.spec.ScenarioSpec` and the per-kind component
  specs name every ingredient by its registry name plus plain parameters;
  specs round-trip through dicts/JSON and hash stably for the sweep cache.
* :func:`~repro.scenario.registry.register` adds new components; everything
  the repo ships (fat-tree/GÉANT/Rocketfuel/PoP-access topologies, sine-wave
  /gravity/GÉANT/Google workloads, Cisco/commodity/alternative power models,
  ECMP/GreenTE/ElasticTree/LP/MILP/REsPoNse schemes) is pre-registered.
* :func:`~repro.scenario.engine.build_scenario` /
  :func:`~repro.scenario.engine.run_scenario` resolve and execute a spec,
  returning a uniform :class:`~repro.scenario.engine.ScenarioResult`.

A new scenario is one registration plus one spec — not a new module::

    from repro.scenario import (
        PowerSpec, ScenarioSpec, SchemeSpec, TopologySpec, TrafficSpec,
        run_scenario,
    )

    result = run_scenario(ScenarioSpec(
        name="geant-gravity",
        topology=TopologySpec("geant"),
        traffic=TrafficSpec("gravity", num_pairs=40, num_endpoints=12, seed=1),
        power=PowerSpec("cisco"),
        schemes=(SchemeSpec("response"), SchemeSpec("elastictree")),
    ))
"""

from . import components  # noqa: F401  (populates the registry on import)
from .components import BuiltTraffic, as_built_traffic, select_pairs
from .engine import (
    BuiltScenario,
    ScenarioResult,
    build_scenario,
    run_built_scenario,
    run_scenario,
    run_scenario_dict,
    scheme_outcomes,
)
from .registry import (
    KINDS,
    component_names,
    is_registered,
    register,
    registered_components,
    resolve,
)
from .schemes import (
    CachedCandidatePaths,
    SchemeOutcome,
    greente_replay,
)
from .spec import (
    DEFAULT_UTILISATION_THRESHOLD,
    ComponentSpec,
    EventSpec,
    PowerSpec,
    RoutingSpec,
    ScenarioSpec,
    SchemeSpec,
    TopologySpec,
    TrafficSpec,
)
from .timeline import (
    IntervalOutcome,
    SchemeRuntime,
    Timeline,
    TimelineStep,
    TopologyChange,
    TrafficSurge,
    build_timeline,
    failure_schedule,
    run_timeline,
)

__all__ = [
    "KINDS",
    "DEFAULT_UTILISATION_THRESHOLD",
    "BuiltScenario",
    "BuiltTraffic",
    "CachedCandidatePaths",
    "ComponentSpec",
    "EventSpec",
    "IntervalOutcome",
    "PowerSpec",
    "RoutingSpec",
    "ScenarioResult",
    "ScenarioSpec",
    "SchemeOutcome",
    "SchemeRuntime",
    "SchemeSpec",
    "Timeline",
    "TimelineStep",
    "TopologyChange",
    "TopologySpec",
    "TrafficSpec",
    "TrafficSurge",
    "as_built_traffic",
    "build_scenario",
    "build_timeline",
    "component_names",
    "failure_schedule",
    "greente_replay",
    "is_registered",
    "register",
    "registered_components",
    "resolve",
    "run_built_scenario",
    "run_scenario",
    "run_scenario_dict",
    "run_timeline",
    "scheme_outcomes",
    "select_pairs",
]
