"""String-keyed registry of scenario components.

Every building block a :class:`~repro.scenario.spec.ScenarioSpec` can name —
topologies, traffic workloads, power models, routing tables and evaluation
schemes — is registered here under a ``(kind, name)`` key.  Declaring a new
scenario then never requires a new module: implement a builder, register it
with :func:`register`, and reference it by name from a spec (the pluggable-app
pattern of SDN controller frameworks).

The registry is deliberately dumb: it stores plain callables and knows
nothing about their signatures.  The contracts per kind are documented in
:mod:`repro.scenario.components` (builders) and
:mod:`repro.scenario.schemes` (schemes).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from ..exceptions import ConfigurationError

#: The component kinds a scenario is composed of.
KINDS = ("topology", "traffic", "power", "routing", "scheme", "event")

_REGISTRY: Dict[Tuple[str, str], Callable[..., Any]] = {}


def register(kind: str, name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Class/function decorator registering a component under ``(kind, name)``.

    Example::

        @register("topology", "fattree")
        def _fattree(k: int = 4, **params) -> Topology:
            return build_fattree(k, **params)

    Raises:
        ConfigurationError: On an unknown kind or a duplicate name.
    """
    if kind not in KINDS:
        raise ConfigurationError(
            f"unknown component kind {kind!r}; expected one of {KINDS}"
        )

    def decorator(builder: Callable[..., Any]) -> Callable[..., Any]:
        key = (kind, name)
        if key in _REGISTRY and _REGISTRY[key] is not builder:
            raise ConfigurationError(
                f"{kind} component {name!r} is already registered"
            )
        _REGISTRY[key] = builder
        return builder

    return decorator


def resolve(kind: str, name: str) -> Callable[..., Any]:
    """The builder registered under ``(kind, name)``.

    Raises:
        ConfigurationError: With the list of registered names, so a typo in a
            spec tells the user what is available.
    """
    if kind not in KINDS:
        raise ConfigurationError(
            f"unknown component kind {kind!r}; expected one of {KINDS}"
        )
    try:
        return _REGISTRY[(kind, name)]
    except KeyError:
        known = component_names(kind)
        raise ConfigurationError(
            f"unknown {kind} component {name!r}; registered {kind} components: "
            f"{', '.join(known) if known else '(none)'}"
        ) from None


def component_names(kind: str) -> List[str]:
    """Sorted names registered under *kind*."""
    return sorted(name for (k, name) in _REGISTRY if k == kind)


def registered_components() -> Dict[str, List[str]]:
    """``kind -> sorted names`` for every kind (the ``list-components`` view)."""
    return {kind: component_names(kind) for kind in KINDS}


def is_registered(kind: str, name: str) -> bool:
    """Whether ``(kind, name)`` is registered."""
    return (kind, name) in _REGISTRY
