"""Streamed per-interval series: NDJSON sidecar spill for large timelines.

At engine scale (ISP graphs, 10^5+ flows, long traces) the timeline engine
must not hold every per-interval :class:`~repro.scenario.timeline.IntervalOutcome`
in memory.  :class:`SeriesSpill` reuses the PR 7 interval-major pass: each
completed interval is written as one NDJSON row (power / utilisation /
violation / recomputation / step-cost per scheme, plus fired events) and
the in-memory outcome is dropped, so resident series state is bounded by a
single interval regardless of trace length.

Read-back is transparent: :class:`SpilledSchemeRun` serves the standard
``SchemeRun`` series interface by re-parsing the sidecar, so
:func:`~repro.scenario.engine.run_built_scenario` assembles a
:class:`~repro.scenario.engine.ScenarioResult` — and therefore
``canonical_dump`` — **bit-identically** to an in-memory run: Python's
``repr``-based JSON float round-trip is exact, so every spilled value
re-reads as the same float64.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Dict, Iterator, List, Optional, Union

from ..exceptions import ConfigurationError


class SeriesSpill:
    """Writes one NDJSON row per timeline interval to a sidecar file.

    Usage: pass an instance to
    :func:`~repro.scenario.timeline.run_timeline` (or a path to
    :func:`~repro.scenario.engine.run_built_scenario`); the timeline engine
    calls :meth:`write_step` once per interval and :meth:`close` at the end
    of the replay.  Also usable as a context manager.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: Optional[IO[str]] = self.path.open("w", encoding="utf-8")
        self.rows_written = 0

    def write_step(
        self,
        index: int,
        time_s: float,
        events: List[Dict[str, Any]],
        schemes: Dict[str, Dict[str, Any]],
    ) -> None:
        """Append one interval row (dropped from memory once written)."""
        if self._handle is None:
            raise ConfigurationError(f"spill file {self.path} is already closed")
        row = {
            "index": index,
            "time_s": time_s,
            "events": events,
            "schemes": schemes,
        }
        self._handle.write(json.dumps(row, sort_keys=True) + "\n")
        self.rows_written += 1

    def close(self) -> None:
        """Flush and close the sidecar (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SeriesSpill":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Read-back
    # ------------------------------------------------------------------ #
    def rows(self) -> Iterator[Dict[str, Any]]:
        """Stream the written rows back (the file must be closed)."""
        return iter_spill_rows(self.path)

    def series(self, label: str, metric: str) -> List[Any]:
        """One scheme's raw per-interval values for *metric*, in order."""
        return [row["schemes"][label][metric] for row in self.rows()]


def iter_spill_rows(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Stream NDJSON rows from a spill sidecar, one interval at a time."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def read_spill(path: Union[str, Path]) -> Dict[str, Any]:
    """Materialise a spill sidecar into per-scheme series dictionaries.

    Returns ``{"times_s": [...], "events": [...], "schemes": {label:
    {"power_percent": [...], "max_utilisation": [...], "violation": [...],
    "recomputed": [...], "compute_seconds": [...]}}}`` with the same
    series conventions as :class:`~repro.scenario.timeline.SchemeRun`
    (``max_utilisation`` is ``[]`` when the scheme never tracked it, with
    untracked intervals otherwise reading 0.0).
    """
    times: List[float] = []
    events: List[Dict[str, Any]] = []
    schemes: Dict[str, Dict[str, List[Any]]] = {}
    for row in iter_spill_rows(path):
        times.append(row["time_s"])
        events.extend(row["events"])
        for label, metrics in row["schemes"].items():
            series = schemes.setdefault(
                label,
                {
                    "power_percent": [],
                    "max_utilisation": [],
                    "violation": [],
                    "recomputed": [],
                    "compute_seconds": [],
                },
            )
            for metric in series:
                series[metric].append(metrics[metric])
    for series in schemes.values():
        raw = series["max_utilisation"]
        if all(value is None for value in raw):
            series["max_utilisation"] = []
        else:
            series["max_utilisation"] = [
                value if value is not None else 0.0 for value in raw
            ]
    return {"times_s": times, "events": events, "schemes": schemes}
