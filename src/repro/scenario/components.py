"""Registered scenario components: topologies, traffic, power and routing.

Importing this module populates the registry with every builder the repo
ships.  The per-kind contracts are:

* ``topology``: ``fn(**params) -> Topology``
* ``traffic``: ``fn(topology, **params) -> BuiltTraffic`` (or a bare
  :class:`~repro.traffic.replay.TrafficTrace` /
  :class:`~repro.traffic.matrix.TrafficMatrix`, normalised by
  :func:`as_built_traffic`)
* ``power``: ``fn(topology, **params) -> PowerModel``
* ``routing``: ``fn(topology, pairs, **params) -> RoutingTable``

Evaluation schemes live in :mod:`repro.scenario.schemes` (imported at the
bottom so one import wires up the whole registry).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..exceptions import ConfigurationError, TrafficError
from ..power.alternative import AlternativeHardwarePowerModel
from ..power.cisco import CiscoRouterPowerModel
from ..power.commodity import CommoditySwitchPowerModel
from ..power.model import PowerModel
from ..routing.ospf import ospf_invcap_routing, ospf_latency_routing
from ..routing.paths import RoutingTable
from ..topology.base import Topology
from ..topology.example import build_example
from ..topology.fattree import build_fattree, hosts
from ..topology.generators import random_connected_topology, waxman_topology
from ..topology.geant import build_geant
from ..topology.pop_access import build_pop_access
from ..topology.rocketfuel import build_abovenet, build_genuity, build_rocketfuel
from ..traffic.geant_trace import generate_geant_trace
from ..traffic.google_trace import google_trace, google_volume_series
from ..traffic.gravity import gravity_matrix
from ..traffic.matrix import (
    Pair,
    TrafficMatrix,
    select_pairs_among_subset,
    select_random_pairs,
)
from ..traffic.aggregate import aggregate_matrix, aggregate_trace
from ..traffic.replay import TrafficTrace
from ..traffic.scaling import calibrate_max_load
from ..traffic.sinewave import (
    DEFAULT_PEAK_FLOW_BPS,
    fattree_sine_pairs,
    sine_wave_trace,
)
from .registry import register, resolve


@dataclass
class BuiltTraffic:
    """A traffic workload built against a concrete topology.

    Attributes:
        trace: The demand trace replayed by the engine (a single matrix is a
            one-interval trace).
        pairs: The origin-destination pairs carrying traffic — shared with
            plan construction so the installed paths cover exactly the
            workload's pairs.
        peak_matrix: The workload's peak-hour demand estimate, when the
            generator knows it more precisely than the element-wise trace
            maximum (e.g. the calibrated gravity peak).
    """

    trace: TrafficTrace
    pairs: List[Pair] = field(default_factory=list)
    peak_matrix: Optional[TrafficMatrix] = None

    def peak(self) -> TrafficMatrix:
        """The peak demand: the explicit estimate or the trace's element-wise max."""
        if self.peak_matrix is not None:
            return self.peak_matrix
        return self.trace.peak_matrix()


def as_built_traffic(built: Any, name: str) -> BuiltTraffic:
    """Normalise a traffic builder's return value into a :class:`BuiltTraffic`."""
    if isinstance(built, BuiltTraffic):
        if not built.pairs:
            built.pairs = _pairs_of(built.trace)
        return built
    if isinstance(built, TrafficMatrix):
        built = TrafficTrace([built], interval_s=900.0, name=built.name)
    if isinstance(built, TrafficTrace):
        return BuiltTraffic(trace=built, pairs=_pairs_of(built))
    raise ConfigurationError(
        f"traffic component {name!r} must build a TrafficTrace, a TrafficMatrix "
        f"or a BuiltTraffic usable by the scenario engine, got {type(built).__qualname__}"
    )


def _pairs_of(trace: TrafficTrace) -> List[Pair]:
    return sorted({pair for matrix in trace.matrices() for pair in matrix.pairs()})


def _as_pairs(pairs: Sequence[Sequence[str]]) -> List[Pair]:
    """JSON pair lists (``[["A", "B"], ...]``) as tuples."""
    return [(origin, destination) for origin, destination in pairs]


def select_pairs(
    topology: Topology,
    pairs: Optional[Sequence[Sequence[str]]] = None,
    num_pairs: Optional[int] = None,
    num_endpoints: Optional[int] = None,
    level: Optional[str] = None,
    min_degree: Optional[int] = None,
    pair_method: str = "subset",
    seed: Optional[int] = None,
) -> Optional[List[Pair]]:
    """The shared origin-destination selection used by traffic components.

    Candidates default to the topology's non-host routers, optionally
    restricted to one node level (``"metro"``, ``"edge"``, ...) and to nodes
    of at least *min_degree*.  ``pair_method="subset"`` draws pairs among a
    random endpoint subset (the paper's selection); ``"random"`` draws pairs
    among all candidates.  Explicit *pairs* win; ``None`` with no *num_pairs*
    means "let the generator use its own default pair set".
    """
    if pairs is not None:
        return _as_pairs(pairs)
    candidates = (
        topology.nodes_at_level(level) if level is not None else topology.routers()
    )
    if min_degree is not None:
        filtered = [node for node in candidates if topology.degree(node) >= min_degree]
        candidates = filtered if len(filtered) >= 2 else list(candidates)
    if num_pairs is None:
        return None
    if pair_method == "subset":
        if num_endpoints is None:
            raise ConfigurationError(
                "pair_method='subset' needs num_endpoints (the random endpoint pool)"
            )
        return select_pairs_among_subset(candidates, num_endpoints, num_pairs, seed=seed)
    if pair_method == "random":
        return select_random_pairs(candidates, num_pairs, seed=seed)
    raise ConfigurationError(
        f"pair_method must be 'subset' or 'random', got {pair_method!r}"
    )


# --------------------------------------------------------------------- #
# Topologies
# --------------------------------------------------------------------- #

register("topology", "fattree")(build_fattree)
register("topology", "geant")(build_geant)
register("topology", "abovenet")(build_abovenet)
register("topology", "genuity")(build_genuity)
register("topology", "rocketfuel")(build_rocketfuel)
register("topology", "pop-access")(build_pop_access)
register("topology", "example")(build_example)
register("topology", "random")(random_connected_topology)
register("topology", "waxman")(waxman_topology)


# --------------------------------------------------------------------- #
# Power models
# --------------------------------------------------------------------- #


@register("power", "cisco")
def _cisco_power(topology: Topology, **params: Any) -> PowerModel:
    """The Cisco 12000 "hardware of today" ISP router model."""
    return CiscoRouterPowerModel(**params)


@register("power", "commodity")
def _commodity_power(
    topology: Topology, ports_at_peak: Optional[int] = None, **params: Any
) -> PowerModel:
    """Commodity datacenter switch; ``ports_at_peak`` defaults to the
    topology's maximum switch degree (the fat-tree arity ``k``)."""
    if ports_at_peak is None:
        degrees = [topology.degree(name) for name in topology.routers()]
        ports_at_peak = max(degrees) if degrees else None
    if ports_at_peak is None:
        return CommoditySwitchPowerModel(**params)
    return CommoditySwitchPowerModel(ports_at_peak=ports_at_peak, **params)


@register("power", "alternative")
def _alternative_power(topology: Topology, **params: Any) -> PowerModel:
    """Energy-proportional chassis variant of the Cisco model."""
    return AlternativeHardwarePowerModel(**params)


# --------------------------------------------------------------------- #
# Routing tables
# --------------------------------------------------------------------- #


@register("routing", "ospf-invcap")
def _ospf_invcap(
    topology: Topology, pairs: Optional[Sequence[Pair]] = None, **params: Any
) -> RoutingTable:
    return ospf_invcap_routing(topology, pairs=pairs, **params)


@register("routing", "ospf-latency")
def _ospf_latency(
    topology: Topology, pairs: Optional[Sequence[Pair]] = None, **params: Any
) -> RoutingTable:
    return ospf_latency_routing(topology, pairs=pairs, **params)


# --------------------------------------------------------------------- #
# Traffic workloads
# --------------------------------------------------------------------- #


@register("traffic", "sinewave")
def _sinewave_traffic(
    topology: Topology,
    mode: str = "far",
    num_intervals: int = 11,
    period_intervals: Optional[int] = None,
    peak_flow_bps: Optional[float] = None,
    interval_s: float = 60.0,
    utilisation_floor: float = 0.05,
    seed: Optional[int] = None,
) -> BuiltTraffic:
    """ElasticTree-style sine-wave demand between fat-tree host pairs."""
    kwargs: Dict[str, Any] = {}
    if period_intervals is not None:
        kwargs["period_intervals"] = period_intervals
    if peak_flow_bps is not None:
        kwargs["peak_flow_bps"] = peak_flow_bps
    # One pair selection shared by the trace, the plan builders and the peak
    # estimate: with seed=None a second fattree_sine_pairs call would shuffle
    # differently and the plan would cover pairs the trace never demands.
    pairs = fattree_sine_pairs(topology, mode, seed=seed)
    trace = sine_wave_trace(
        topology,
        mode=mode,
        num_intervals=num_intervals,
        interval_s=interval_s,
        utilisation_floor=utilisation_floor,
        seed=seed,
        pairs=pairs,
        **kwargs,
    )
    peak = TrafficMatrix.uniform(
        pairs,
        peak_flow_bps if peak_flow_bps is not None else DEFAULT_PEAK_FLOW_BPS,
        name=f"sine-{mode}-peak",
    )
    return BuiltTraffic(trace=trace, pairs=pairs, peak_matrix=peak)


@register("traffic", "gravity")
def _gravity_traffic(
    topology: Topology,
    total_traffic_bps: float = 1e9,
    pairs: Optional[Sequence[Sequence[str]]] = None,
    num_pairs: Optional[int] = None,
    num_endpoints: Optional[int] = None,
    level: Optional[str] = None,
    min_degree: Optional[int] = None,
    pair_method: str = "subset",
    calibrate: bool = False,
    levels: Optional[Sequence[float]] = None,
    interval_s: float = 900.0,
    name: str = "gravity",
    seed: Optional[int] = None,
) -> BuiltTraffic:
    """Gravity-model demand, optionally calibrated to the network's max load.

    ``calibrate=True`` scales the base matrix to the largest volume the full
    network can carry; *levels* (fractions of that peak, e.g. ``[0.1, 0.5,
    1.0]``) then yield one interval per load level — the paper's ``util-X``
    sweeps and stepped ns-2 demands.
    """
    selected = select_pairs(
        topology,
        pairs=pairs,
        num_pairs=num_pairs,
        num_endpoints=num_endpoints,
        level=level,
        min_degree=min_degree,
        pair_method=pair_method,
        seed=seed,
    )
    base = gravity_matrix(topology, total_traffic_bps, pairs=selected, name=name)
    peak = base
    if calibrate:
        peak = base.scaled(calibrate_max_load(topology, base), name=f"{name}-peak")
    if levels:
        matrices = [peak.scaled(fraction) for fraction in levels]
        # The workload's peak is what it actually offers: the largest level
        # (not the calibrated 100 % matrix, which the levels may stay below).
        workload_peak = peak.scaled(max(levels), name=f"{name}-peak")
    else:
        matrices = [peak]
        workload_peak = peak
    return BuiltTraffic(
        trace=TrafficTrace(matrices, interval_s=interval_s, name=name),
        pairs=selected if selected is not None else sorted(base.pairs()),
        peak_matrix=workload_peak,
    )


@register("traffic", "uniform")
def _uniform_traffic(
    topology: Topology,
    flow_bps: Optional[float] = None,
    total_traffic_bps: Optional[float] = None,
    pairs: Optional[Sequence[Sequence[str]]] = None,
    num_pairs: Optional[int] = None,
    num_endpoints: Optional[int] = None,
    level: Optional[str] = None,
    min_degree: Optional[int] = None,
    pair_method: str = "subset",
    interval_s: float = 900.0,
    name: str = "uniform",
    seed: Optional[int] = None,
) -> BuiltTraffic:
    """The same demand on every selected pair.

    Give either *flow_bps* (per pair) or *total_traffic_bps* (split evenly).
    """
    selected = select_pairs(
        topology,
        pairs=pairs,
        num_pairs=num_pairs,
        num_endpoints=num_endpoints,
        level=level,
        min_degree=min_degree,
        pair_method=pair_method,
        seed=seed,
    )
    if selected is None:
        raise ConfigurationError(
            "uniform traffic needs explicit pairs or num_pairs/num_endpoints"
        )
    if (flow_bps is None) == (total_traffic_bps is None):
        raise ConfigurationError(
            "uniform traffic needs exactly one of flow_bps or total_traffic_bps"
        )
    demand = (
        flow_bps
        if flow_bps is not None
        else total_traffic_bps / max(len(selected), 1)
    )
    matrix = TrafficMatrix.uniform(selected, demand, name=name)
    return BuiltTraffic(
        trace=TrafficTrace([matrix], interval_s=interval_s, name=name),
        pairs=list(selected),
        peak_matrix=matrix,
    )


@register("traffic", "matrix")
def _matrix_traffic(
    topology: Topology,
    demands: Sequence[Sequence[Any]] = (),
    interval_s: float = 900.0,
    name: str = "matrix",
) -> BuiltTraffic:
    """An explicit traffic matrix: ``demands`` is ``[[origin, dest, bps], ...]``."""
    if not demands:
        raise TrafficError("an explicit matrix needs at least one [origin, dest, bps] row")
    parsed: Dict[Pair, float] = {}
    for row in demands:
        origin, destination, bps = row
        parsed[(str(origin), str(destination))] = parsed.get(
            (str(origin), str(destination)), 0.0
        ) + float(bps)
    matrix = TrafficMatrix(parsed, name=name)
    return BuiltTraffic(
        trace=TrafficTrace([matrix], interval_s=interval_s, name=name),
        pairs=sorted(parsed),
        peak_matrix=matrix,
    )


@register("traffic", "geant-trace")
def _geant_traffic(
    topology: Topology,
    num_days: int = 3,
    num_pairs: Optional[int] = 110,
    num_endpoints: Optional[int] = 16,
    pairs: Optional[Sequence[Sequence[str]]] = None,
    peak_total_bps: Optional[float] = None,
    subsample: int = 1,
    seed: int = 2005,
    **generator_params: Any,
) -> BuiltTraffic:
    """The synthetic GÉANT 15-minute trace over a random endpoint subset."""
    selected = select_pairs(
        topology,
        pairs=pairs,
        num_pairs=num_pairs,
        num_endpoints=num_endpoints,
        seed=seed,
    )
    kwargs: Dict[str, Any] = dict(generator_params)
    if peak_total_bps is not None:
        kwargs["peak_total_bps"] = peak_total_bps
    trace = generate_geant_trace(
        topology, num_days=num_days, pairs=selected, seed=seed, **kwargs
    )
    if subsample > 1:
        trace = trace.subsampled(subsample)
    return BuiltTraffic(trace=trace, pairs=list(selected or _pairs_of(trace)))


@register("traffic", "google-trace")
def _google_traffic(
    topology: Topology,
    num_days: int = 1,
    peak_total_bps: float = 12e9,
    pairs: Optional[Sequence[Sequence[str]]] = None,
    interval_s: Optional[float] = None,
    seed: int = 25,
    **generator_params: Any,
) -> BuiltTraffic:
    """The Google-like 5-minute volume trace split over fat-tree host pairs.

    Default pairs follow the Figure 2b workload: every host sends to the
    host half the (pod-sorted) ring away, so all demand crosses the core.
    """
    if pairs is not None:
        selected = _as_pairs(pairs)
    else:
        host_names = hosts(topology)
        if not host_names:
            raise TrafficError(
                "google-trace needs a topology with hosts (or explicit pairs)"
            )
        selected = [
            (
                host_names[index],
                host_names[(index + len(host_names) // 2) % len(host_names)],
            )
            for index in range(len(host_names))
        ]
    kwargs: Dict[str, Any] = dict(generator_params)
    if interval_s is not None:
        kwargs["interval_s"] = interval_s
    trace = google_trace(
        selected, num_days=num_days, peak_total_bps=peak_total_bps, seed=seed, **kwargs
    )
    return BuiltTraffic(trace=trace, pairs=list(selected))


@register("traffic", "google-volume")
def _google_volume(topology: Optional[Topology] = None, **params: Any) -> List[float]:
    """The raw aggregate 5-minute volume series (Figure 1a's input).

    Returns a plain series, not a trace: use it via ``TrafficSpec.build``
    for volume-level analyses, not inside ``run_scenario``.
    """
    return list(google_volume_series(**params))


@register("traffic", "aggregate")
def _aggregate_traffic(
    topology: Topology,
    inner: Optional[Dict[str, Any]] = None,
    level: str = "aggregation",
) -> BuiltTraffic:
    """Any registered workload coarsened to per-pod / per-PoP aggregates.

    Wraps an *inner* traffic section (``{"name": ..., "params": {...}}``,
    the same shape as a spec's ``traffic`` section) and maps every endpoint
    of every matrix to its nearest ancestor at *level* — ``"aggregation"``
    groups fat-tree hosts per pod, ``"edge"`` per edge switch,
    ``"backbone"`` groups PoP-access metros per backbone attachment.  Total
    demand is conserved (intra-aggregate pairs keep their original
    granularity); the allocation-level exact-equivalence contract is in
    :mod:`repro.simulator.aggregate`.
    """
    if not inner or "name" not in inner:
        raise ConfigurationError(
            "aggregate traffic needs an inner section: "
            '{"name": <traffic component>, "params": {...}}'
        )
    builder = resolve("traffic", inner["name"])
    built = as_built_traffic(
        builder(topology, **dict(inner.get("params") or {})), inner["name"]
    )
    trace = aggregate_trace(topology, built.trace, level)
    peak = None
    if built.peak_matrix is not None:
        peak = aggregate_matrix(topology, built.peak_matrix, level)
    return BuiltTraffic(
        trace=trace, pairs=_pairs_of(trace), peak_matrix=peak
    )


# Schemes register themselves on import; keep last so one import of this
# module wires up the complete registry.
from . import schemes  # noqa: E402,F401  (registration side effect)
