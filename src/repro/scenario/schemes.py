"""Registered evaluation schemes: what gets compared on a scenario's stack.

Every shipped scheme is a :class:`~repro.scenario.timeline.SchemeRuntime`
subclass registered under ``("scheme", name)``: ``start(scenario)`` builds
its long-lived state once (REsPoNse plans, candidate-path caches, warm-start
memory), ``step(state, t, matrix, view)`` advances one interval against the
failure-adjusted topology view.  The timeline engine drives the runtimes;
`run_scenario` aggregates their per-interval outcomes.

A scheme component may alternatively be a plain callable with the legacy
contract::

    fn(scenario: BuiltScenario, **params) -> SchemeOutcome

which the timeline wraps in a
:class:`~repro.scenario.timeline.FunctionRuntime` — such schemes run
unchanged on event-free scenarios but cannot react to dynamic events.

This module is also the home of the single cached-candidate GreenTE code
path (:class:`CachedCandidatePaths`, :func:`greente_replay`) that the
per-interval replay helpers in :mod:`repro.experiments.common` delegate to.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.always_on import AlwaysOnConfig, compute_always_on
from ..core.failover import compute_failover
from ..core.planner import activate_paths
from ..core.response import ResponseConfig, build_response_plan
from ..exceptions import ConfigurationError, TopologyError
from ..obs import trace
from ..optim.elastictree import elastictree_subset
from ..optim.greedy import greedy_minimum_subset
from ..optim.greente import greente_heuristic
from ..optim.lp_relax import lp_relaxation_with_rounding
from ..optim.pathmilp import PathMilpConfig, solve_path_milp
from ..optim.solution import EnergyAwareSolution
from ..power.accounting import full_power, network_power
from ..power.model import PowerModel
from ..routing.ecmp import ecmp_active_elements, ecmp_max_utilisation
from ..routing.ksp import k_shortest_paths_all_pairs
from ..routing.paths import Path, RoutingConfiguration
from ..simulator.failures import TopologyView
from ..topology.base import Topology
from ..traffic.matrix import Pair, TrafficMatrix
from .registry import register
from .timeline import IntervalOutcome, SchemeRuntime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .engine import BuiltScenario


@dataclass
class SchemeOutcome:
    """Uniform per-scheme result consumed by the scenario engine.

    Attributes:
        power_percent: Power (% of the fully powered network) per interval.
        recomputations: How often the scheme changed its active-element
            configuration during the replay (always 0 for REsPoNse, whose
            paths are precomputed once).
        max_utilisation: Largest arc utilisation per interval, where the
            scheme knows it (empty otherwise).
        details: Scheme-specific extras (per-interval solutions,
            configurations, activation objects) for drivers that need more
            than the uniform series.
    """

    power_percent: List[float]
    recomputations: int = 0
    max_utilisation: List[float] = field(default_factory=list)
    details: Dict[str, Any] = field(default_factory=dict)


# --------------------------------------------------------------------- #
# The single cached-candidate GreenTE code path
# --------------------------------------------------------------------- #


class CachedCandidatePaths:
    """k-shortest candidate paths, computed once per (topology, pair set).

    Per-interval solvers reuse one instance across a whole replay so the
    candidate computation — the expensive part of short solves — is paid
    once, not once per interval.  The cache is keyed by the pair set and
    resets when a different topology object shows up (a solver instance is
    meant to live within one replay; the timeline hands out one topology
    object per failure state, so candidates recompute exactly when the
    surviving topology changes).
    """

    def __init__(self, k: int) -> None:
        self.k = k
        self._topology: Optional[Topology] = None
        self._cache: Dict[Tuple[Pair, ...], Mapping[Pair, Sequence[Path]]] = {}

    def for_pairs(
        self, topology: Topology, pairs: Sequence[Pair]
    ) -> Mapping[Pair, Sequence[Path]]:
        """Candidates for *pairs* on *topology*, cached across calls."""
        key = tuple(sorted(pairs))
        if topology is not self._topology:
            self._topology = topology
            self._cache = {}
        if key not in self._cache:
            self._cache[key] = k_shortest_paths_all_pairs(
                topology, self.k, pairs=list(key)
            )
        return self._cache[key]


def greente_replay(
    topology: Topology,
    power_model: PowerModel,
    matrices: Sequence[TrafficMatrix],
    k: int = 5,
    utilisation_limit: float = 1.0,
    pairs: Optional[Sequence[Pair]] = None,
    ordering: str = "stable",
    candidates: Optional[CachedCandidatePaths] = None,
) -> List[EnergyAwareSolution]:
    """Recompute the GreenTE routing for every matrix, caching candidates.

    Candidate k-shortest paths are computed once for the union of pairs
    across all matrices and shared by every per-interval solve — the one
    code path behind :func:`repro.experiments.common.per_interval_solutions`
    and the ``greente`` scheme.
    """
    cache = candidates if candidates is not None else CachedCandidatePaths(k)
    if pairs is None:
        pairs = sorted({pair for matrix in matrices for pair in matrix.pairs()})
    candidate_paths = cache.for_pairs(topology, pairs)
    return [
        greente_heuristic(
            topology,
            power_model,
            matrix,
            k=k,
            utilisation_limit=utilisation_limit,
            candidate_paths=candidate_paths,
            allow_overload=True,
            ordering=ordering,
        )
        for matrix in matrices
    ]


def _configuration_of(solution: EnergyAwareSolution) -> RoutingConfiguration:
    return RoutingConfiguration(
        frozenset(solution.active_nodes), frozenset(solution.active_links)
    )


def _shared_cache(scenario: "BuiltScenario") -> Optional[Any]:
    """The group-shared compute cache, when this run is part of a batch.

    Solo runs (and drivers constructing :class:`BuiltScenario` by hand)
    have none, in which case every runtime falls back to its per-replay
    behaviour.  All memoised computations are pure functions of immutable
    inputs, so a cache hit returns exactly what a fresh computation would.
    """
    return getattr(scenario, "shared", None)


# --------------------------------------------------------------------- #
# Per-interval solver runtimes (GreenTE, ElasticTree, greedy, LP, MILP)
# --------------------------------------------------------------------- #


@dataclass
class _ReplayState:
    """Warm-start state shared by the per-interval solver runtimes."""

    scenario: "BuiltScenario"
    solutions: List[EnergyAwareSolution] = field(default_factory=list)
    configurations: List[RoutingConfiguration] = field(default_factory=list)
    prev_matrix: Optional[TrafficMatrix] = None
    prev_view: Optional[TopologyView] = None
    extra: Dict[str, Any] = field(default_factory=dict)


class SolverReplayRuntime(SchemeRuntime):
    """Base runtime for schemes that re-solve an optimisation per interval.

    Incremental behaviour on top of the cold-start loop of old:

    * **unchanged-input memoisation** — when an interval repeats the
      previous matrix on the same topology view, the previous solution is
      reused verbatim (bit-identical, no solve);
    * **failure awareness** — under failures the solver runs on the
      surviving topology (:attr:`TopologyView.topology`) with the demand
      matrix restricted to still-connected pairs;
    * **solver-state reuse** — subclasses keep expensive per-replay state
      (e.g. candidate paths) in ``state.extra`` across steps.
    """

    def start(self, scenario: "BuiltScenario") -> _ReplayState:
        return _ReplayState(scenario=scenario)

    def solve(
        self, state: _ReplayState, matrix: TrafficMatrix, view: TopologyView
    ) -> EnergyAwareSolution:
        """Solve one interval (subclasses implement the actual solver)."""
        raise NotImplementedError

    def step(
        self,
        state: _ReplayState,
        time_s: float,
        matrix: TrafficMatrix,
        view: TopologyView,
    ) -> IntervalOutcome:
        if (
            state.solutions
            and state.prev_view is view
            and state.prev_matrix == matrix
        ):
            solution = state.solutions[-1]
        else:
            effective = matrix
            if view.has_failures:
                effective = matrix.restricted_to(
                    view.connected_pairs(matrix.pairs())
                )
            with trace.span("scheme.solve", solver=type(self).__name__):
                solution = self.solve(state, effective, view)
        configuration = _configuration_of(solution)
        recomputed = bool(state.configurations) and (
            configuration != state.configurations[-1]
        )
        state.solutions.append(solution)
        state.configurations.append(configuration)
        state.prev_matrix = matrix
        state.prev_view = view
        return IntervalOutcome(
            power_percent=100.0 * solution.power_w / state.scenario.baseline_power_w,
            recomputed=recomputed,
        )

    def finish(self, state: _ReplayState) -> Dict[str, Any]:
        return {
            "solutions": state.solutions,
            "configurations": state.configurations,
        }


@register("scheme", "greente")
class GreenTERuntime(SolverReplayRuntime):
    """GreenTE-style greedy recomputation on every interval (cached candidates)."""

    def __init__(
        self,
        k: int = 5,
        utilisation_limit: float = 1.0,
        ordering: str = "stable",
    ) -> None:
        self.k = k
        self.utilisation_limit = utilisation_limit
        self.ordering = ordering

    def start(self, scenario: "BuiltScenario") -> _ReplayState:
        state = super().start(scenario)
        shared = _shared_cache(scenario)
        if shared is not None:
            # One candidate cache per (group, k): every point of the group
            # sees the same topology object, so the k-shortest computation
            # is paid once for the whole batch.
            state.extra["candidates"] = shared.memo(
                ("greente-candidates", self.k),
                lambda: CachedCandidatePaths(self.k),
            )
        else:
            state.extra["candidates"] = CachedCandidatePaths(self.k)
        return state

    def solve(
        self, state: _ReplayState, matrix: TrafficMatrix, view: TopologyView
    ) -> EnergyAwareSolution:
        scenario = state.scenario
        pairs = scenario.pairs
        if view.has_failures:
            pairs = view.connected_pairs(pairs)

        def compute() -> EnergyAwareSolution:
            candidate_paths = state.extra["candidates"].for_pairs(
                view.topology, pairs
            )
            return greente_heuristic(
                view.topology,
                scenario.power_model,
                matrix,
                k=self.k,
                utilisation_limit=self.utilisation_limit,
                candidate_paths=candidate_paths,
                allow_overload=True,
                ordering=self.ordering,
            )

        shared = _shared_cache(scenario)
        if shared is None:
            return compute()
        # The heuristic is a pure function of these inputs; TrafficMatrix
        # hashes by content, so points sharing a demand matrix share the
        # solve.  The topology/power objects are pinned so their ids stay
        # unique for the cache's lifetime.
        return shared.memo(
            (
                "greente-solve",
                self.k,
                self.utilisation_limit,
                self.ordering,
                id(view.topology),
                id(scenario.power_model),
                tuple(pairs),
                matrix,
            ),
            compute,
            pin=(view.topology, scenario.power_model),
        )


@register("scheme", "elastictree")
class ElasticTreeRuntime(SolverReplayRuntime):
    """ElasticTree's per-interval minimal subset.

    On a fat-tree this is the pod-structured greedy of Heller et al.; on a
    general topology (where ElasticTree's formal model does not apply) the
    equivalent topology-agnostic greedy minimum subset stands in, so the
    scheme composes with any registered topology.
    """

    def __init__(self, utilisation_limit: float = 1.0) -> None:
        self.utilisation_limit = utilisation_limit

    def solve(
        self, state: _ReplayState, matrix: TrafficMatrix, view: TopologyView
    ) -> EnergyAwareSolution:
        scenario = state.scenario
        try:
            return elastictree_subset(
                view.topology,
                scenario.power_model,
                matrix,
                utilisation_limit=self.utilisation_limit,
            )
        except TopologyError:
            return greedy_minimum_subset(
                view.topology,
                scenario.power_model,
                matrix,
                utilisation_limit=self.utilisation_limit,
            )


@register("scheme", "greedy")
class GreedyRuntime(SolverReplayRuntime):
    """Topology-agnostic greedy minimum subset per interval."""

    def __init__(self, utilisation_limit: float = 1.0) -> None:
        self.utilisation_limit = utilisation_limit

    def solve(
        self, state: _ReplayState, matrix: TrafficMatrix, view: TopologyView
    ) -> EnergyAwareSolution:
        return greedy_minimum_subset(
            view.topology,
            state.scenario.power_model,
            matrix,
            utilisation_limit=self.utilisation_limit,
        )


@register("scheme", "lp-relax")
class LpRelaxRuntime(SolverReplayRuntime):
    """LP relaxation with rounding and repair per interval."""

    def __init__(self, k: int = 3, utilisation_limit: float = 1.0) -> None:
        self.k = k
        self.utilisation_limit = utilisation_limit

    def solve(
        self, state: _ReplayState, matrix: TrafficMatrix, view: TopologyView
    ) -> EnergyAwareSolution:
        return lp_relaxation_with_rounding(
            view.topology,
            state.scenario.power_model,
            matrix,
            k=self.k,
            utilisation_limit=self.utilisation_limit,
        )


@register("scheme", "pathmilp")
class PathMilpRuntime(SolverReplayRuntime):
    """The exact path-restricted MILP per interval (slow; small instances)."""

    def __init__(
        self,
        k: int = 3,
        utilisation_limit: float = 1.0,
        time_limit_s: Optional[float] = 60.0,
    ) -> None:
        self.config = PathMilpConfig(
            k=k, utilisation_limit=utilisation_limit, time_limit_s=time_limit_s
        )

    def solve(
        self, state: _ReplayState, matrix: TrafficMatrix, view: TopologyView
    ) -> EnergyAwareSolution:
        return solve_path_milp(
            view.topology, state.scenario.power_model, matrix, config=self.config
        )


@register("scheme", "optimal")
class OptimalRuntime(SolverReplayRuntime):
    """Per-interval optimal recomputation lower bound.

    Tries the exact MILP and falls back to the traffic-aware GreenTE
    heuristic when the solve cannot finish within its budget (the behaviour
    the Figure 6 lower bound always had).
    """

    def __init__(self, k: int = 3, time_limit_s: Optional[float] = 60.0) -> None:
        self.k = k
        self.time_limit_s = time_limit_s

    def solve(
        self, state: _ReplayState, matrix: TrafficMatrix, view: TopologyView
    ) -> EnergyAwareSolution:
        scenario = state.scenario
        try:
            return solve_path_milp(
                view.topology,
                scenario.power_model,
                matrix,
                config=PathMilpConfig(k=self.k, time_limit_s=self.time_limit_s),
                solver_name="optimal",
            )
        except Exception:
            return greente_heuristic(
                view.topology,
                scenario.power_model,
                matrix,
                k=self.k,
                allow_overload=True,
            )


# --------------------------------------------------------------------- #
# Baselines
# --------------------------------------------------------------------- #


@register("scheme", "ospf")
class OSPFRuntime(SchemeRuntime):
    """Plain OSPF keeps every surviving element busy: 100 % of the original
    power on the intact network, the surviving subset's power under failures."""

    def start(self, scenario: "BuiltScenario") -> "BuiltScenario":
        return scenario

    def step(
        self,
        state: "BuiltScenario",
        time_s: float,
        matrix: TrafficMatrix,
        view: TopologyView,
    ) -> IntervalOutcome:
        if not view.has_failures:
            return IntervalOutcome(power_percent=100.0)
        surviving = view.topology
        breakdown = network_power(
            state.topology,
            state.power_model,
            set(surviving.nodes()),
            set(surviving.link_keys()),
        )
        return IntervalOutcome(
            power_percent=100.0 * breakdown.total_w / state.baseline_power_w
        )


@register("scheme", "ecmp")
class ECMPRuntime(SchemeRuntime):
    """ECMP wakes every element on any shortest path of a demanded pair."""

    def start(self, scenario: "BuiltScenario") -> _ReplayState:
        return _ReplayState(scenario=scenario)

    def step(
        self,
        state: _ReplayState,
        time_s: float,
        matrix: TrafficMatrix,
        view: TopologyView,
    ) -> IntervalOutcome:
        scenario = state.scenario
        effective = matrix
        if view.has_failures:
            effective = matrix.restricted_to(view.connected_pairs(matrix.pairs()))

        def compute() -> Tuple[Any, Any, float, float]:
            nodes, links = ecmp_active_elements(view.topology, effective)
            breakdown = network_power(
                scenario.topology, scenario.power_model, nodes, links
            )
            return (
                frozenset(nodes),
                frozenset(links),
                breakdown.total_w,
                ecmp_max_utilisation(view.topology, effective),
            )

        shared = _shared_cache(scenario)
        if shared is None:
            nodes, links, total_w, max_utilisation = compute()
        else:
            nodes, links, total_w, max_utilisation = shared.memo(
                (
                    "ecmp-core",
                    id(view.topology),
                    id(scenario.topology),
                    id(scenario.power_model),
                    effective,
                ),
                compute,
                pin=(view.topology, scenario.topology, scenario.power_model),
            )
        configuration = RoutingConfiguration(nodes, links)
        recomputed = bool(state.configurations) and (
            configuration != state.configurations[-1]
        )
        state.configurations.append(configuration)
        return IntervalOutcome(
            power_percent=100.0 * total_w / scenario.baseline_power_w,
            max_utilisation=max_utilisation,
            recomputed=recomputed,
        )


# --------------------------------------------------------------------- #
# REsPoNse: precomputed always-on / on-demand / failover paths
# --------------------------------------------------------------------- #

#: ResponseConfig fields settable straight from scheme params.
_RESPONSE_CONFIG_FIELDS = (
    "num_paths",
    "latency_beta",
    "on_demand_method",
    "stress_exclude_fraction",
    "k",
    "utilisation_limit",
    "always_on_method",
    "include_failover",
    "time_limit_s",
)


@dataclass
class _ResponseState:
    """Per-replay state of a REsPoNse runtime: the installed plan."""

    scenario: "BuiltScenario"
    plan: Any
    threshold: float
    activations: List[Any] = field(default_factory=list)
    failover_recomputed: bool = False


class ResponseRuntime(SchemeRuntime):
    """REsPoNse: the plan is precomputed once, steps only switch activation.

    ``start`` runs the complete offline pipeline (always-on, on-demand,
    failover paths); every ``step`` merely activates installed paths for the
    interval's demand — the online behaviour the paper claims reacts in
    seconds.  On failure events the activation excludes paths crossing
    failed elements and engages the failover table
    (:func:`~repro.core.failover.compute_failover` is run lazily when the
    plan was built without one).
    """

    #: Default paper variant; subclasses override.
    variant: Optional[str] = None

    def __init__(
        self,
        variant: Optional[str] = None,
        utilisation_threshold: Optional[float] = None,
        use_peak_matrix: Optional[bool] = None,
        **config_params: Any,
    ) -> None:
        unknown = set(config_params) - set(_RESPONSE_CONFIG_FIELDS)
        if unknown:
            raise ConfigurationError(
                f"unknown response scheme parameters {sorted(unknown)}; "
                f"supported: variant, utilisation_threshold, use_peak_matrix, "
                f"{', '.join(_RESPONSE_CONFIG_FIELDS)}"
            )
        selected_variant = variant if variant is not None else type(self).variant
        if selected_variant is not None:
            self.config = ResponseConfig.for_variant(selected_variant, **config_params)
        else:
            self.config = ResponseConfig(**config_params)
        self.utilisation_threshold = utilisation_threshold
        if use_peak_matrix is None:
            # The traffic-aware heuristic needs a peak estimate by definition.
            use_peak_matrix = self.config.on_demand_method in ("peak", "heuristic")
        self.use_peak_matrix = use_peak_matrix

    def start(self, scenario: "BuiltScenario") -> _ResponseState:
        peak = scenario.peak_matrix() if self.use_peak_matrix else None

        def compute() -> Any:
            with trace.span("response.plan", scenario=scenario.spec.name):
                return build_response_plan(
                    scenario.topology,
                    scenario.power_model,
                    pairs=scenario.pairs,
                    peak_matrix=peak,
                    config=self.config,
                )

        shared = _shared_cache(scenario)
        if shared is None:
            plan = compute()
        else:
            # The offline pipeline depends only on these inputs, so points
            # of a group (same topology/power/pairs/peak) share one plan
            # build.  Each point gets a shallow copy: the lazily computed
            # ``failover`` slot mutates per point and must not leak between
            # them.
            plan = copy.copy(
                shared.memo(
                    (
                        "response-plan",
                        repr(self.config),
                        id(scenario.topology),
                        id(scenario.power_model),
                        tuple(scenario.pairs),
                        peak,
                    ),
                    compute,
                    pin=(scenario.topology, scenario.power_model),
                )
            )
        threshold = (
            self.utilisation_threshold
            if self.utilisation_threshold is not None
            else scenario.utilisation_threshold
        )
        return _ResponseState(scenario=scenario, plan=plan, threshold=threshold)

    def step(
        self,
        state: _ResponseState,
        time_s: float,
        matrix: TrafficMatrix,
        view: TopologyView,
    ) -> IntervalOutcome:
        scenario = state.scenario
        recomputed = False
        if view.has_failures and state.plan.failover is None:
            # The plan was built without failover protection: compute it on
            # the first failure (the one recomputation REsPoNse ever does).
            with trace.span("response.failover"):
                state.plan.failover = compute_failover(
                    scenario.topology,
                    state.plan.tables(include_failover=False),
                    pairs=scenario.pairs,
                )
            state.failover_recomputed = True
            recomputed = True
        activation = activate_paths(
            scenario.topology,
            scenario.power_model,
            state.plan,
            matrix,
            utilisation_threshold=state.threshold,
            include_failover=view.has_failures,
            failed_links=set(view.unusable_links()) if view.has_failures else None,
        )
        state.activations.append(activation)
        return IntervalOutcome(
            power_percent=activation.power_percent,
            max_utilisation=activation.max_utilisation,
            recomputed=recomputed,
        )

    def finish(self, state: _ResponseState) -> Dict[str, Any]:
        return {"plan": state.plan, "activations": state.activations}


register("scheme", "response")(ResponseRuntime)


@register("scheme", "response-lat")
class ResponseLatRuntime(ResponseRuntime):
    """REsPoNse with the latency-bounded always-on paths (REsPoNse-lat)."""

    variant = "response-lat"


@register("scheme", "response-ospf")
class ResponseOspfRuntime(ResponseRuntime):
    """REsPoNse whose on-demand table is the plain OSPF table."""

    variant = "response-ospf"


@register("scheme", "response-heuristic")
class ResponseHeuristicRuntime(ResponseRuntime):
    """REsPoNse with traffic-aware (GreenTE-computed) on-demand paths."""

    variant = "response-heuristic"


@register("scheme", "always-on")
class AlwaysOnRuntime(SchemeRuntime):
    """Only the always-on subset, regardless of demand (its power floor).

    The subset is static by definition, so the runtime emits a constant
    series — also under events (the floor does not react; that is the
    point of the comparison).
    """

    def __init__(
        self,
        k: int = 3,
        latency_beta: Optional[float] = None,
        always_on_method: str = "milp",
    ) -> None:
        self.config = AlwaysOnConfig(
            k=k, latency_beta=latency_beta, method=always_on_method
        )

    def start(self, scenario: "BuiltScenario") -> Dict[str, Any]:
        def compute() -> Any:
            return compute_always_on(
                scenario.topology,
                scenario.power_model,
                pairs=scenario.pairs,
                config=self.config,
            )

        shared = _shared_cache(scenario)
        if shared is None:
            always_on = compute()
        else:
            always_on = shared.memo(
                (
                    "always-on",
                    repr(self.config),
                    id(scenario.topology),
                    id(scenario.power_model),
                    tuple(scenario.pairs),
                ),
                compute,
                pin=(scenario.topology, scenario.power_model),
            )
        return {
            "always_on": always_on,
            "percent": 100.0 * always_on.power_w / scenario.baseline_power_w,
        }

    def step(
        self,
        state: Dict[str, Any],
        time_s: float,
        matrix: TrafficMatrix,
        view: TopologyView,
    ) -> IntervalOutcome:
        return IntervalOutcome(power_percent=state["percent"])

    def finish(self, state: Dict[str, Any]) -> Dict[str, Any]:
        return {"always_on": state["always_on"]}


def scenario_baseline_power(topology: Topology, power_model: PowerModel) -> float:
    """Power of the fully powered network (the 100 % reference)."""
    return full_power(topology, power_model).total_w
