"""Registered evaluation schemes: what gets compared on a scenario's stack.

A scheme component receives the built scenario (topology, power model,
traffic trace, pairs, baseline power) plus its spec parameters and returns a
:class:`SchemeOutcome` — the per-interval power series and bookkeeping the
uniform :class:`~repro.scenario.engine.ScenarioResult` is assembled from.
Contract::

    fn(scenario: BuiltScenario, **params) -> SchemeOutcome

This module is also the home of the single cached-candidate GreenTE code
path (:class:`CachedCandidatePaths`, :func:`greente_replay`) that the
per-interval replay helpers in :mod:`repro.experiments.common` delegate to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.always_on import AlwaysOnConfig, compute_always_on
from ..core.planner import activate_paths
from ..core.response import ResponseConfig, build_response_plan
from ..exceptions import ConfigurationError, TopologyError
from ..optim.elastictree import elastictree_subset
from ..optim.greedy import greedy_minimum_subset
from ..optim.greente import greente_heuristic
from ..optim.lp_relax import lp_relaxation_with_rounding
from ..optim.pathmilp import PathMilpConfig, solve_path_milp
from ..optim.solution import EnergyAwareSolution
from ..power.accounting import full_power, network_power
from ..power.model import PowerModel
from ..routing.ecmp import ecmp_active_elements, ecmp_max_utilisation
from ..routing.ksp import k_shortest_paths_all_pairs
from ..routing.paths import Path, RoutingConfiguration
from ..topology.base import Topology
from ..traffic.matrix import Pair, TrafficMatrix
from .registry import register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .engine import BuiltScenario


@dataclass
class SchemeOutcome:
    """Uniform per-scheme result consumed by the scenario engine.

    Attributes:
        power_percent: Power (% of the fully powered network) per interval.
        recomputations: How often the scheme changed its active-element
            configuration during the replay (always 0 for REsPoNse, whose
            paths are precomputed once).
        max_utilisation: Largest arc utilisation per interval, where the
            scheme knows it (empty otherwise).
        details: Scheme-specific extras (per-interval solutions,
            configurations, activation objects) for drivers that need more
            than the uniform series.
    """

    power_percent: List[float]
    recomputations: int = 0
    max_utilisation: List[float] = field(default_factory=list)
    details: Dict[str, Any] = field(default_factory=dict)


# --------------------------------------------------------------------- #
# The single cached-candidate GreenTE code path
# --------------------------------------------------------------------- #


class CachedCandidatePaths:
    """k-shortest candidate paths, computed once per (topology, pair set).

    Per-interval solvers reuse one instance across a whole replay so the
    candidate computation — the expensive part of short solves — is paid
    once, not once per interval.  The cache is keyed by the pair set and
    resets when a different topology object shows up (a solver instance is
    meant to live within one replay).
    """

    def __init__(self, k: int) -> None:
        self.k = k
        self._topology: Optional[Topology] = None
        self._cache: Dict[Tuple[Pair, ...], Mapping[Pair, Sequence[Path]]] = {}

    def for_pairs(
        self, topology: Topology, pairs: Sequence[Pair]
    ) -> Mapping[Pair, Sequence[Path]]:
        """Candidates for *pairs* on *topology*, cached across calls."""
        key = tuple(sorted(pairs))
        if topology is not self._topology:
            self._topology = topology
            self._cache = {}
        if key not in self._cache:
            self._cache[key] = k_shortest_paths_all_pairs(
                topology, self.k, pairs=list(key)
            )
        return self._cache[key]


def greente_replay(
    topology: Topology,
    power_model: PowerModel,
    matrices: Sequence[TrafficMatrix],
    k: int = 5,
    utilisation_limit: float = 1.0,
    pairs: Optional[Sequence[Pair]] = None,
    ordering: str = "stable",
    candidates: Optional[CachedCandidatePaths] = None,
) -> List[EnergyAwareSolution]:
    """Recompute the GreenTE routing for every matrix, caching candidates.

    Candidate k-shortest paths are computed once for the union of pairs
    across all matrices and shared by every per-interval solve — the one
    code path behind :func:`repro.experiments.common.per_interval_solutions`
    and the ``greente`` scheme.
    """
    cache = candidates if candidates is not None else CachedCandidatePaths(k)
    if pairs is None:
        pairs = sorted({pair for matrix in matrices for pair in matrix.pairs()})
    candidate_paths = cache.for_pairs(topology, pairs)
    return [
        greente_heuristic(
            topology,
            power_model,
            matrix,
            k=k,
            utilisation_limit=utilisation_limit,
            candidate_paths=candidate_paths,
            allow_overload=True,
            ordering=ordering,
        )
        for matrix in matrices
    ]


def _configurations(solutions: Sequence[EnergyAwareSolution]) -> List[RoutingConfiguration]:
    return [
        RoutingConfiguration(
            frozenset(solution.active_nodes), frozenset(solution.active_links)
        )
        for solution in solutions
    ]


def _count_changes(configurations: Sequence[RoutingConfiguration]) -> int:
    return sum(
        1
        for index in range(1, len(configurations))
        if configurations[index] != configurations[index - 1]
    )


def _solution_outcome(
    scenario: "BuiltScenario", solutions: List[EnergyAwareSolution]
) -> SchemeOutcome:
    """Power series + recomputation count of a per-interval solver's output."""
    configurations = _configurations(solutions)
    return SchemeOutcome(
        power_percent=[
            100.0 * solution.power_w / scenario.baseline_power_w
            for solution in solutions
        ],
        recomputations=_count_changes(configurations),
        details={"solutions": solutions, "configurations": configurations},
    )


# --------------------------------------------------------------------- #
# Baselines
# --------------------------------------------------------------------- #


@register("scheme", "ospf")
def _ospf_scheme(scenario: "BuiltScenario") -> SchemeOutcome:
    """Plain OSPF keeps every element busy: flat 100 % of the original power."""
    matrices = scenario.trace.matrices()
    return SchemeOutcome(power_percent=[100.0 for _ in matrices])


@register("scheme", "ecmp")
def _ecmp_scheme(scenario: "BuiltScenario") -> SchemeOutcome:
    """ECMP wakes every element on any shortest path of a demanded pair."""
    power: List[float] = []
    utilisation: List[float] = []
    configurations: List[RoutingConfiguration] = []
    for matrix in scenario.trace.matrices():
        nodes, links = ecmp_active_elements(scenario.topology, matrix)
        breakdown = network_power(scenario.topology, scenario.power_model, nodes, links)
        power.append(100.0 * breakdown.total_w / scenario.baseline_power_w)
        utilisation.append(ecmp_max_utilisation(scenario.topology, matrix))
        configurations.append(
            RoutingConfiguration(frozenset(nodes), frozenset(links))
        )
    return SchemeOutcome(
        power_percent=power,
        recomputations=_count_changes(configurations),
        max_utilisation=utilisation,
    )


# --------------------------------------------------------------------- #
# Per-interval energy-aware recomputation
# --------------------------------------------------------------------- #


@register("scheme", "greente")
def _greente_scheme(
    scenario: "BuiltScenario",
    k: int = 5,
    utilisation_limit: float = 1.0,
    ordering: str = "stable",
) -> SchemeOutcome:
    """GreenTE-style greedy recomputation on every interval (cached candidates)."""
    solutions = greente_replay(
        scenario.topology,
        scenario.power_model,
        scenario.trace.matrices(),
        k=k,
        utilisation_limit=utilisation_limit,
        pairs=scenario.pairs,
        ordering=ordering,
    )
    return _solution_outcome(scenario, solutions)


@register("scheme", "elastictree")
def _elastictree_scheme(
    scenario: "BuiltScenario",
    utilisation_limit: float = 1.0,
) -> SchemeOutcome:
    """ElasticTree's per-interval minimal subset.

    On a fat-tree this is the pod-structured greedy of Heller et al.; on a
    general topology (where ElasticTree's formal model does not apply) the
    equivalent topology-agnostic greedy minimum subset stands in, so the
    scheme composes with any registered topology.
    """
    topology = scenario.topology
    solutions: List[EnergyAwareSolution] = []
    for matrix in scenario.trace.matrices():
        try:
            solution = elastictree_subset(
                topology, scenario.power_model, matrix, utilisation_limit=utilisation_limit
            )
        except TopologyError:
            solution = greedy_minimum_subset(
                topology, scenario.power_model, matrix, utilisation_limit=utilisation_limit
            )
        solutions.append(solution)
    return _solution_outcome(scenario, solutions)


@register("scheme", "greedy")
def _greedy_scheme(
    scenario: "BuiltScenario",
    utilisation_limit: float = 1.0,
) -> SchemeOutcome:
    """Topology-agnostic greedy minimum subset per interval."""
    solutions = [
        greedy_minimum_subset(
            scenario.topology,
            scenario.power_model,
            matrix,
            utilisation_limit=utilisation_limit,
        )
        for matrix in scenario.trace.matrices()
    ]
    return _solution_outcome(scenario, solutions)


@register("scheme", "lp-relax")
def _lp_relax_scheme(
    scenario: "BuiltScenario",
    k: int = 3,
    utilisation_limit: float = 1.0,
) -> SchemeOutcome:
    """LP relaxation with rounding and repair per interval."""
    solutions = [
        lp_relaxation_with_rounding(
            scenario.topology,
            scenario.power_model,
            matrix,
            k=k,
            utilisation_limit=utilisation_limit,
        )
        for matrix in scenario.trace.matrices()
    ]
    return _solution_outcome(scenario, solutions)


@register("scheme", "pathmilp")
def _pathmilp_scheme(
    scenario: "BuiltScenario",
    k: int = 3,
    utilisation_limit: float = 1.0,
    time_limit_s: Optional[float] = 60.0,
) -> SchemeOutcome:
    """The exact path-restricted MILP per interval (slow; small instances)."""
    config = PathMilpConfig(
        k=k, utilisation_limit=utilisation_limit, time_limit_s=time_limit_s
    )
    solutions = [
        solve_path_milp(scenario.topology, scenario.power_model, matrix, config=config)
        for matrix in scenario.trace.matrices()
    ]
    return _solution_outcome(scenario, solutions)


@register("scheme", "optimal")
def _optimal_scheme(
    scenario: "BuiltScenario",
    k: int = 3,
    time_limit_s: Optional[float] = 60.0,
) -> SchemeOutcome:
    """Per-interval optimal recomputation lower bound.

    Tries the exact MILP and falls back to the traffic-aware GreenTE
    heuristic when the solve cannot finish within its budget (the behaviour
    the Figure 6 lower bound always had).
    """
    solutions: List[EnergyAwareSolution] = []
    for matrix in scenario.trace.matrices():
        try:
            solution = solve_path_milp(
                scenario.topology,
                scenario.power_model,
                matrix,
                config=PathMilpConfig(k=k, time_limit_s=time_limit_s),
                solver_name="optimal",
            )
        except Exception:
            solution = greente_heuristic(
                scenario.topology,
                scenario.power_model,
                matrix,
                k=k,
                allow_overload=True,
            )
        solutions.append(solution)
    return _solution_outcome(scenario, solutions)


# --------------------------------------------------------------------- #
# REsPoNse: precomputed always-on / on-demand / failover paths
# --------------------------------------------------------------------- #

#: ResponseConfig fields settable straight from scheme params.
_RESPONSE_CONFIG_FIELDS = (
    "num_paths",
    "latency_beta",
    "on_demand_method",
    "stress_exclude_fraction",
    "k",
    "utilisation_limit",
    "always_on_method",
    "include_failover",
    "time_limit_s",
)


def _response_outcome(
    scenario: "BuiltScenario",
    variant: Optional[str] = None,
    utilisation_threshold: Optional[float] = None,
    use_peak_matrix: Optional[bool] = None,
    **config_params: Any,
) -> SchemeOutcome:
    unknown = set(config_params) - set(_RESPONSE_CONFIG_FIELDS)
    if unknown:
        raise ConfigurationError(
            f"unknown response scheme parameters {sorted(unknown)}; "
            f"supported: variant, utilisation_threshold, use_peak_matrix, "
            f"{', '.join(_RESPONSE_CONFIG_FIELDS)}"
        )
    if variant is not None:
        config = ResponseConfig.for_variant(variant, **config_params)
    else:
        config = ResponseConfig(**config_params)
    if use_peak_matrix is None:
        # The traffic-aware heuristic needs a peak estimate by definition.
        use_peak_matrix = config.on_demand_method in ("peak", "heuristic")
    threshold = (
        utilisation_threshold
        if utilisation_threshold is not None
        else scenario.utilisation_threshold
    )
    plan = build_response_plan(
        scenario.topology,
        scenario.power_model,
        pairs=scenario.pairs,
        peak_matrix=scenario.peak_matrix() if use_peak_matrix else None,
        config=config,
    )
    power: List[float] = []
    utilisation: List[float] = []
    activations = []
    for matrix in scenario.trace.matrices():
        activation = activate_paths(
            scenario.topology,
            scenario.power_model,
            plan,
            matrix,
            utilisation_threshold=threshold,
        )
        power.append(activation.power_percent)
        utilisation.append(activation.max_utilisation)
        activations.append(activation)
    # The plan is computed once, offline: a REsPoNse replay never recomputes.
    return SchemeOutcome(
        power_percent=power,
        recomputations=0,
        max_utilisation=utilisation,
        details={"plan": plan, "activations": activations},
    )


register("scheme", "response")(_response_outcome)


@register("scheme", "response-lat")
def _response_lat_scheme(scenario: "BuiltScenario", **params: Any) -> SchemeOutcome:
    """REsPoNse with the latency-bounded always-on paths (REsPoNse-lat)."""
    return _response_outcome(scenario, variant="response-lat", **params)


@register("scheme", "response-ospf")
def _response_ospf_scheme(scenario: "BuiltScenario", **params: Any) -> SchemeOutcome:
    """REsPoNse whose on-demand table is the plain OSPF table."""
    return _response_outcome(scenario, variant="response-ospf", **params)


@register("scheme", "response-heuristic")
def _response_heuristic_scheme(scenario: "BuiltScenario", **params: Any) -> SchemeOutcome:
    """REsPoNse with traffic-aware (GreenTE-computed) on-demand paths."""
    return _response_outcome(scenario, variant="response-heuristic", **params)


@register("scheme", "always-on")
def _always_on_scheme(
    scenario: "BuiltScenario",
    k: int = 3,
    latency_beta: Optional[float] = None,
    always_on_method: str = "milp",
) -> SchemeOutcome:
    """Only the always-on subset, regardless of demand (its power floor)."""
    always_on = compute_always_on(
        scenario.topology,
        scenario.power_model,
        pairs=scenario.pairs,
        config=AlwaysOnConfig(k=k, latency_beta=latency_beta, method=always_on_method),
    )
    percent = 100.0 * always_on.power_w / scenario.baseline_power_w
    return SchemeOutcome(
        power_percent=[percent for _ in scenario.trace.matrices()],
        recomputations=0,
        details={"always_on": always_on},
    )


def scenario_baseline_power(topology: Topology, power_model: PowerModel) -> float:
    """Power of the fully powered network (the 100 % reference)."""
    return full_power(topology, power_model).total_w
