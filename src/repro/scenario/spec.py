"""Typed, declarative scenario specifications.

A :class:`ScenarioSpec` names every ingredient of an experiment — topology,
traffic workload, power model, optional baseline routing and one or more
evaluation schemes — by its registry name plus plain keyword parameters.
Specs are plain data: parameters must be JSON-serialisable, so every spec
serialises to/from a dict (and therefore JSON) without loss, and feeds
:meth:`~repro.experiments.runner.SweepPoint.config_hash` unchanged — every
scenario is cacheable and sweepable by construction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..exceptions import ConfigurationError
from .registry import KINDS, is_registered, resolve

#: Default utilisation SLO used by activation-based schemes.
DEFAULT_UTILISATION_THRESHOLD = 0.9


def _plain(value: Any, context: str) -> Any:
    """Normalise a parameter value to plain JSON types (tuples become lists).

    Raises:
        ConfigurationError: If the value cannot be represented in JSON —
            specs must stay declarative so they hash and serialise stably.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_plain(item, context) for item in value]
    if isinstance(value, Mapping):
        plain: Dict[str, Any] = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"{context}: mapping keys must be strings, got {key!r}"
                )
            plain[key] = _plain(item, context)
        return plain
    raise ConfigurationError(
        f"{context}: parameter values must be JSON-serialisable "
        f"(None/bool/int/float/str/list/dict), got {type(value).__qualname__}"
    )


class ComponentSpec:
    """One named component plus its keyword parameters.

    Attributes:
        name: Registry name of the component (e.g. ``"geant"``).
        params: Plain-data keyword parameters passed to the registered
            builder (normalised: tuples become lists).
    """

    #: Registry kind; overridden by each concrete spec class.
    kind = "component"

    __slots__ = ("name", "params")

    def __init__(self, name: str, params: Optional[Mapping[str, Any]] = None, **kwargs: Any):
        if params and kwargs:
            raise ConfigurationError(
                "pass component parameters either as a mapping or as keywords, not both"
            )
        if not isinstance(name, str) or not name:
            raise ConfigurationError(f"component name must be a non-empty string, got {name!r}")
        merged = dict(params or {})
        merged.update(kwargs)
        self.name = name
        self.params = _plain(merged, f"{self.kind} {name!r}")

    def kwargs(self) -> Dict[str, Any]:
        """The parameters as a keyword-argument dictionary (a fresh copy)."""
        return {key: value for key, value in self.params.items()}

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-ready) form: ``{"name": ..., "params": {...}}``."""
        return {"name": self.name, "params": self.kwargs()}

    @classmethod
    def from_dict(cls, data: Any) -> "ComponentSpec":
        """Build a spec from ``{"name": ..., "params": {...}}`` or a bare name."""
        if isinstance(data, str):
            return cls(data)
        if isinstance(data, cls):
            return data
        if not isinstance(data, Mapping) or "name" not in data:
            raise ConfigurationError(
                f"a {cls.kind} spec must be a name or a {{'name', 'params'}} mapping, "
                f"got {data!r}"
            )
        allowed = {"name", "params", "label"} if cls is SchemeSpec else {"name", "params"}
        unknown = set(data) - allowed
        if unknown:
            raise ConfigurationError(
                f"unknown {cls.kind} spec keys {sorted(unknown)} in {dict(data)!r}"
            )
        params = data.get("params") or {}
        if cls is SchemeSpec:
            return SchemeSpec(data["name"], params=params, label=data.get("label"))
        return cls(data["name"], params=params)

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` if the named component is unknown."""
        resolve(self.kind, self.name)  # raises with the registered-name list

    def build(self, *args: Any, **overrides: Any) -> Any:
        """Resolve the registered builder and call it.

        Positional arguments come first (each kind's contract is documented
        in :mod:`repro.scenario.components`), then the spec parameters, with
        *overrides* taking precedence.
        """
        builder = resolve(self.kind, self.name)
        merged = self.kwargs()
        merged.update(overrides)
        return builder(*args, **merged)

    def with_params(self, **overrides: Any) -> "ComponentSpec":
        """A copy with some parameters replaced/added."""
        merged = self.kwargs()
        merged.update(overrides)
        return type(self)(self.name, params=merged)

    def _key(self) -> str:
        return json.dumps(
            [type(self).__qualname__, self.to_dict()], sort_keys=True
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComponentSpec):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__qualname__}({self.name!r}, params={self.params!r})"


class TopologySpec(ComponentSpec):
    """Names a registered topology builder (``fattree``, ``geant``, ...)."""

    kind = "topology"
    __slots__ = ()


class TrafficSpec(ComponentSpec):
    """Names a registered traffic workload (``sinewave``, ``gravity``, ...)."""

    kind = "traffic"
    __slots__ = ()


class PowerSpec(ComponentSpec):
    """Names a registered power model (``cisco``, ``commodity``, ...)."""

    kind = "power"
    __slots__ = ()


class RoutingSpec(ComponentSpec):
    """Names a registered routing-table builder (``ospf-invcap``, ...)."""

    kind = "routing"
    __slots__ = ()


class EventSpec(ComponentSpec):
    """Names a registered timeline event (``link-failure``, ``traffic-surge``, ...).

    Events are the scenario's dynamic axis: each spec resolves (via
    :meth:`~ComponentSpec.build`) to one or more
    :class:`~repro.scenario.timeline.TimelineEvent` objects that the
    timeline engine merges with the trace intervals.
    """

    kind = "event"
    __slots__ = ()


class SchemeSpec(ComponentSpec):
    """Names a registered evaluation scheme (``response``, ``elastictree``, ...).

    Attributes:
        label: Key of this scheme's series in the scenario result; defaults
            to the scheme name (set it when evaluating the same scheme twice
            with different parameters).
    """

    kind = "scheme"
    __slots__ = ("label",)

    def __init__(
        self,
        name: str,
        params: Optional[Mapping[str, Any]] = None,
        label: Optional[str] = None,
        **kwargs: Any,
    ):
        super().__init__(name, params=params, **kwargs)
        self.label = label or name

    def to_dict(self) -> Dict[str, Any]:
        data = super().to_dict()
        if self.label != self.name:
            data["label"] = self.label
        return data

    def with_params(self, **overrides: Any) -> "SchemeSpec":
        merged = self.kwargs()
        merged.update(overrides)
        return SchemeSpec(self.name, params=merged, label=self.label)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative experiment: topology × traffic × power × schemes.

    Attributes:
        topology: The network under evaluation.
        traffic: The demand workload replayed over it.
        power: The device power model.
        schemes: Evaluation schemes compared on the same stack, in order.
        routing: Optional baseline routing-table builder exposed to schemes
            and drivers (e.g. OSPF-InvCap for latency comparisons).
        events: Dynamic mid-run events (failures, repairs, traffic surges)
            merged with the trace by the timeline engine, in order.
        utilisation_threshold: Link-utilisation SLO used by activation-based
            schemes unless a scheme overrides it in its own params.
        name: Human-readable scenario name (also the default result name).
    """

    topology: TopologySpec
    traffic: TrafficSpec
    power: PowerSpec
    schemes: Tuple[SchemeSpec, ...] = ()
    routing: Optional[RoutingSpec] = None
    events: Tuple[EventSpec, ...] = ()
    utilisation_threshold: float = DEFAULT_UTILISATION_THRESHOLD
    name: str = "scenario"

    def __post_init__(self) -> None:
        object.__setattr__(self, "schemes", tuple(self.schemes))
        object.__setattr__(self, "events", tuple(self.events))
        labels = [scheme.label for scheme in self.schemes]
        if len(set(labels)) != len(labels):
            raise ConfigurationError(f"scheme labels are not unique: {labels}")
        if not 0.0 < self.utilisation_threshold <= 1.0:
            raise ConfigurationError(
                "utilisation_threshold must be in (0, 1], "
                f"got {self.utilisation_threshold}"
            )

    def validate(self) -> "ScenarioSpec":
        """Check every named component against the registry; returns ``self``."""
        self.topology.validate()
        self.traffic.validate()
        self.power.validate()
        if self.routing is not None:
            self.routing.validate()
        for scheme in self.schemes:
            scheme.validate()
        for event in self.events:
            event.validate()
        return self

    def to_dict(self) -> Dict[str, Any]:
        """The plain-dict (JSON-ready) form consumed by :meth:`from_dict`."""
        data: Dict[str, Any] = {
            "name": self.name,
            "topology": self.topology.to_dict(),
            "traffic": self.traffic.to_dict(),
            "power": self.power.to_dict(),
            "schemes": [scheme.to_dict() for scheme in self.schemes],
            "utilisation_threshold": self.utilisation_threshold,
        }
        if self.routing is not None:
            data["routing"] = self.routing.to_dict()
        if self.events:
            # Omitted when empty so event-free specs keep a stable dict shape.
            data["events"] = [event.to_dict() for event in self.events]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (or hand-written JSON)."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(f"a scenario spec must be a mapping, got {data!r}")
        missing = {"topology", "traffic", "power"} - set(data)
        if missing:
            raise ConfigurationError(
                f"scenario spec is missing sections: {sorted(missing)}"
            )
        unknown = set(data) - {
            "name",
            "topology",
            "traffic",
            "power",
            "routing",
            "schemes",
            "events",
            "utilisation_threshold",
        }
        if unknown:
            raise ConfigurationError(f"unknown scenario spec keys: {sorted(unknown)}")
        return cls(
            topology=TopologySpec.from_dict(data["topology"]),
            traffic=TrafficSpec.from_dict(data["traffic"]),
            power=PowerSpec.from_dict(data["power"]),
            schemes=tuple(
                SchemeSpec.from_dict(scheme) for scheme in data.get("schemes", ())
            ),
            routing=(
                RoutingSpec.from_dict(data["routing"]) if data.get("routing") else None
            ),
            events=tuple(
                EventSpec.from_dict(event) for event in data.get("events", ())
            ),
            utilisation_threshold=float(
                data.get("utilisation_threshold", DEFAULT_UTILISATION_THRESHOLD)
            ),
            name=str(data.get("name", "scenario")),
        )

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a JSON document into a spec."""
        return cls.from_dict(json.loads(text))

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def config_hash(self) -> str:
        """The sweep-cache hash of running this scenario (stable across processes)."""
        return self.sweep_point().config_hash()

    def sweep_point(self):
        """This scenario as a :class:`~repro.experiments.runner.SweepPoint`.

        The point's function is the importable
        :func:`repro.scenario.engine.run_scenario_dict`, so a spec drops
        straight into a :class:`~repro.experiments.runner.Sweep` and is
        cached/fanned out like any other experiment point.
        """
        from ..experiments.runner import point

        return point(
            "repro.scenario.engine:run_scenario_dict",
            label=self.name,
            spec=self.to_dict(),
        )

    def with_schemes(self, *schemes: SchemeSpec, name: Optional[str] = None) -> "ScenarioSpec":
        """A copy evaluating different schemes on the same stack."""
        return replace(
            self, schemes=tuple(schemes), name=name if name is not None else self.name
        )

    def with_events(self, *events: EventSpec, name: Optional[str] = None) -> "ScenarioSpec":
        """A copy replaying the same stack under different dynamic events."""
        return replace(
            self, events=tuple(events), name=name if name is not None else self.name
        )

    def scheme_labels(self) -> List[str]:
        """The result-series labels, in scheme order."""
        return [scheme.label for scheme in self.schemes]


__all__ = [
    "DEFAULT_UTILISATION_THRESHOLD",
    "KINDS",
    "ComponentSpec",
    "TopologySpec",
    "TrafficSpec",
    "PowerSpec",
    "RoutingSpec",
    "EventSpec",
    "SchemeSpec",
    "ScenarioSpec",
    "is_registered",
]
