"""Unit helpers used throughout the library.

All internal quantities are stored in SI base units:

* bandwidth and traffic demand in **bits per second** (bps),
* latency and time in **seconds**,
* power in **watts**.

The helpers below exist so that call sites can state their intent
(``mbps(10)`` rather than ``10_000_000``) and so that tests can assert on
round-trips.  They deliberately stay plain functions: the quantities flow
through numpy arrays in the optimisation layer and wrapping them in a unit
type would add overhead without adding safety.
"""

from __future__ import annotations

#: Number of bits in a kilobit / megabit / gigabit (decimal, networking usage).
KILO = 1_000.0
MEGA = 1_000_000.0
GIGA = 1_000_000_000.0

#: Number of seconds in common wall-clock units.
MINUTE = 60.0
HOUR = 3_600.0
DAY = 86_400.0


def kbps(value: float) -> float:
    """Return *value* kilobits per second expressed in bits per second."""
    return float(value) * KILO


def mbps(value: float) -> float:
    """Return *value* megabits per second expressed in bits per second."""
    return float(value) * MEGA


def gbps(value: float) -> float:
    """Return *value* gigabits per second expressed in bits per second."""
    return float(value) * GIGA


def to_mbps(value_bps: float) -> float:
    """Convert a bits-per-second quantity to megabits per second."""
    return float(value_bps) / MEGA


def to_gbps(value_bps: float) -> float:
    """Convert a bits-per-second quantity to gigabits per second."""
    return float(value_bps) / GIGA


def milliseconds(value: float) -> float:
    """Return *value* milliseconds expressed in seconds."""
    return float(value) / 1_000.0


def to_milliseconds(value_s: float) -> float:
    """Convert a seconds quantity to milliseconds."""
    return float(value_s) * 1_000.0


def minutes(value: float) -> float:
    """Return *value* minutes expressed in seconds."""
    return float(value) * MINUTE


def hours(value: float) -> float:
    """Return *value* hours expressed in seconds."""
    return float(value) * HOUR


def days(value: float) -> float:
    """Return *value* days expressed in seconds."""
    return float(value) * DAY


def watts(value: float) -> float:
    """Identity helper for readability when constructing power models."""
    return float(value)


def percent(fraction: float) -> float:
    """Convert a fraction in ``[0, 1]`` to a percentage."""
    return float(fraction) * 100.0


def fraction(percentage: float) -> float:
    """Convert a percentage to a fraction in ``[0, 1]``."""
    return float(percentage) / 100.0
