"""Power models and network-wide power accounting."""

from .accounting import (
    PowerBreakdown,
    energy_savings_percentage,
    full_power,
    network_power,
    power_percentage,
)
from .alternative import CHASSIS_REDUCTION_FACTOR, AlternativeHardwarePowerModel
from .cisco import (
    AMPLIFIER_POWER_W,
    CISCO_CHASSIS_POWER_W,
    CiscoRouterPowerModel,
    line_card_power_for_capacity,
)
from .commodity import CommoditySwitchPowerModel
from .model import PowerModel

__all__ = [
    "PowerBreakdown",
    "energy_savings_percentage",
    "full_power",
    "network_power",
    "power_percentage",
    "AlternativeHardwarePowerModel",
    "CHASSIS_REDUCTION_FACTOR",
    "AMPLIFIER_POWER_W",
    "CISCO_CHASSIS_POWER_W",
    "CiscoRouterPowerModel",
    "line_card_power_for_capacity",
    "CommoditySwitchPowerModel",
    "PowerModel",
]
