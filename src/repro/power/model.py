"""Abstract power model interface (Section 2.2.1 of the paper).

The paper's objective charges, for every powered-on router ``i``:

* a chassis cost ``Pc(i)``,
* a per-port (line-card) cost ``Pl(i -> j)`` for every active arc leaving
  ``i``, linearly proportional to the number of used ports,
* an optical amplifier cost ``Pa(i -> j)`` that depends only on link length.

Concrete models (:mod:`repro.power.cisco`, :mod:`repro.power.alternative`,
:mod:`repro.power.commodity`) provide the constants; the network-wide
aggregation lives in :mod:`repro.power.accounting`.
"""

from __future__ import annotations

import abc

from ..topology.base import Arc, Node


class PowerModel(abc.ABC):
    """Per-element power costs of network devices.

    Host nodes (``kind == "host"``) are end systems, not network elements;
    every concrete model reports zero power for them and for the host side of
    host-attachment links so that datacenter topologies with explicit hosts
    account only for switch power.
    """

    #: Human-readable model name used in experiment output.
    name: str = "abstract"

    @abc.abstractmethod
    def chassis_power_w(self, node: Node) -> float:
        """Power drawn by the chassis of *node* when the node is on (watts)."""

    @abc.abstractmethod
    def port_power_w(self, arc: Arc) -> float:
        """Power drawn by the port/line card at ``arc.src`` feeding *arc* (watts)."""

    def amplifier_power_w(self, arc: Arc) -> float:
        """Power drawn by optical amplifiers along *arc* (watts).

        The default is zero; long-haul models override this.  The paper treats
        amplifier power (about 1.2 W per repeater) as negligible compared to
        line cards and chassis.
        """
        return 0.0

    # ------------------------------------------------------------------ #
    # Convenience aggregates
    # ------------------------------------------------------------------ #
    def arc_power_w(self, arc: Arc) -> float:
        """Port plus amplifier power attributed to *arc* (watts)."""
        return self.port_power_w(arc) + self.amplifier_power_w(arc)

    def node_power_w(self, node: Node, active_arcs: list[Arc]) -> float:
        """Total power of *node* given its active outgoing arcs (watts)."""
        total = self.chassis_power_w(node)
        for arc in active_arcs:
            total += self.arc_power_w(arc)
        return total

    @staticmethod
    def _is_host(node: Node) -> bool:
        return node.kind == "host"
