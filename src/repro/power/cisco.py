"""Cisco 12000-series router power model (Section 5.1 of the paper).

The paper's representative ISP hardware model: "each line-card (OC3, OC48,
OC192) consumes between 60 and 174 W, depending on its operating speed, while
the chassis consumes about 600 W (around 60 % of the router's power budget)".
Optical repeaters draw about 1.2 W and are negligible in comparison.
"""

from __future__ import annotations

from ..topology.base import Arc, Node
from ..units import gbps, mbps
from .model import PowerModel

#: Chassis power of a typical Cisco 12000 configuration.
CISCO_CHASSIS_POWER_W = 600.0

#: Line-card power by interface class (watts).
OC3_PORT_POWER_W = 60.0     # 155 Mb/s
OC12_PORT_POWER_W = 80.0    # 622 Mb/s
OC48_PORT_POWER_W = 140.0   # 2.5 Gb/s
OC192_PORT_POWER_W = 174.0  # 10 Gb/s

#: Power of one optical repeater/amplifier span (Teleste figure cited in the paper).
AMPLIFIER_POWER_W = 1.2

#: Fibre span length between amplifiers (km).
AMPLIFIER_SPAN_KM = 80.0


def line_card_power_for_capacity(capacity_bps: float) -> float:
    """Line-card power for a port of the given speed.

    The mapping follows the OC3/OC12/OC48/OC192 classes the paper quotes;
    intermediate speeds round up to the next class.
    """
    if capacity_bps <= mbps(155):
        return OC3_PORT_POWER_W
    if capacity_bps <= mbps(622):
        return OC12_PORT_POWER_W
    if capacity_bps <= gbps(2.5):
        return OC48_PORT_POWER_W
    return OC192_PORT_POWER_W


class CiscoRouterPowerModel(PowerModel):
    """Representative "hardware of today" ISP router power model."""

    name = "cisco-12000"

    def __init__(
        self,
        chassis_power_w: float = CISCO_CHASSIS_POWER_W,
        include_amplifiers: bool = True,
    ) -> None:
        self._chassis_power_w = float(chassis_power_w)
        self._include_amplifiers = bool(include_amplifiers)

    def chassis_power_w(self, node: Node) -> float:
        """Chassis power; zero for host nodes."""
        if self._is_host(node):
            return 0.0
        return self._chassis_power_w

    def port_power_w(self, arc: Arc) -> float:
        """Line-card power for the port at ``arc.src``; zero if it is a host."""
        if arc.src.startswith("host"):
            return 0.0
        return line_card_power_for_capacity(arc.capacity_bps)

    def amplifier_power_w(self, arc: Arc) -> float:
        """Amplifier power along *arc*: one repeater per 80 km span."""
        if not self._include_amplifiers or arc.length_km <= 0:
            return 0.0
        spans = int(arc.length_km // AMPLIFIER_SPAN_KM)
        return spans * AMPLIFIER_POWER_W
