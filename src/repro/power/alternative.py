"""The paper's "alternative hardware model" (Section 5.1).

To reflect ongoing efforts toward energy-proportional network elements, the
paper also evaluates a model "in which the power budget for always-on
components (chassis) is reduced by factor of 10".  Line-card power is
unchanged; only the fixed chassis overhead shrinks, which increases the
fraction of power that the REsPoNse path selection can actually remove
(Figure 5 reports 42 % savings under this model versus 30 % today).
"""

from __future__ import annotations

from .cisco import CISCO_CHASSIS_POWER_W, CiscoRouterPowerModel

#: Factor by which the chassis budget is reduced.
CHASSIS_REDUCTION_FACTOR = 10.0


class AlternativeHardwarePowerModel(CiscoRouterPowerModel):
    """Cisco line cards with a ten-times smaller chassis budget."""

    name = "alternative-hw"

    def __init__(self, include_amplifiers: bool = True) -> None:
        super().__init__(
            chassis_power_w=CISCO_CHASSIS_POWER_W / CHASSIS_REDUCTION_FACTOR,
            include_amplifiers=include_amplifiers,
        )
