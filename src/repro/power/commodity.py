"""Commodity datacenter switch power model (Section 5.1 of the paper).

For fat-tree datacenter networks built from commodity switches the paper uses
"a model that captures the energy-unproportionality of off-the-shelf
switches, in which the fixed overheads due to fans, switch chips, and
transceivers amount to about 90 % of the peak power budget even if there is
no traffic".  A switch whose traffic has been removed can enter a low-power
state consuming a negligible amount of power.

The model splits a configurable peak budget into a fixed (chassis) part and a
per-port part such that a switch with all its ports active draws exactly the
peak budget.
"""

from __future__ import annotations

from ..topology.base import Arc, Node
from .model import PowerModel

#: Peak power of a commodity top-of-rack/aggregation switch (watts).
DEFAULT_PEAK_POWER_W = 150.0

#: Fraction of the peak budget that is fixed overhead.
DEFAULT_FIXED_FRACTION = 0.9

#: Port count at which the switch reaches its peak budget.
DEFAULT_PORTS_AT_PEAK = 48


class CommoditySwitchPowerModel(PowerModel):
    """Energy-unproportional commodity switch: ~90 % of peak is fixed."""

    name = "commodity-switch"

    def __init__(
        self,
        peak_power_w: float = DEFAULT_PEAK_POWER_W,
        fixed_fraction: float = DEFAULT_FIXED_FRACTION,
        ports_at_peak: int = DEFAULT_PORTS_AT_PEAK,
    ) -> None:
        if not 0.0 <= fixed_fraction <= 1.0:
            raise ValueError(f"fixed_fraction must be in [0, 1], got {fixed_fraction}")
        if ports_at_peak <= 0:
            raise ValueError(f"ports_at_peak must be positive, got {ports_at_peak}")
        self._peak_power_w = float(peak_power_w)
        self._fixed_fraction = float(fixed_fraction)
        self._ports_at_peak = int(ports_at_peak)

    @property
    def peak_power_w(self) -> float:
        """Peak (all ports active) power budget of one switch."""
        return self._peak_power_w

    @property
    def fixed_power_w(self) -> float:
        """Fixed overhead drawn by a powered-on switch regardless of traffic."""
        return self._peak_power_w * self._fixed_fraction

    @property
    def per_port_power_w(self) -> float:
        """Incremental power of one active port."""
        return self._peak_power_w * (1.0 - self._fixed_fraction) / self._ports_at_peak

    def chassis_power_w(self, node: Node) -> float:
        """Fixed switch overhead; zero for host nodes."""
        if self._is_host(node):
            return 0.0
        return self.fixed_power_w

    def port_power_w(self, arc: Arc) -> float:
        """Per-port power at ``arc.src``; zero if the port belongs to a host."""
        if arc.src.startswith("host"):
            return 0.0
        return self.per_port_power_w
