"""Network-wide power accounting.

Implements the paper's objective function

.. math::

    \\sum_{i \\in N} X_i \\Big[ P_c(i)
        + \\sum_{i \\to j \\in A_i} Y_{i \\to j}
          \\big(P_l(i \\to j) + P_a(i \\to j)\\big) \\Big]

for an arbitrary subset of powered-on nodes (``X_i = 1``) and active links
(``Y_{i \\to j} = 1``).  Host nodes contribute nothing, and arcs whose origin
is a host contribute no port power (the attached switch port does, from the
switch side of the link).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Set, Tuple

from ..exceptions import TopologyError
from ..topology.base import Topology, link_key
from .model import PowerModel


@dataclass(frozen=True)
class PowerBreakdown:
    """Network power decomposed into the paper's three components (watts)."""

    chassis_w: float
    ports_w: float
    amplifiers_w: float

    @property
    def total_w(self) -> float:
        """Total network power in watts."""
        return self.chassis_w + self.ports_w + self.amplifiers_w

    def as_dict(self) -> dict:
        """The breakdown as a plain dictionary (for reports and tests)."""
        return {
            "chassis_w": self.chassis_w,
            "ports_w": self.ports_w,
            "amplifiers_w": self.amplifiers_w,
            "total_w": self.total_w,
        }


def _normalise_active_links(
    topology: Topology,
    active_links: Optional[Iterable[Tuple[str, str]]],
    active_nodes: Set[str],
) -> Set[Tuple[str, str]]:
    """Resolve the set of active undirected link keys.

    When *active_links* is ``None`` every link whose two endpoints are active
    is considered active (constraint (1) of the paper applied permissively).
    Links with a powered-off endpoint are always excluded.
    """
    if active_links is None:
        candidate_keys = topology.link_keys()
    else:
        candidate_keys = [link_key(u, v) for (u, v) in active_links]
        unknown = [key for key in candidate_keys if not topology.has_link(*key)]
        if unknown:
            raise TopologyError(f"active link does not exist in topology: {unknown[0]}")
    return {
        key
        for key in candidate_keys
        if key[0] in active_nodes and key[1] in active_nodes
    }


def network_power(
    topology: Topology,
    model: PowerModel,
    active_nodes: Optional[Iterable[str]] = None,
    active_links: Optional[Iterable[Tuple[str, str]]] = None,
) -> PowerBreakdown:
    """Compute the power drawn by an active subset of the network.

    Args:
        topology: The physical topology.
        model: Per-element power model.
        active_nodes: Names of powered-on nodes; defaults to all nodes.
            Nodes marked ``always_powered`` are counted as on even when not
            listed, matching the paper's treatment of feeder nodes.
        active_links: Canonical or directed ``(u, v)`` pairs of active links;
            defaults to every link between two active nodes.

    Returns:
        The :class:`PowerBreakdown` of the active subset.
    """
    if active_nodes is None:
        active = set(topology.nodes())
    else:
        active = set(active_nodes)
        unknown = active - set(topology.nodes())
        if unknown:
            raise TopologyError(f"active node does not exist in topology: {min(unknown)}")
        active |= {
            name for name in topology.nodes() if topology.node(name).always_powered
        }

    active_link_keys = _normalise_active_links(topology, active_links, active)

    chassis_w = 0.0
    for name in active:
        node = topology.node(name)
        if node.kind == "host":
            continue
        chassis_w += model.chassis_power_w(node)

    ports_w = 0.0
    amplifiers_w = 0.0
    for key in active_link_keys:
        link = topology.link(*key)
        for src, dst in link.arc_keys():
            if topology.node(src).kind == "host":
                continue
            arc = topology.arc(src, dst)
            ports_w += model.port_power_w(arc)
            amplifiers_w += model.amplifier_power_w(arc)

    return PowerBreakdown(chassis_w=chassis_w, ports_w=ports_w, amplifiers_w=amplifiers_w)


def full_power(topology: Topology, model: PowerModel) -> PowerBreakdown:
    """Power of the network with every element powered on ("original power")."""
    return network_power(topology, model)


def power_percentage(
    topology: Topology,
    model: PowerModel,
    active_nodes: Optional[Iterable[str]] = None,
    active_links: Optional[Iterable[Tuple[str, str]]] = None,
) -> float:
    """Power of the active subset as a percentage of the original power.

    This is the y-axis of Figures 4, 5, 6 and 8a of the paper.
    """
    baseline = full_power(topology, model).total_w
    if baseline <= 0.0:
        return 0.0
    subset = network_power(topology, model, active_nodes, active_links).total_w
    return 100.0 * subset / baseline


def energy_savings_percentage(
    topology: Topology,
    model: PowerModel,
    active_nodes: Optional[Iterable[str]] = None,
    active_links: Optional[Iterable[Tuple[str, str]]] = None,
) -> float:
    """Savings relative to the fully powered network, in percent."""
    return 100.0 - power_percentage(topology, model, active_nodes, active_links)
