"""The reprolint rule catalogue.

Each rule encodes one contract the test suite currently guards only by
brute force (differential dump batteries, concurrency fault injection).
The ids group by contract family:

* ``REP1xx`` — determinism: the engine packages must stay bit-identical
  across serial/batch/worker/traced runs and, eventually, across hosts.
* ``REP2xx`` — store discipline: every mutation of a campaign store goes
  through the ``BEGIN IMMEDIATE`` transaction helper; connection intent
  (read vs write) is explicit at the call site.
* ``REP3xx`` — observability hygiene: closed label sets, literal metric
  names, spans only as context managers.
* ``REP4xx`` — robustness: no bare or silently-swallowed exceptions.

``docs/static-analysis.md`` carries the full catalogue with the *why*
per rule; keep the two in sync when adding rules.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .engine import Finding, ModuleContext, Rule

__all__ = ["ALL_RULES", "rules_by_id"]


# --------------------------------------------------------------------- #
# Scoping helpers
# --------------------------------------------------------------------- #
#: Packages whose results feed ``canonical_dump`` and must therefore be
#: reproducible to the bit: no wall clocks, no unseeded randomness, no
#: order-dependent reductions or unordered iteration.
DETERMINISTIC_PACKAGES = (
    "simulator",
    "scenario",
    "core",
    "routing",
    "traffic",
    "topology",
)

#: Modules where float reductions sit on the fairness/MCF hot path and
#: ``pairwise_sum`` is the ordered primitive (fixed accumulation tree,
#: identical on every host — see PR 6's last-ULP wobble).
ORDERED_SUM_MODULES = (
    "repro/simulator/fairness.py",
    "repro/simulator/network.py",
    "repro/simulator/aggregate.py",
    "repro/routing/mcf.py",
)


def _module_parts(rel_path: str) -> Tuple[str, ...]:
    parts = rel_path.replace("\\", "/").split("/")
    if "repro" in parts:
        parts = parts[parts.index("repro") + 1 :]
    return tuple(parts)


def _in_packages(rel_path: str, packages: Sequence[str]) -> bool:
    parts = _module_parts(rel_path)
    return bool(parts) and parts[0] in packages


def _in_deterministic_code(rel_path: str) -> bool:
    # obs/ is the one place allowed to read clocks; it must never feed
    # results (pinned by the traced-vs-untraced identity tests).
    parts = _module_parts(rel_path)
    return bool(parts) and parts[0] in DETERMINISTIC_PACKAGES and parts[0] != "obs"


def _call_name(ctx: ModuleContext, node: ast.Call) -> Optional[str]:
    return ctx.resolve_name(node.func)


# --------------------------------------------------------------------- #
# REP1xx — determinism
# --------------------------------------------------------------------- #
class WallClockRule(Rule):
    id = "REP101"
    title = "wall-clock read in deterministic engine code"
    rationale = (
        "Engine results must be bit-identical across serial/batch/worker "
        "and (ROADMAP item 5) cross-host runs; any clock read that leaks "
        "into results breaks canonical_dump identity.  Timing belongs in "
        "repro.obs spans or in the orchestration layers."
    )

    CLOCKS = {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }

    def applies_to(self, rel_path: str) -> bool:
        return _in_deterministic_code(rel_path)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call in ctx.calls():
            name = _call_name(ctx, call)
            if name is None:
                continue
            # `from datetime import datetime` resolves to datetime.now;
            # normalise both spellings onto the canonical dotted name.
            if name in ("datetime.now", "datetime.utcnow", "datetime.today"):
                name = "datetime." + name
            if name in self.CLOCKS:
                yield ctx.finding(
                    self,
                    call,
                    f"{name}() read in deterministic engine code; results "
                    "must not depend on the clock (use repro.obs spans for "
                    "timing)",
                )


class UnseededRandomRule(Rule):
    id = "REP102"
    title = "unseeded or global-state randomness in engine code"
    rationale = (
        "Every random draw in the engine must come from an explicitly "
        "seeded generator threaded through the scenario spec, or two runs "
        "of the same config hash diverge and the sweep cache serves wrong "
        "results."
    )

    #: numpy.random attributes that are legitimate with an explicit seed.
    SEEDED_FACTORIES = {"default_rng", "Generator", "SeedSequence", "PCG64"}

    def applies_to(self, rel_path: str) -> bool:
        return _in_deterministic_code(rel_path)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call in ctx.calls():
            name = _call_name(ctx, call)
            if name is None:
                continue
            if name == "random.Random" and (call.args or call.keywords):
                continue  # an explicitly seeded stdlib generator is fine
            if name.startswith("random."):
                yield ctx.finding(
                    self,
                    call,
                    f"stdlib {name}() uses hidden global RNG state; use a "
                    "seeded numpy Generator from the scenario spec instead",
                )
            elif name.startswith("numpy.random."):
                attr = name.split(".")[-1]
                if attr not in self.SEEDED_FACTORIES:
                    yield ctx.finding(
                        self,
                        call,
                        f"{name}() draws from numpy's global RNG state; "
                        "construct numpy.random.default_rng(seed) instead",
                    )
                elif not call.args and not call.keywords:
                    yield ctx.finding(
                        self,
                        call,
                        f"{name}() without a seed is entropy-seeded; pass "
                        "the scenario's seed explicitly",
                    )


class UnorderedReductionRule(Rule):
    id = "REP103"
    title = "raw sum on the ordered-reduction hot path"
    rationale = (
        "np.sum picks its accumulation tree from memory alignment, which "
        "cost PR 6 a cross-interpreter last-ULP wobble; pairwise_sum is "
        "the fixed-order primitive on the fairness/MCF hot paths.  "
        "Integer counts are exactly associative: wrapping the sum in "
        "int(...) marks them safe."
    )

    def applies_to(self, rel_path: str) -> bool:
        normalized = rel_path.replace("\\", "/")
        return any(normalized.endswith(module) for module in ORDERED_SUM_MODULES)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call in ctx.calls():
            name = _call_name(ctx, call)
            is_np_sum = name == "numpy.sum"
            is_method_sum = (
                isinstance(call.func, ast.Attribute) and call.func.attr == "sum"
            )
            if not (is_np_sum or is_method_sum):
                continue
            if self._within_int(ctx, call):
                continue
            spelled = "np.sum" if is_np_sum else ".sum()"
            yield ctx.finding(
                self,
                call,
                f"raw {spelled} on the ordered-reduction hot path; float "
                "accumulation order must be fixed — use pairwise_sum, or "
                "wrap integer counts in int(...)",
            )

    @staticmethod
    def _within_int(ctx: ModuleContext, node: ast.AST) -> bool:
        for ancestor in ctx.ancestors(node):
            if (
                isinstance(ancestor, ast.Call)
                and isinstance(ancestor.func, ast.Name)
                and ancestor.func.id == "int"
            ):
                return True
        return False


class SetIterationRule(Rule):
    id = "REP104"
    title = "iteration over an unordered set in engine code"
    rationale = (
        "Set iteration order depends on insertion history and hash "
        "randomisation of the running interpreter; anything it feeds — "
        "series, plans, serialized output — can differ between two "
        "bit-identical configs.  Iterate sorted(...) instead."
    )

    SET_CONSTRUCTORS = {"set", "frozenset"}

    def applies_to(self, rel_path: str) -> bool:
        return _in_deterministic_code(rel_path)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        set_names = self._set_typed_names(ctx)
        iteration_sites: List[ast.expr] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iteration_sites.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iteration_sites.extend(gen.iter for gen in node.generators)
        for site in iteration_sites:
            if self._is_set_expr(ctx, site, set_names):
                yield ctx.finding(
                    self,
                    site,
                    "iterating an unordered set; wrap it in sorted(...) so "
                    "downstream series and serialized output stay "
                    "deterministic",
                )

    def _set_typed_names(self, ctx: ModuleContext) -> Set[str]:
        """Local names whose every assignment is a set-typed expression.

        One-pass flow-insensitive scope tracking: a name qualifies only
        when *all* its assignments in the file are set expressions, so a
        name rebound to a list later never false-positives.
        """
        assigned: Dict[str, List[bool]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    assigned.setdefault(target.id, []).append(
                        self._is_set_expr(ctx, value, set())
                    )
        return {name for name, flags in assigned.items() if flags and all(flags)}

    def _is_set_expr(
        self, ctx: ModuleContext, node: ast.expr, set_names: Set[str]
    ) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _call_name(ctx, node)
            if name in self.SET_CONSTRUCTORS:
                return True
            # set.union(...) / set(...).difference(...) chains
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union",
                "difference",
                "intersection",
                "symmetric_difference",
            ):
                return self._is_set_expr(ctx, node.func.value, set_names)
            return False
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(ctx, node.left, set_names) or self._is_set_expr(
                ctx, node.right, set_names
            )
        return False


# --------------------------------------------------------------------- #
# REP2xx — store discipline
# --------------------------------------------------------------------- #
class StoreMutationRule(Rule):
    id = "REP201"
    title = "store mutation outside the transaction helper"
    rationale = (
        "Every campaign-store mutation must run inside "
        "CampaignStore.transaction() — the short BEGIN IMMEDIATE block "
        "that makes chunks atomic, keeps writers queueing instead of "
        "deadlocking, and rolls back on any exception.  A raw INSERT on "
        "an autocommit connection can publish half a chunk."
    )

    MUTATING_PREFIXES = ("insert", "update", "delete", "replace")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call in ctx.calls():
            if not isinstance(call.func, ast.Attribute):
                continue
            if call.func.attr not in ("execute", "executemany", "executescript"):
                continue
            if not call.args:
                continue
            sql = call.args[0]
            text = self._literal_text(sql)
            if text is None:
                continue
            statement = text.lstrip().lower()
            if not statement.startswith(self.MUTATING_PREFIXES):
                continue
            if self._inside_transaction_with(ctx, call):
                continue
            if self._connection_is_parameter(ctx, call):
                # A helper that *receives* the connection is explicitly
                # transaction-agnostic: the caller owns the BEGIN IMMEDIATE
                # block (e.g. CampaignStore._persist_record).
                continue
            verb = statement.split(None, 1)[0].upper()
            yield ctx.finding(
                self,
                call,
                f"{verb} executed outside a `with ....transaction()` block; "
                "campaign-store mutations must go through the BEGIN "
                "IMMEDIATE helper",
            )

    @staticmethod
    def _literal_text(node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        # "INSERT ..." "OR IGNORE ..." implicit concatenation parses as a
        # single Constant; explicit + concatenation of literals does not —
        # resolve the left-most operand, which carries the verb.
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            return StoreMutationRule._literal_text(node.left)
        if isinstance(node, ast.JoinedStr) and node.values:
            first = node.values[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                return first.value
        return None

    @staticmethod
    def _connection_is_parameter(ctx: ModuleContext, call: ast.Call) -> bool:
        receiver = call.func.value if isinstance(call.func, ast.Attribute) else None
        while isinstance(receiver, ast.Attribute):
            receiver = receiver.value
        if not isinstance(receiver, ast.Name):
            return False
        for ancestor in ctx.ancestors(call):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                arguments = ancestor.args
                names = {
                    arg.arg
                    for arg in (
                        arguments.posonlyargs + arguments.args + arguments.kwonlyargs
                    )
                }
                return receiver.id in names and receiver.id != "self"
        return False

    @staticmethod
    def _inside_transaction_with(ctx: ModuleContext, node: ast.AST) -> bool:
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    expr = item.context_expr
                    if (
                        isinstance(expr, ast.Call)
                        and isinstance(expr.func, ast.Attribute)
                        and expr.func.attr == "transaction"
                    ):
                        return True
        return False


class ExplicitStoreIntentRule(Rule):
    id = "REP202"
    title = "CampaignStore opened without explicit read_only intent"
    rationale = (
        "Read paths must use read_only=True connections (they never take "
        "the write lock, so status/report/service reads cannot stall a "
        "drain), and a writable connection should be visibly intentional. "
        "Every CampaignStore(...) call therefore states read_only= "
        "explicitly."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call in ctx.calls():
            name = _call_name(ctx, call)
            if name is None or not name.endswith("CampaignStore"):
                continue
            keywords = {keyword.arg for keyword in call.keywords}
            if "read_only" in keywords:
                continue
            yield ctx.finding(
                self,
                call,
                "CampaignStore(...) without read_only=; state the intent "
                "explicitly (read_only=True for read paths, "
                "read_only=False for the writer)",
            )


# --------------------------------------------------------------------- #
# REP3xx — observability hygiene
# --------------------------------------------------------------------- #
class InterpolatedLabelRule(Rule):
    id = "REP301"
    title = "interpolated metric label value"
    rationale = (
        "Label sets must stay closed: an f-string label value (a campaign "
        "id, a path) creates unbounded child cardinality, which bloats "
        "every /metrics scrape forever — the registry never forgets a "
        "child.  PR 9's _route_class exists precisely to fold ids into "
        "template labels."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call in ctx.calls():
            if not (
                isinstance(call.func, ast.Attribute) and call.func.attr == "labels"
            ):
                continue
            for keyword in call.keywords:
                if keyword.arg is None or keyword.value is None:
                    continue
                if self._interpolates(ctx, keyword.value):
                    yield ctx.finding(
                        self,
                        keyword.value,
                        f"label {keyword.arg!r} is built by string "
                        "interpolation; metric labels must come from a "
                        "closed set (pass a template/class value instead)",
                    )

    @staticmethod
    def _interpolates(ctx: ModuleContext, node: ast.expr) -> bool:
        if isinstance(node, ast.JoinedStr):
            # A pure-literal f-string has no FormattedValue parts.
            return any(
                isinstance(value, ast.FormattedValue) for value in node.values
            )
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute) and node.func.attr == "format":
                return True
            if isinstance(node.func, ast.Name) and node.func.id in ("str", "repr"):
                return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Mod, ast.Add)):
            return any(
                isinstance(side, (ast.Constant, ast.JoinedStr))
                and not isinstance(getattr(side, "value", None), (int, float))
                for side in (node.left, node.right)
            )
        return False


class LiteralMetricNameRule(Rule):
    id = "REP302"
    title = "dynamic metric name"
    rationale = (
        "Metric families are forever: a dynamically-built name is an "
        "unbounded registry and defeats grep-ability of the taxonomy in "
        "docs/observability.md.  Names are string literals at the call "
        "site."
    )

    FACTORIES = ("counter", "gauge", "histogram")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call in ctx.calls():
            name = _call_name(ctx, call)
            if name is None:
                continue
            if not any(
                name == factory
                or name.endswith(f"metrics.{factory}")
                or name.endswith(f"registry.{factory}")
                for factory in self.FACTORIES
            ):
                continue
            if not self._resolves_to_metrics(ctx, name):
                continue
            target = call.args[0] if call.args else None
            for keyword in call.keywords:
                if keyword.arg == "name":
                    target = keyword.value
            if target is None:
                continue
            if isinstance(target, ast.Constant) and isinstance(target.value, str):
                continue
            yield ctx.finding(
                self,
                target,
                "metric name is not a string literal; families are "
                "process-wide and forever, so names must be greppable "
                "constants",
            )

    @staticmethod
    def _resolves_to_metrics(ctx: ModuleContext, name: str) -> bool:
        if "metrics." in name or "registry." in name:
            return True
        # Bare counter(...) only counts when imported from the obs package.
        head = name.split(".")[0]
        dotted = ctx.aliases.get(head, "")
        return "metrics" in dotted or "obs" in dotted


class SpanContextManagerRule(Rule):
    id = "REP303"
    title = "span(...) not used as a context manager"
    rationale = (
        "span() returns a shared no-op singleton when tracing is off; "
        "holding it, passing it around, or calling __enter__ manually "
        "breaks the span stack's nesting (parent_id attribution) and the "
        "disabled fast path.  The only supported shape is "
        "`with span(...):`."
    )

    def applies_to(self, rel_path: str) -> bool:
        parts = _module_parts(rel_path)
        return not (parts and parts[0] == "obs")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call in ctx.calls():
            name = _call_name(ctx, call)
            if name is None:
                continue
            if not (name == "span" or name.endswith("trace.span")):
                continue
            if name == "span" and "span" not in ctx.aliases:
                continue  # a local def span(...), not repro.obs.trace.span
            parent = ctx.parent_of(call)
            if isinstance(parent, ast.withitem):
                continue
            yield ctx.finding(
                self,
                call,
                "span(...) must be used directly as a context manager "
                "(`with span(...) as s:`); storing or passing the span "
                "object breaks nesting and the disabled fast path",
            )


# --------------------------------------------------------------------- #
# REP4xx — robustness
# --------------------------------------------------------------------- #
class BareExceptRule(Rule):
    id = "REP401"
    title = "bare except:"
    rationale = (
        "A bare except catches SystemExit and KeyboardInterrupt, so a "
        "worker stuck in one cannot be stopped cleanly and a lease is "
        "held until expiry.  Catch Exception (or BaseException with a "
        "re-raise) and say which."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    self,
                    node,
                    "bare except: catches KeyboardInterrupt/SystemExit; "
                    "name the exception type (Exception at the broadest)",
                )


class SilentExceptRule(Rule):
    id = "REP402"
    title = "broad exception silently swallowed"
    rationale = (
        "`except Exception: pass` in a worker/lease/service loop turns a "
        "crashed point into a silently-missing row — exactly the failure "
        "the campaign store's error column and the job registry exist to "
        "record.  Log it, record it, or re-raise."
    )

    BROAD = {"Exception", "BaseException"}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(ctx, node.type):
                continue
            if all(
                isinstance(stmt, (ast.Pass, ast.Continue)) for stmt in node.body
            ) or (
                len(node.body) == 1
                and isinstance(node.body[0], ast.Expr)
                and isinstance(node.body[0].value, ast.Constant)
            ):
                yield ctx.finding(
                    self,
                    node,
                    "broad exception silently swallowed; record the error "
                    "(store/job registry/log) or re-raise so failures stay "
                    "visible",
                )

    def _is_broad(self, ctx: ModuleContext, node: Optional[ast.expr]) -> bool:
        if node is None:
            return True  # bare except is also silent when its body is pass
        name = ctx.resolve_name(node)
        if name is not None and name.split(".")[-1] in self.BROAD:
            return True
        if isinstance(node, ast.Tuple):
            return any(self._is_broad(ctx, element) for element in node.elts)
        return False


ALL_RULES: Tuple[Rule, ...] = (
    WallClockRule(),
    UnseededRandomRule(),
    UnorderedReductionRule(),
    SetIterationRule(),
    StoreMutationRule(),
    ExplicitStoreIntentRule(),
    InterpolatedLabelRule(),
    LiteralMetricNameRule(),
    SpanContextManagerRule(),
    BareExceptRule(),
    SilentExceptRule(),
)


def rules_by_id() -> Dict[str, Rule]:
    return {rule.id: rule for rule in ALL_RULES}
