"""The reprolint rule engine: one AST walk per file, shared analyses.

Every load-bearing contract in this reproduction — ``canonical_dump``
bit-identity, the ``BEGIN IMMEDIATE`` store protocol, the id-free
metrics cardinality rule — is otherwise enforced only dynamically, by
differential tests that cannot see a violation until it flakes.  This
engine lets ~30-line :class:`Rule` subclasses enforce those contracts at
the source level, so a stray ``time.time()`` in engine code fails review
instead of surfacing as a cross-host dump mismatch months later.

The engine is deliberately generic; everything project-specific lives in
:mod:`repro.lintkit.rules`.  Per file it provides:

* a parsed AST plus **parent links** (``ModuleContext.parent_of``),
* **import-alias resolution** (``resolve_name`` maps ``np.random.rand``
  back to ``numpy.random.rand`` through this file's imports),
* a light **scope analysis** of set-typed local names,
* ``# repro: allow[RULE] reason`` **inline suppressions** (same line or
  a comment-only line directly above), with unused-allow detection.

Findings never abort the walk: a file that fails to parse yields a
single ``REP999`` finding and the run continues.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "Rule",
    "ModuleContext",
    "Suppression",
    "LintResult",
    "lint_source",
    "lint_paths",
    "iter_python_files",
    "PARSE_ERROR_RULE",
    "UNUSED_ALLOW_RULE",
]

#: Reserved rule ids emitted by the engine itself.
PARSE_ERROR_RULE = "REP999"
UNUSED_ALLOW_RULE = "REP000"

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Z0-9,\s]+)\]\s*(.*)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str
    snippet: str = ""
    suppressed: bool = False
    baselined: bool = False

    @property
    def active(self) -> bool:
        """Whether the finding should fail the run."""
        return not (self.suppressed or self.baselined)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }


@dataclass
class Suppression:
    """One ``# repro: allow[RULE] reason`` comment."""

    line: int  # line the comment sits on
    rules: Tuple[str, ...]
    reason: str
    comment_only: bool  # True when the line holds nothing but the comment
    used: Set[str] = field(default_factory=set)


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`id` / :attr:`title` / :attr:`rationale` and
    implement :meth:`check`, yielding :class:`Finding` objects (use
    :meth:`ModuleContext.finding` so snippets and paths stay uniform).
    :meth:`applies_to` keeps path scoping declarative — rules never see
    files outside their scope, so ``check`` stays about the AST only.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""

    def applies_to(self, rel_path: str) -> bool:
        return True

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        raise NotImplementedError


class ModuleContext:
    """Everything the rules need to know about one source file."""

    def __init__(self, rel_path: str, source: str, tree: ast.Module) -> None:
        self.rel_path = rel_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self._parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        self.aliases = self._collect_aliases(tree)
        self.suppressions = self._collect_suppressions(source)

    # ------------------------------------------------------------------ #
    # Structure helpers
    # ------------------------------------------------------------------ #
    def parent_of(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent_of(node)
        while current is not None:
            yield current
            current = self.parent_of(current)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            rule=rule.id,
            path=self.rel_path,
            line=line,
            col=col,
            message=message,
            snippet=self.line_text(line),
        )

    # ------------------------------------------------------------------ #
    # Import-alias resolution
    # ------------------------------------------------------------------ #
    @staticmethod
    def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
        """Map local names to the dotted path they import.

        ``import numpy as np`` maps ``np -> numpy``; ``from time import
        perf_counter as pc`` maps ``pc -> time.perf_counter``.  Only
        top-level and function-level imports are seen — good enough for
        this codebase, where conditional re-imports do not occur on the
        paths the rules police.
        """
        aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.names:
                # Relative imports resolve against the repo package layout:
                # the rules match on suffixes, so "..obs.trace" -> "obs.trace"
                # is enough to recognise `from ..obs import trace`.
                module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    dotted = f"{module}.{alias.name}" if module else alias.name
                    aliases[local] = dotted
        return aliases

    def resolve_name(self, node: ast.AST) -> Optional[str]:
        """The dotted name a Name/Attribute chain refers to, imports applied.

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
        when the file did ``import numpy as np``.  Returns ``None`` for
        anything that is not a plain attribute chain (calls, subscripts).
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        parts.reverse()
        root = self.aliases.get(parts[0])
        if root is not None:
            parts[0] = root
        return ".".join(parts)

    def calls(self) -> Iterator[ast.Call]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                yield node

    # ------------------------------------------------------------------ #
    # Suppressions
    # ------------------------------------------------------------------ #
    @staticmethod
    def _collect_suppressions(source: str) -> List[Suppression]:
        """Parse allow comments from *real* COMMENT tokens only.

        Scanning raw lines would also match the syntax when it is quoted
        in a docstring (this repo documents it in several), so the
        tokenizer decides what is a comment.
        """
        suppressions: List[Suppression] = []
        lines = source.splitlines()
        try:
            tokens = list(
                tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
            )
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return suppressions
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(token.string)
            if not match:
                continue
            lineno = token.start[0]
            text = lines[lineno - 1] if lineno <= len(lines) else token.string
            rules = tuple(
                rule.strip() for rule in match.group(1).split(",") if rule.strip()
            )
            suppressions.append(
                Suppression(
                    line=lineno,
                    rules=rules,
                    reason=match.group(2).strip(),
                    comment_only=text.strip().startswith("#"),
                )
            )
        return suppressions

    def suppression_for(self, rule: str, line: int) -> Optional[Suppression]:
        """The allow comment covering *rule* at *line*, if any.

        A suppression covers its own line, and — when it is a
        comment-only line — the first following non-comment line, so
        long statements can carry the allow above them.
        """
        for suppression in self.suppressions:
            if rule not in suppression.rules:
                continue
            if suppression.line == line:
                return suppression
            if suppression.comment_only and suppression.line < line:
                # Skip any further comment-only lines between the allow
                # comment and the statement it covers.
                index = suppression.line  # 0-based index of the next line
                while index < len(self.lines) and self.lines[index].strip().startswith("#"):
                    index += 1
                if index + 1 == line:
                    return suppression
        return None


@dataclass
class LintResult:
    """The outcome of linting a set of files."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def active(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.active]

    @property
    def suppressed(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.suppressed]

    @property
    def baselined(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.baselined]

    def to_dict(self) -> Dict[str, object]:
        return {
            "files_checked": self.files_checked,
            "counts": {
                "active": len(self.active),
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined),
            },
            "findings": [finding.to_dict() for finding in self.findings],
        }


class _ParseErrorRule(Rule):
    id = PARSE_ERROR_RULE
    title = "file does not parse"
    rationale = "A file the linter cannot parse is a file no rule protects."


class _UnusedAllowRule(Rule):
    id = UNUSED_ALLOW_RULE
    title = "unused suppression"
    rationale = (
        "An allow comment that no longer matches a finding is stale "
        "documentation: either the violation was fixed (delete the "
        "comment) or the rule id is wrong (fix it)."
    )


_PARSE_ERROR = _ParseErrorRule()
_UNUSED_ALLOW = _UnusedAllowRule()


def lint_source(
    source: str, rel_path: str, rules: Sequence[Rule]
) -> List[Finding]:
    """Lint one in-memory module as if it lived at *rel_path*.

    This is the seam the fixture tests drive: path-scoped rules behave
    exactly as they would on a real file at that location.
    """
    try:
        tree = ast.parse(source)
    except (SyntaxError, ValueError) as error:
        line = getattr(error, "lineno", 1) or 1
        return [
            Finding(
                rule=PARSE_ERROR_RULE,
                path=rel_path,
                line=line,
                col=(getattr(error, "offset", 1) or 1),
                message=(
                    "file does not parse: "
                    f"{error.msg if isinstance(error, SyntaxError) else error}"
                ),
            )
        ]
    ctx = ModuleContext(rel_path, source, tree)
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(rel_path):
            continue
        for finding in rule.check(ctx):
            suppression = ctx.suppression_for(finding.rule, finding.line)
            if suppression is not None:
                suppression.used.add(finding.rule)
                finding = replace(finding, suppressed=True)
            findings.append(finding)
    active_rule_ids = {rule.id for rule in rules}
    for suppression in ctx.suppressions:
        for rule_id in suppression.rules:
            if rule_id in suppression.used:
                continue
            if rule_id not in active_rule_ids:
                message = f"allow comment names unknown rule {rule_id}"
            else:
                message = (
                    f"allow[{rule_id}] suppresses nothing here; "
                    "delete the comment or fix the rule id"
                )
            findings.append(
                Finding(
                    rule=UNUSED_ALLOW_RULE,
                    path=rel_path,
                    line=suppression.line,
                    col=1,
                    message=message,
                    snippet=source.splitlines()[suppression.line - 1].strip(),
                )
            )
    findings.sort(key=lambda finding: (finding.path, finding.line, finding.col, finding.rule))
    return findings


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Expand files/directories into the sorted set of .py files."""
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate.suffix == ".py" and candidate not in seen:
                seen.add(candidate)
                yield candidate


def _read_source(path: Path) -> str:
    # tokenize.open honours PEP 263 coding cookies, matching CPython.
    with tokenize.open(path) as handle:
        return handle.read()


def lint_paths(
    paths: Sequence[str],
    rules: Sequence[Rule],
    root: Optional[Path] = None,
) -> LintResult:
    """Lint *paths* (files or directories) with *rules*.

    Paths in findings are reported relative to *root* (default: the
    current working directory) so baselines travel with the repo.
    """
    root = (root or Path.cwd()).resolve()
    result = LintResult()
    for path in iter_python_files(paths):
        resolved = path.resolve()
        try:
            rel_path = resolved.relative_to(root).as_posix()
        except ValueError:
            rel_path = path.as_posix()
        try:
            source = _read_source(path)
        except (OSError, UnicodeDecodeError, SyntaxError) as error:
            result.findings.append(
                Finding(
                    rule=PARSE_ERROR_RULE,
                    path=rel_path,
                    line=1,
                    col=1,
                    message=f"cannot read file: {error}",
                )
            )
            result.files_checked += 1
            continue
        result.findings.extend(lint_source(source, rel_path, rules))
        result.files_checked += 1
    result.findings.sort(
        key=lambda finding: (finding.path, finding.line, finding.col, finding.rule)
    )
    return result
