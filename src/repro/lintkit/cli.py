"""``python -m repro.lintkit`` — the reprolint command line.

Exit codes:

* ``0`` — no active findings (everything clean, suppressed or baselined),
* ``1`` — at least one active finding,
* ``2`` — usage error (unknown rule id, unreadable baseline).

``--format json`` (optionally with ``--output``) emits the machine
report CI uploads as an artifact; the default text format is one
``path:line:col: RULE message`` line per finding, grouped run summary at
the end.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import apply_baseline, load_baseline, write_baseline
from .engine import LintResult, lint_paths
from .rules import ALL_RULES, rules_by_id

__all__ = ["main"]

DEFAULT_BASELINE = "lint-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lintkit",
        description=(
            "reprolint: AST rules enforcing this repo's determinism, "
            "store-discipline and observability contracts at the source "
            "level (catalogue: docs/static-analysis.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE} when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report grandfathered findings too)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list suppressed/baselined findings in the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in ALL_RULES:
        lines.append(f"{rule.id}  {rule.title}")
        lines.append(f"       {rule.rationale}")
    return "\n".join(lines)


def _text_report(result: LintResult, show_suppressed: bool) -> str:
    lines: List[str] = []
    for finding in result.findings:
        if finding.active:
            lines.append(
                f"{finding.location()}: {finding.rule} {finding.message}"
            )
        elif show_suppressed:
            tag = "suppressed" if finding.suppressed else "baselined"
            lines.append(
                f"{finding.location()}: {finding.rule} [{tag}] {finding.message}"
            )
    active = len(result.active)
    summary = (
        f"{result.files_checked} files checked: {active} finding"
        f"{'' if active == 1 else 's'}"
        f" ({len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined)"
    )
    lines.append(summary)
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    rules = list(ALL_RULES)
    if args.select:
        catalogue = rules_by_id()
        selected = [rule_id.strip() for rule_id in args.select.split(",")]
        unknown = [rule_id for rule_id in selected if rule_id not in catalogue]
        if unknown:
            print(
                f"error: unknown rule id(s): {', '.join(unknown)} "
                "(see --list-rules)",
                file=sys.stderr,
            )
            return 2
        rules = [catalogue[rule_id] for rule_id in selected]

    result = lint_paths(args.paths, rules)

    baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE)
    if args.write_baseline:
        entries = write_baseline(baseline_path, result.findings)
        print(
            f"wrote {baseline_path} with {sum(entries.values())} "
            f"grandfathered finding(s)"
        )
        return 0
    if not args.no_baseline and baseline_path.exists():
        try:
            baseline = load_baseline(baseline_path)
        except (ValueError, OSError, json.JSONDecodeError) as error:
            print(f"error: cannot read baseline: {error}", file=sys.stderr)
            return 2
        result.findings = apply_baseline(result.findings, baseline)

    if args.format == "json":
        report = json.dumps(result.to_dict(), indent=2) + "\n"
    else:
        report = _text_report(result, args.show_suppressed) + "\n"

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
    else:
        sys.stdout.write(report)
    return 1 if result.active else 0
