"""Baseline files: grandfathered findings that do not fail the run.

A baseline lets the linter land as a hard CI gate on day one without
blocking on a full cleanup: existing findings are fingerprinted into a
committed JSON file and stop failing the build, while anything *new*
still does.  The fingerprint is ``path::rule::stripped-source-line`` —
stable across unrelated edits (line numbers shift freely) but invalidated
the moment the offending line itself changes, so grandfathered code
cannot quietly grow new violations on the same line.

Policy (enforced by ``tests/test_lintkit.py``): the baseline must stay
**empty for ``simulator/`` and ``scenario/``** — determinism findings in
the engine are fixed or explicitly ``# repro: allow``-ed with a reason,
never grandfathered.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import replace
from pathlib import Path
from typing import Dict, List

from .engine import Finding

__all__ = ["fingerprint", "load_baseline", "write_baseline", "apply_baseline"]

BASELINE_VERSION = 1


def fingerprint(finding: Finding) -> str:
    return f"{finding.path}::{finding.rule}::{finding.snippet}"


def load_baseline(path: Path) -> Dict[str, int]:
    """Read a baseline file into ``{fingerprint: allowed_count}``."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError(f"{path} is not a reprolint baseline (no 'entries' key)")
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{path} has baseline version {version!r}, this code expects "
            f"{BASELINE_VERSION}"
        )
    entries = payload["entries"]
    if not isinstance(entries, dict):
        raise ValueError(f"{path} entries must be an object")
    return {str(key): int(count) for key, count in entries.items()}


def write_baseline(path: Path, findings: List[Finding]) -> Dict[str, int]:
    """Fingerprint the *active* findings into a fresh baseline at *path*."""
    counts = Counter(
        fingerprint(finding) for finding in findings if not finding.suppressed
    )
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            "Grandfathered reprolint findings. Shrink only; regenerate "
            "with `python -m repro.lintkit --write-baseline` after a "
            "cleanup. Keep empty for simulator/ and scenario/."
        ),
        "entries": {key: counts[key] for key in sorted(counts)},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return dict(counts)


def apply_baseline(
    findings: List[Finding], baseline: Dict[str, int]
) -> List[Finding]:
    """Mark up to ``count`` matching findings per fingerprint as baselined.

    Suppressed findings never consume baseline budget — an allow comment
    already accounts for them.
    """
    remaining = dict(baseline)
    marked: List[Finding] = []
    for finding in findings:
        if not finding.suppressed:
            key = fingerprint(finding)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                finding = replace(finding, baselined=True)
        marked.append(finding)
    return marked
