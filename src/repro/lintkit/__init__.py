"""reprolint: AST-based invariant linter for this reproduction.

The repo's load-bearing guarantees — ``canonical_dump`` bit-identity,
the ``BEGIN IMMEDIATE`` store protocol, id-free metrics cardinality —
are enforced dynamically by differential tests.  This package enforces
them *statically*: ``python -m repro.lintkit src`` runs ~11 project
rules (catalogue in ``docs/static-analysis.md``) as a hard CI gate, with
``# repro: allow[RULE] reason`` inline suppressions and a committed
baseline for grandfathered findings.
"""

from .baseline import apply_baseline, fingerprint, load_baseline, write_baseline
from .cli import main
from .engine import (
    Finding,
    LintResult,
    ModuleContext,
    Rule,
    lint_paths,
    lint_source,
)
from .rules import ALL_RULES, rules_by_id

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintResult",
    "ModuleContext",
    "Rule",
    "apply_baseline",
    "fingerprint",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "main",
    "rules_by_id",
    "write_baseline",
]
