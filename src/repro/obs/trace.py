"""Nested tracing spans with monotonic timings and NDJSON sidecars.

A span marks one timed region of work — a scenario build, a solver
invocation, one timeline interval — and carries structured attributes
(the kernel chosen, the number of iterations, whether a cache hit).
Spans nest through a thread-local stack, so the emitted records form a
tree (``parent_id`` links) that can be reassembled offline from the
NDJSON sidecar, one JSON object per line.

Everything is **off by default** and the disabled fast path is a single
module-global boolean test: ``span(...)`` returns a shared no-op context
manager until either a sidecar writer is configured
(:func:`configure_tracing`) or a :class:`SpanCollector` is installed
(:func:`collect`).  Instrumented code therefore stays on the hot path —
the engine wraps its interval and kernel loops in ``with span(...)``
unconditionally.

The writer survives ``fork()``: every emit re-checks the recorded PID
and reopens the sidecar in append mode from the child, so a
``run-campaign --workers N`` fleet interleaves whole lines from every
process into one file.

Instrumentation must never perturb results — spans only read clocks and
write to the sidecar; the engine's arithmetic is untouched (pinned by
the traced-vs-untraced ``canonical_dump`` identity tests).
"""

from __future__ import annotations

import json
import os
import threading
import time
from types import TracebackType
from typing import Any, Dict, Iterator, List, Optional, TextIO, Union

__all__ = [
    "Span",
    "SpanCollector",
    "PhaseCollector",
    "PHASE_NAMES",
    "span",
    "current_span",
    "configure_tracing",
    "disable_tracing",
    "tracing_enabled",
    "trace_path",
    "collect",
    "iter_trace",
]

_lock = threading.Lock()
_writer: Optional[TextIO] = None
_writer_path: Optional[str] = None
_writer_pid: int = -1
_next_span_id = 0
_collector_count = 0
#: The one flag the disabled fast path tests.  True iff a sidecar writer
#: is configured or at least one collector is installed (in any thread).
_enabled = False

_local = threading.local()


def _stack() -> "List[Span]":
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def _collectors() -> "List[SpanCollector]":
    collectors = getattr(_local, "collectors", None)
    if collectors is None:
        collectors = _local.collectors = []
    return collectors


def _refresh_enabled() -> None:
    global _enabled
    _enabled = _writer is not None or _collector_count > 0


class Span:
    """One timed, attributed region; a context manager.

    Attributes set during the region (``span.set(iterations=7)``) land in
    the emitted record's ``attrs`` object.  Timing uses
    ``time.perf_counter`` (monotonic); the record also carries a wall
    clock ``ts`` for cross-process alignment.
    """

    __slots__ = ("name", "attrs", "span_id", "parent_id", "start_ts", "duration_s", "_t0")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.start_ts = 0.0
        self.duration_s = 0.0
        self._t0 = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span; returns the span for chaining."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        global _next_span_id
        with _lock:
            _next_span_id += 1
            self.span_id = _next_span_id
        stack = _stack()
        self.parent_id = stack[-1].span_id if stack else None
        stack.append(self)
        for collector in _collectors():
            collector.on_enter(self)
        self.start_ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        self.duration_s = time.perf_counter() - self._t0
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        for collector in _collectors():
            collector.on_exit(self)
        _emit(self)
        return False


class _NoopSpan:
    """The shared disabled-path span: enter/exit/set all do nothing."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        return False


_NOOP = _NoopSpan()


def span(name: str, **attrs: Any) -> Union[Span, "_NoopSpan"]:
    """A context manager timing *name*; no-op unless tracing is enabled."""
    if not _enabled:
        return _NOOP
    return Span(name, attrs)


def current_span() -> Optional[Span]:
    """The innermost open span on this thread, if any."""
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


def tracing_enabled() -> bool:
    """Whether spans are live (sidecar writer or collector installed)."""
    return _enabled


def trace_path() -> Optional[str]:
    """The configured sidecar path, or None when no writer is active."""
    return _writer_path


def configure_tracing(path: str) -> None:
    """Open (append) an NDJSON sidecar at *path* and start emitting spans."""
    global _writer, _writer_path, _writer_pid
    with _lock:
        if _writer is not None:
            try:
                _writer.close()
            except OSError:  # pragma: no cover - best-effort close
                pass
        _writer = open(path, "a", encoding="utf-8")
        _writer_path = path
        _writer_pid = os.getpid()
    _refresh_enabled()


def disable_tracing() -> None:
    """Close the sidecar writer and stop emitting spans."""
    global _writer, _writer_path, _writer_pid
    with _lock:
        if _writer is not None:
            try:
                _writer.close()
            except OSError:  # pragma: no cover - best-effort close
                pass
        _writer = None
        _writer_path = None
        _writer_pid = -1
    _refresh_enabled()


def _emit(span: Span) -> None:
    global _writer, _writer_pid
    if _writer is None:
        return
    record: Dict[str, Any] = {
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "pid": os.getpid(),
        "thread": threading.get_ident(),
        "ts": span.start_ts,
        "duration_s": span.duration_s,
    }
    if span.attrs:
        record["attrs"] = span.attrs
    line = json.dumps(record, sort_keys=True, default=str) + "\n"
    with _lock:
        if _writer is None:
            return
        if os.getpid() != _writer_pid:
            # Forked child: the inherited file object shares the parent's
            # buffer — reopen the sidecar so each process appends whole
            # lines through its own descriptor.
            try:
                _writer = open(_writer_path, "a", encoding="utf-8")
            except OSError:  # pragma: no cover - sidecar dir vanished
                _writer = None
                return
            _writer_pid = os.getpid()
        try:
            _writer.write(line)
            _writer.flush()
        except OSError:  # pragma: no cover - disk full etc.; tracing is best-effort
            pass


class SpanCollector:
    """Receives every span enter/exit on the installing thread."""

    def on_enter(self, span: Span) -> None:  # pragma: no cover - interface
        pass

    def on_exit(self, span: Span) -> None:  # pragma: no cover - interface
        pass


class collect:
    """Install *collector* on this thread for the duration of the block.

    Installing a collector activates span timing even without a sidecar
    writer — this is how ``--profile`` measures phase breakdowns without
    writing a trace file.
    """

    def __init__(self, collector: SpanCollector) -> None:
        self.collector = collector

    def __enter__(self) -> SpanCollector:
        global _collector_count
        _collectors().append(self.collector)
        with _lock:
            _collector_count += 1
        _refresh_enabled()
        return self.collector

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        global _collector_count
        collectors = _collectors()
        if self.collector in collectors:
            collectors.remove(self.collector)
        with _lock:
            _collector_count -= 1
        _refresh_enabled()
        return False


#: The per-point phase breakdown reported by ``--profile`` and
#: ``campaign-report --timings``, in presentation order.
PHASE_NAMES = ("build", "calibrate", "solve", "allocate", "overhead")


class PhaseCollector(SpanCollector):
    """Folds a point's span stream into build/calibrate/solve/allocate sums.

    Nesting is handled by exclusive attribution: calibration time is
    subtracted from the enclosing ``scenario.build`` span, and fairness
    kernel time from any enclosing solver span, so the four phases never
    double-count a second.  ``overhead`` is whatever part of the measured
    elapsed time none of the phase spans cover (python glue, caching,
    serialisation).
    """

    #: Solver-side spans: precomputation at scheme start plus per-step solves.
    SOLVE_SPANS = frozenset({"scheme.start", "scheme.solve"})

    def __init__(self) -> None:
        self._build_incl = 0.0
        self._calibrate = 0.0
        self._calibrate_in_build = 0.0
        self._solve_incl = 0.0
        self._kernel_in_solve = 0.0
        self._allocate = 0.0
        self._build_depth = 0
        self._solve_depth = 0

    def on_enter(self, span: Span) -> None:
        if span.name == "scenario.build":
            self._build_depth += 1
        elif span.name in self.SOLVE_SPANS:
            self._solve_depth += 1

    def on_exit(self, span: Span) -> None:
        name = span.name
        duration = span.duration_s
        if name == "traffic.calibrate":
            self._calibrate += duration
            if self._build_depth:
                self._calibrate_in_build += duration
        elif name == "scenario.build":
            self._build_depth -= 1
            if self._build_depth == 0:
                self._build_incl += duration
        elif name in self.SOLVE_SPANS:
            self._solve_depth -= 1
            if self._solve_depth == 0:
                self._solve_incl += duration
        elif name == "fairness.kernel":
            self._allocate += duration
            if self._solve_depth:
                self._kernel_in_solve += duration

    def phases(self, elapsed_s: Optional[float] = None) -> Dict[str, float]:
        """The phase breakdown; includes ``overhead`` when *elapsed_s* given."""
        breakdown = {
            "build": max(self._build_incl - self._calibrate_in_build, 0.0),
            "calibrate": self._calibrate,
            "solve": max(self._solve_incl - self._kernel_in_solve, 0.0),
            "allocate": self._allocate,
        }
        if elapsed_s is not None:
            breakdown["overhead"] = max(elapsed_s - sum(breakdown.values()), 0.0)
        return breakdown


def iter_trace(path: str) -> "Iterator[Dict[str, Any]]":
    """Parse a trace sidecar back into span records, skipping blank lines."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
