"""Unified observability: tracing spans, metrics registry, phase timings.

``repro.obs`` is stdlib-only and threaded through every layer of the
stack — the scenario engine, the fairness kernels, the campaign runner
and the HTTP service all emit spans and registry metrics through this
package.  Everything is off by default with a near-zero disabled cost;
see :mod:`repro.obs.trace` and :mod:`repro.obs.metrics` for the two
halves and ``docs/observability.md`` for the span taxonomy and metric
names.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    MetricFamily,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    registry,
)
from .trace import (
    PHASE_NAMES,
    PhaseCollector,
    Span,
    SpanCollector,
    collect,
    configure_tracing,
    current_span,
    disable_tracing,
    iter_trace,
    span,
    trace_path,
    tracing_enabled,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricFamily",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "registry",
    "PHASE_NAMES",
    "PhaseCollector",
    "Span",
    "SpanCollector",
    "collect",
    "configure_tracing",
    "current_span",
    "disable_tracing",
    "iter_trace",
    "span",
    "trace_path",
    "tracing_enabled",
]
