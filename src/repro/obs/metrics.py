"""Process-wide metrics registry: named counters, gauges and histograms.

The repo grew ad-hoc perf state in several corners — the calibration
memo's hit/miss dict, the compiled flow-set cache, sweep-cache probes,
batch-group fallbacks, lease churn.  This registry absorbs them behind
one snapshot API so the service can expose everything at ``GET /metrics``
and future optimisation work reads one dashboard instead of four dicts.

Design points, all stdlib:

* **Families with labels.**  ``registry().counter("x_total")`` returns a
  family; ``family.labels(route="status")`` returns a child keyed by the
  sorted label items.  Operating on the family itself operates on its
  unlabelled child, so the common no-label case reads like a plain
  counter.
* **Thread-safe.**  Every child guards its state with a lock — the
  service's ``ThreadingHTTPServer`` increments from many threads while
  ``/metrics`` snapshots concurrently.
* **Resettable.**  Prometheus counters never go down, but the back-compat
  shims (``clear_calibration_cache``) and tests need a zero; ``reset()``
  exists for them and is not exposed over HTTP.
* **Two render targets.**  :meth:`MetricsRegistry.render_prometheus`
  emits the text exposition format (``text/plain; version=0.0.4``);
  :meth:`MetricsRegistry.snapshot` returns the same data as plain dicts
  for ``?format=json`` and programmatic use.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = [
    "MetricsRegistry",
    "MetricFamily",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "DEFAULT_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds), tuned for request/step latencies.
DEFAULT_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


class _Counter:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def sample(self) -> Dict[str, Any]:
        return {"value": self.value}


class _Gauge:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def sample(self) -> Dict[str, Any]:
        return {"value": self.value}


class _Histogram:
    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self.buckets = buckets
        self._counts = [0] * (len(buckets) + 1)  # trailing slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[index] += 1
                    return
            self._counts[-1] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0

    def sample(self) -> Dict[str, Any]:
        with self._lock:
            cumulative: Dict[str, int] = {}
            running = 0
            for bound, count in zip(self.buckets, self._counts, strict=False):
                running += count
                cumulative[format_float(bound)] = running
            cumulative["+Inf"] = running + self._counts[-1]
            return {"count": self._count, "sum": self._sum, "buckets": cumulative}


def format_float(value: float) -> str:
    """Bucket bounds as Prometheus renders them (no trailing ``.0`` noise)."""
    if value == math.inf:
        return "+Inf"
    text = repr(float(value))
    return text[:-2] if text.endswith(".0") else text


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: _LabelKey, extra: Optional[Tuple[Tuple[str, str], ...]] = None) -> str:
    items = list(labels) + list(extra or ())
    if not items:
        return ""
    body = ",".join(f'{key}="{_escape_label(str(value))}"' for key, value in items)
    return "{" + body + "}"


class MetricFamily:
    """One named metric with zero or more labelled children."""

    def __init__(
        self,
        kind: str,
        name: str,
        help_text: str,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.kind = kind
        self.name = name
        self.help = help_text
        self.buckets = tuple(buckets) if buckets else DEFAULT_BUCKETS
        self._lock = threading.Lock()
        self._children: Dict[_LabelKey, Any] = {}

    def _make_child(self) -> Union[_Counter, _Gauge, _Histogram]:
        if self.kind == "counter":
            return _Counter()
        if self.kind == "gauge":
            return _Gauge()
        return _Histogram(self.buckets)

    def labels(self, **labels: Any) -> Any:
        for key in labels:
            if not _LABEL_RE.match(key):
                raise ValueError(f"invalid label name {key!r}")
        key = tuple(sorted((name, str(value)) for name, value in labels.items()))
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
            return child

    # Unlabelled convenience: the family behaves as its own () child.
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    @property
    def value(self) -> float:
        return self.labels().value

    def reset(self) -> None:
        with self._lock:
            children = list(self._children.values())
        for child in children:
            child.reset()

    def samples(self) -> List[Dict[str, Any]]:
        with self._lock:
            items = sorted(self._children.items())
        rendered: List[Dict[str, Any]] = []
        for key, child in items:
            entry: Dict[str, Any] = {"labels": dict(key)}
            entry.update(child.sample())
            rendered.append(entry)
        return rendered


class MetricsRegistry:
    """A process-wide, thread-safe collection of metric families."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    def _family(
        self,
        kind: str,
        name: str,
        help_text: str,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = MetricFamily(
                    kind, name, help_text, buckets
                )
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {family.kind}, requested as {kind}"
                )
            return family

    def counter(self, name: str, help_text: str = "") -> MetricFamily:
        return self._family("counter", name, help_text)

    def gauge(self, name: str, help_text: str = "") -> MetricFamily:
        return self._family("gauge", name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> MetricFamily:
        return self._family("histogram", name, help_text, buckets)

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> Dict[str, Any]:
        """Every family's current samples as plain dicts (JSON-ready)."""
        return {
            family.name: {
                "type": family.kind,
                "help": family.help,
                "samples": family.samples(),
            }
            for family in self.families()
        }

    def render_prometheus(self) -> str:
        """The text exposition format (``text/plain; version=0.0.4``)."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for sample in family.samples():
                labels = tuple(sorted(sample["labels"].items()))
                if family.kind == "histogram":
                    for bound, count in sample["buckets"].items():
                        suffix = _render_labels(labels, (("le", bound),))
                        lines.append(f"{family.name}_bucket{suffix} {count}")
                    label_text = _render_labels(labels)
                    lines.append(
                        f"{family.name}_sum{label_text} {format_float(sample['sum'])}"
                    )
                    lines.append(f"{family.name}_count{label_text} {sample['count']}")
                else:
                    label_text = _render_labels(labels)
                    lines.append(
                        f"{family.name}{label_text} {format_float(sample['value'])}"
                    )
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Zero every child (tests and back-compat cache-clear shims)."""
        for family in self.families():
            family.reset()


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def counter(name: str, help_text: str = "") -> MetricFamily:
    """Get or create a counter family in the default registry."""
    return _REGISTRY.counter(name, help_text)


def gauge(name: str, help_text: str = "") -> MetricFamily:
    """Get or create a gauge family in the default registry."""
    return _REGISTRY.gauge(name, help_text)


def histogram(
    name: str, help_text: str = "", buckets: Optional[Tuple[float, ...]] = None
) -> MetricFamily:
    """Get or create a histogram family in the default registry."""
    return _REGISTRY.histogram(name, help_text, buckets)
