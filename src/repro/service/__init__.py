"""The scenario service: a long-lived HTTP API over the reproduction stack.

Everything the CLI exposes — the component registry, one-shot scenario
runs, campaign submission/draining and the campaign store's status and
report layers — behind a dependency-free :mod:`http.server` REST surface,
plus what a CLI cannot do: **streaming replay telemetry**, an NDJSON feed
of per-interval power, utilisation and SLO-violation records pushed while
the timeline engine computes them (and guaranteed bit-identical to an
offline run of the same spec).

Layering, bottom-up:

* :mod:`repro.service.schemas` — request validation and uniform errors;
* :mod:`repro.service.jobs` — background campaign drains as cooperative
  lease workers (threads) over the shared store;
* :mod:`repro.service.handlers` — endpoint logic, callable without HTTP;
* :mod:`repro.service.server` — routing, JSON rendering, chunked NDJSON;
* :mod:`repro.service.cli` — the ``serve`` subcommand.

Start one with ``python -m repro.experiments serve --store campaign.sqlite``;
the endpoint reference lives in ``docs/service.md``.
"""

from .handlers import ServiceState
from .jobs import CampaignJob, JobManager
from .schemas import ServiceError
from .server import ServiceConfig, create_server

__all__ = [
    "CampaignJob",
    "JobManager",
    "ServiceConfig",
    "ServiceError",
    "ServiceState",
    "create_server",
]
