"""The ``serve`` subcommand — run the scenario service from the CLI.

Kept beside the service (not in :mod:`repro.experiments.runner`) so the
dispatcher only pays the import when the subcommand is actually used, the
same deferred-import pattern the campaign subcommands follow.
"""

from __future__ import annotations

import argparse
import logging
from typing import Optional, Sequence

from .handlers import ServiceState
from .schemas import ServiceError
from .server import ServiceConfig, create_server, hostname_url


def serve_command(argv: Optional[Sequence[str]] = None) -> int:
    """Parse ``serve`` arguments, bind the service and serve forever."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments serve",
        description=(
            "Run the scenario service: an HTTP API over the component "
            "registry, the scenario engine and the campaign store, with "
            "streaming replay telemetry.  See docs/service.md."
        ),
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help=(
            "interface to bind (default %(default)s; the service has no "
            "authentication, so binding wider is an explicit choice)"
        ),
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8321,
        help="TCP port (default %(default)s; 0 binds an ephemeral port)",
    )
    parser.add_argument(
        "--store",
        default="campaign.sqlite",
        help="campaign SQLite store served and written (default %(default)s)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="sweep-cache directory for POST /scenarios (default: disabled)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "default lease workers per submitted campaign when the "
            "submission does not name its own (default %(default)s)"
        ),
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="log every request (default: only errors)",
    )
    args = parser.parse_args(argv)
    if args.port < 0 or args.port > 65535:
        parser.error(f"--port must be in [0, 65535], got {args.port}")
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")

    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(levelname)s %(name)s: %(message)s",
    )
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        store=args.store,
        cache_dir=args.cache_dir,
        default_workers=args.workers,
    )
    try:
        server = create_server(config, ServiceState(config.store, config.cache_dir))
    except ServiceError as error:
        parser.error(error.message)
    print(f"scenario service listening on {hostname_url(server)}")
    print(f"store: {config.store}")
    if config.cache_dir:
        print(f"sweep cache: {config.cache_dir}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
    return 0


__all__ = ["serve_command"]
