"""Background campaign execution for the scenario service.

A ``POST /campaigns`` must return immediately with the campaign id while
the grid drains in the background.  The :class:`JobManager` does exactly
what the CLI's worker fleet does, but with threads instead of forked
processes: the submission thread registers the campaign in the store
(adopting shared results and resetting stale errors once, exactly like
:func:`~repro.campaign.run.run_campaign_workers` does pre-fork), then a
supervisor thread starts N cooperative lease workers — each one a plain
:func:`~repro.campaign.run.run_campaign` invocation in worker mode, each
opening its own SQLite connection in its own thread.  The store's lease
protocol coordinates them; the service adds no coordination of its own.

Threads rather than processes because the service is a long-lived
multi-threaded program: forking one is famously unsafe (the child
inherits locks mid-flight), while the lease protocol was built precisely
so that *any* set of cooperating invocations — processes, threads, other
hosts on a shared file — drains one grid safely.  The GIL bounds the
speedup of ``workers > 1`` for pure-Python stages, but the NumPy kernels
release it, and status/report reads stay responsive throughout because
readers use ``read_only=True`` connections.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from ..campaign.run import run_campaign
from ..campaign.spec import CampaignSpec
from ..campaign.store import CampaignStore
from .schemas import CampaignRequest, ServiceError

#: Job lifecycle states.
RUNNING = "running"
DONE = "done"
FAILED = "failed"


@dataclass
class CampaignJob:
    """One submitted campaign drain and its live state.

    Attributes:
        campaign_id: The campaign's identity in the store.
        name: The campaign name.
        workers: How many lease-worker threads drain it.
        batch: Whether the workers group claims by batch signature.
        state: ``running`` → ``done``/``failed``.
        submitted_at: ``time.time`` of the submission.
        summaries: Per-worker :class:`~repro.campaign.run.CampaignRunSummary`
            dicts, filled in as workers finish.
        error: The first worker traceback, when ``state == "failed"``.
    """

    campaign_id: str
    name: str
    workers: int
    batch: bool
    state: str = RUNNING
    submitted_at: float = field(default_factory=time.time)
    summaries: List[Dict[str, Any]] = field(default_factory=list)
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready view (the ``job`` section of status payloads)."""
        executed = sum(entry.get("executed", 0) for entry in self.summaries)
        failed = sum(entry.get("failed", 0) for entry in self.summaries)
        payload: Dict[str, Any] = {
            "campaign_id": self.campaign_id,
            "name": self.name,
            "workers": self.workers,
            "batch": self.batch,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "executed": executed,
            "failed": failed,
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload


class JobManager:
    """Submit, track and wait on background campaign drains.

    One instance per service process.  All mutation happens under one
    lock; worker threads are daemons, so an exiting service never hangs on
    a long campaign (the store's chunk transactions guarantee the next
    drain resumes cleanly from whatever was durable).
    """

    def __init__(self, store_path: Union[str, os.PathLike]):
        self.store_path = str(store_path)
        self._lock = threading.Lock()
        self._jobs: Dict[str, CampaignJob] = {}
        self._threads: Dict[str, threading.Thread] = {}

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, request: CampaignRequest) -> CampaignJob:
        """Register a campaign and start its background drain.

        Registration (plus result adoption and the once-per-fleet error
        reset) happens synchronously so the campaign id — and a consistent
        store row — exist before the response is sent; execution happens on
        daemon threads.  Re-submitting a campaign that is already running
        is refused (409); re-submitting a finished one resumes it, exactly
        like re-invoking ``run-campaign``.
        """
        spec = request.spec
        points = spec.expand()
        with CampaignStore(self.store_path, read_only=False) as store:
            campaign_id = store.register_campaign(spec, points)
            store.adopt_existing_results(campaign_id)
            store.reset_error_points(campaign_id)
        with self._lock:
            existing = self._jobs.get(campaign_id)
            if existing is not None and existing.state == RUNNING:
                raise ServiceError(
                    409,
                    "campaign-running",
                    f"campaign {campaign_id[:16]} is already draining; "
                    "poll its status instead of resubmitting",
                )
            job = CampaignJob(
                campaign_id=campaign_id,
                name=spec.name,
                workers=request.workers,
                batch=request.batch,
            )
            self._jobs[campaign_id] = job
            supervisor = threading.Thread(
                target=self._drain,
                args=(job, spec, request),
                name=f"campaign-{campaign_id[:12]}",
                daemon=True,
            )
            self._threads[campaign_id] = supervisor
            supervisor.start()
        return job

    def _drain(
        self, job: CampaignJob, spec: CampaignSpec, request: CampaignRequest
    ) -> None:
        """Supervise one drain: run N lease workers, then finalise the job."""
        quotas: List[Optional[int]] = [request.max_points] * request.workers
        if request.max_points is not None:
            quotas = [
                request.max_points // request.workers
                + (1 if index < request.max_points % request.workers else 0)
                for index in range(request.workers)
            ]
        run_tag = f"{os.getpid()}-{job.campaign_id[:8]}"
        errors: List[str] = []

        def worker(index: int) -> None:
            try:
                summary = run_campaign(
                    spec,
                    store_path=self.store_path,
                    worker_id=f"svc-{run_tag}-{index}",
                    lease_seconds=request.lease_seconds,
                    chunk_size=request.chunk_size,
                    max_points=quotas[index],
                    batch=request.batch,
                    # The submit path already reset error points once for
                    # this drain; doing it again here would race a peer's
                    # fresh failure back to pending mid-fleet.
                    reset_errors=False,
                )
            except BaseException as error:  # noqa: BLE001 - recorded, not raised
                errors.append(f"{type(error).__name__}: {error}")
            else:
                with self._lock:
                    job.summaries.append(summary.to_dict())

        if request.workers == 1:
            worker(0)
        else:
            threads = [
                threading.Thread(
                    target=worker,
                    args=(index,),
                    name=f"campaign-{job.campaign_id[:8]}-w{index}",
                    daemon=True,
                )
                for index in range(request.workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        with self._lock:
            if errors:
                job.state = FAILED
                job.error = "; ".join(errors)
            else:
                job.state = DONE

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def get(self, campaign_id: str) -> Optional[CampaignJob]:
        """The job submitted under *campaign_id* this process, if any."""
        with self._lock:
            return self._jobs.get(campaign_id)

    def jobs(self) -> List[CampaignJob]:
        """Every job this process has accepted, oldest first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.submitted_at)

    def wait(self, campaign_id: str, timeout: Optional[float] = None) -> bool:
        """Block until a job's supervisor finishes; ``True`` when it did."""
        with self._lock:
            thread = self._threads.get(campaign_id)
        if thread is None:
            return True
        thread.join(timeout)
        return not thread.is_alive()


__all__ = ["DONE", "FAILED", "RUNNING", "CampaignJob", "JobManager"]
