"""Endpoint logic of the scenario service, independent of HTTP plumbing.

Each handler is a plain function from validated inputs to a JSON-ready
payload (or, for the replay stream, a sequence of ``emit`` calls), raising
:class:`~repro.service.schemas.ServiceError` for every client-visible
failure.  The HTTP layer in :mod:`repro.service.server` only routes,
parses and serialises — all behaviour worth testing lives here, callable
without a socket.

Read endpoints open short-lived ``read_only=True`` store connections per
request: WAL lets any number of them run against a store a worker fleet is
actively writing, and a read-only view can never take (or wait on) a write
lock.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Mapping, Optional

from ..campaign.report import (
    deviation_from_best,
    filter_rows,
    scheme_dominance,
    summarise,
)
from ..campaign.store import CampaignStore
from ..exceptions import ConfigurationError
from ..scenario.engine import build_scenario, run_built_scenario
from ..scenario.registry import registered_components
from .jobs import JobManager
from .schemas import (
    ServiceError,
    bad_request,
    campaign_request,
    not_found,
    points_query,
    report_query,
    scenario_spec_from_request,
)

#: Signature of the replay stream's sink: called once per NDJSON record.
Emit = Callable[[Dict[str, Any]], None]


class ServiceState:
    """Everything the handlers need: the store path, cache dir and jobs."""

    def __init__(
        self,
        store_path: str,
        cache_dir: Optional[str] = None,
        jobs: Optional[JobManager] = None,
    ):
        self.store_path = str(store_path)
        self.cache_dir = str(cache_dir) if cache_dir else None
        self.jobs = jobs if jobs is not None else JobManager(store_path)

    def open_reader(self) -> CampaignStore:
        """A fresh read-only store connection for one request.

        Raises:
            ServiceError: 404 when no campaign has ever been submitted (the
                store file does not exist yet).
        """
        if not os.path.exists(self.store_path):
            raise not_found(
                f"campaign store {self.store_path} does not exist yet; "
                "submit a campaign first",
                code="no-store",
            )
        return CampaignStore(self.store_path, read_only=True)


# --------------------------------------------------------------------- #
# Components and scenarios
# --------------------------------------------------------------------- #
def metrics_payload() -> Dict[str, Any]:
    """``GET /metrics?format=json`` — the registry snapshot, JSON-ready.

    The Prometheus text rendering lives in the HTTP layer (it is a
    content-type concern); this payload carries the same samples for
    JSON consumers and tests.
    """
    from ..obs import metrics as _metrics  # deferred: keeps import cheap

    return {"metrics": _metrics.registry().snapshot()}


def components_payload() -> Dict[str, Any]:
    """``GET /components`` — the registry listing, one key per kind.

    Byte-identical to ``list-components --json``: both call
    :func:`~repro.scenario.registry.registered_components`.
    """
    return {"components": registered_components()}


def run_scenario_payload(
    state: ServiceState, body: Mapping[str, Any]
) -> Dict[str, Any]:
    """``POST /scenarios`` — run one scenario synchronously.

    Sweep-cache aware: with a cache directory configured, a previously
    executed spec is answered from disk (``"cache": "hit"``) through the
    exact :class:`~repro.experiments.runner.Sweep` path the CLI uses.
    """
    from ..experiments.runner import Sweep  # deferred: keeps import cheap

    spec = scenario_spec_from_request(body)
    sweep = Sweep([spec.sweep_point()], cache_dir=state.cache_dir)
    cache = (
        "disabled"
        if not state.cache_dir
        else ("hit" if sweep.cached_points() else "miss")
    )
    try:
        result = sweep.run()[0]
    except (ConfigurationError, TypeError) as error:
        # TypeError: a validated spec can still hand a component builder an
        # unknown parameter — a client mistake, not a server fault.
        raise bad_request(str(error), code="invalid-scenario") from error
    return {"cache": cache, "result": result.to_dict()}


# --------------------------------------------------------------------- #
# Campaigns
# --------------------------------------------------------------------- #
def submit_campaign_payload(
    state: ServiceState, body: Mapping[str, Any]
) -> Dict[str, Any]:
    """``POST /campaigns`` — register a grid and start its background drain.

    Returns immediately with the campaign id; progress is polled via the
    status endpoint.  Re-submitting a finished campaign resumes it (only
    missing points run), exactly like re-invoking ``run-campaign``.
    """
    request = campaign_request(body)
    try:
        job = state.jobs.submit(request)
    except ConfigurationError as error:
        raise bad_request(str(error), code="invalid-campaign") from error
    return {
        "campaign_id": job.campaign_id,
        "name": job.name,
        "grid_size": request.spec.grid_size(),
        "job": job.to_dict(),
    }


def list_campaigns_payload(state: ServiceState) -> Dict[str, Any]:
    """``GET /campaigns`` — every stored campaign plus in-process job state."""
    if not os.path.exists(state.store_path):
        return {"store": state.store_path, "campaigns": []}
    with state.open_reader() as store:
        campaigns = store.campaigns()
    for row in campaigns:
        job = state.jobs.get(row["campaign_id"])
        if job is not None:
            row["job"] = job.to_dict()
    return {"store": state.store_path, "campaigns": campaigns}


def _find_campaign(store: CampaignStore, selector: str) -> Dict[str, Any]:
    """Resolve a campaign selector, mapping lookup failures to 404."""
    try:
        return store.find_campaign(selector)
    except ConfigurationError as error:
        raise not_found(str(error), code="unknown-campaign") from error


def campaign_status_payload(
    state: ServiceState, selector: str
) -> Dict[str, Any]:
    """``GET /campaigns/{id}/status`` — counts, live leases and job state.

    The lease rows come from the same
    :meth:`~repro.campaign.store.CampaignStore.active_leases` call that
    backs ``campaign-status --json``, so CLI and service consumers always
    see identical ``worker_id``/``expires_at`` views.
    """
    with state.open_reader() as store:
        campaign = _find_campaign(store, selector)
        counts = store.status_counts(campaign["campaign_id"])
        leases = store.active_leases(campaign["campaign_id"])
    payload: Dict[str, Any] = {
        "campaign": campaign,
        "counts": counts,
        "leases": leases,
    }
    job = state.jobs.get(campaign["campaign_id"])
    if job is not None:
        payload["job"] = job.to_dict()
    return payload


def campaign_points_payload(
    state: ServiceState, selector: str, query: Mapping[str, List[str]]
) -> Dict[str, Any]:
    """``GET /campaigns/{id}/points`` — paginated point rows.

    ``status``/``limit``/``offset`` filter SQL-side through
    :meth:`~repro.campaign.store.CampaignStore.points`, so one page of a
    huge grid never materialises the rest.
    """
    page = points_query(query)
    with state.open_reader() as store:
        campaign = _find_campaign(store, selector)
        points = store.points(
            campaign["campaign_id"],
            status=page.status,
            limit=page.limit,
            offset=page.offset,
        )
        counts = store.status_counts(campaign["campaign_id"])
    return {
        "campaign_id": campaign["campaign_id"],
        "counts": counts,
        "status": page.status,
        "limit": page.limit,
        "offset": page.offset,
        "count": len(points),
        "points": points,
    }


def campaign_report_payload(
    state: ServiceState, selector: str, query: Mapping[str, List[str]]
) -> Dict[str, Any]:
    """``GET /campaigns/{id}/report`` — the aggregation layer over HTTP.

    Same pipeline as ``campaign-report``: flat metric rows, optional
    ``filter`` expressions, grouped summary plus scheme dominance and
    deviation-from-best across the grid.
    """
    report = report_query(query)
    with state.open_reader() as store:
        campaign = _find_campaign(store, selector)
        known_metrics = store.metric_names(campaign["campaign_id"])
        if known_metrics and report.metric not in known_metrics:
            raise bad_request(
                f"unknown metric {report.metric!r}; this campaign recorded: "
                f"{', '.join(known_metrics)}",
                code="unknown-metric",
            )
        rows = store.metric_rows(campaign["campaign_id"])
    try:
        rows = filter_rows(rows, report.filters)
        payload = {
            "campaign_id": campaign["campaign_id"],
            "metric": report.metric,
            "group_by": list(report.group_by),
            "filters": report.filters,
            "rows": len(rows),
            "summary": summarise(
                rows, metric=report.metric, group_by=list(report.group_by)
            ),
            "dominance": scheme_dominance(rows, metric=report.metric),
            "deviation": deviation_from_best(rows, metric=report.metric),
        }
    except ConfigurationError as error:
        raise bad_request(str(error), code="invalid-report") from error
    return payload


# --------------------------------------------------------------------- #
# Streaming replay
# --------------------------------------------------------------------- #
def replay_stream(body: Mapping[str, Any], emit: Emit) -> None:
    """``GET|POST /scenarios/replay`` — live per-interval telemetry.

    Builds the scenario (any spec error surfaces as a 400 *before* the
    first byte is streamed), then replays it through the
    :func:`~repro.scenario.timeline.run_timeline` interval hook, emitting
    one record per NDJSON line:

    * ``{"type": "start", ...}`` — name, config hash, interval count,
      scheme labels and the utilisation threshold;
    * ``{"type": "interval", ...}`` — per interval: index, time, fired
      events and each scheme's power %, max utilisation, SLO violation
      flag, recomputation marker and step latency;
    * ``{"type": "end", "result": ...}`` — the full
      :class:`~repro.scenario.engine.ScenarioResult`, bit-identical to an
      offline ``run_timeline`` of the same spec.
    """
    spec = scenario_spec_from_request(body)
    try:
        built = build_scenario(spec)
    except (ConfigurationError, TypeError) as error:
        # TypeError: unknown component parameters (see run_scenario_payload).
        raise bad_request(str(error), code="invalid-scenario") from error
    threshold = built.spec.utilisation_threshold
    emit(
        {
            "type": "start",
            "name": built.spec.name,
            "config_hash": built.spec.config_hash(),
            "intervals": len(built.trace.timestamps()),
            "schemes": [scheme.label for scheme in built.spec.schemes],
            "utilisation_threshold": threshold,
        }
    )

    def on_interval(step: Any, outcomes: Mapping[str, Any]) -> None:
        emit(
            {
                "type": "interval",
                "index": step.index,
                "time_s": step.time_s,
                "events": [dict(record) for record in step.fired],
                "schemes": {
                    label: {
                        "power_percent": outcome.power_percent,
                        "max_utilisation": outcome.max_utilisation,
                        "violation": (
                            None
                            if outcome.max_utilisation is None
                            else bool(
                                outcome.max_utilisation > threshold + 1e-9
                            )
                        ),
                        "recomputed": outcome.recomputed,
                        "compute_seconds": outcome.compute_seconds,
                    }
                    for label, outcome in outcomes.items()
                },
            }
        )

    try:
        result = run_built_scenario(built, on_interval=on_interval)
    except ConfigurationError as error:
        raise bad_request(str(error), code="invalid-scenario") from error
    emit({"type": "end", "result": result.to_dict()})


__all__ = [
    "Emit",
    "ServiceError",
    "ServiceState",
    "campaign_points_payload",
    "campaign_report_payload",
    "campaign_status_payload",
    "components_payload",
    "list_campaigns_payload",
    "metrics_payload",
    "replay_stream",
    "run_scenario_payload",
    "submit_campaign_payload",
]
