"""The scenario service's HTTP layer — stdlib only.

A :class:`~http.server.ThreadingHTTPServer` (one thread per request, no
new dependencies) routing a small REST surface onto the handlers in
:mod:`repro.service.handlers`:

========  ==============================  =====================================
Method    Path                            Handler
========  ==============================  =====================================
GET       ``/``                           endpoint index
GET       ``/healthz``                    liveness probe
GET       ``/components``                 registry listing
POST      ``/scenarios``                  run one scenario (sweep-cache aware)
GET/POST  ``/scenarios/replay``           streaming NDJSON replay telemetry
POST      ``/campaigns``                  submit a campaign (background drain)
GET       ``/campaigns``                  list campaigns + job state
GET       ``/campaigns/{id}/status``      counts, leases, job state
GET       ``/campaigns/{id}/points``      paginated point rows
GET       ``/campaigns/{id}/report``      aggregation (summary/dominance/…)
========  ==============================  =====================================

Responses are JSON; failures are :class:`ServiceError` payloads with a
machine-readable code.  The replay endpoint streams NDJSON over HTTP/1.1
chunked transfer encoding, one record per line, flushed per interval —
headers are only sent once the scenario has *built*, so an invalid spec
still gets a clean 400 instead of a broken stream.
"""

from __future__ import annotations

import json
import logging
import socket
import time
import traceback
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..obs import metrics
from . import handlers
from .handlers import ServiceState
from .schemas import ServiceError, bad_request, not_found, parse_json_body

_LOGGER = logging.getLogger(__name__)

_REQUESTS = metrics.counter(
    "repro_service_requests_total", "Service requests handled, by route"
)
_REQUEST_SECONDS = metrics.histogram(
    "repro_service_request_seconds", "Service request handling latency"
)

#: Upper bound on request bodies (a campaign spec is a few KiB; 8 MiB
#: leaves room for giant inline grids while bounding memory per request).
MAX_BODY_BYTES = 8 * 1024 * 1024


@dataclass(frozen=True)
class ServiceConfig:
    """Bind address and store wiring of one service instance.

    Attributes:
        host: Interface to bind (default loopback — the service has no
            authentication, so exposing it wider is an explicit choice).
        port: TCP port; ``0`` binds an ephemeral port (tests, benches).
        store: Path of the shared campaign SQLite store.
        cache_dir: Optional sweep-cache directory for ``POST /scenarios``.
        default_workers: Lease workers per campaign when a submission does
            not name its own ``workers``.
    """

    host: str = "127.0.0.1"
    port: int = 8321
    store: str = "campaign.sqlite"
    cache_dir: Optional[str] = None
    default_workers: int = 1


_INDEX = {
    "service": "repro-scenario-service",
    "endpoints": {
        "GET /healthz": "liveness probe",
        "GET /components": "registered components by kind",
        "POST /scenarios": "run one scenario spec (sweep-cache aware)",
        "GET|POST /scenarios/replay": "streaming NDJSON replay telemetry",
        "POST /campaigns": "submit a campaign spec for background draining",
        "GET /campaigns": "stored campaigns with job state",
        "GET /campaigns/{id}/status": "status counts, live leases, job state",
        "GET /campaigns/{id}/points": "point rows (?status=&limit=&offset=)",
        "GET /campaigns/{id}/report": (
            "aggregation (?metric=&group_by=&filter=KEY%3DVALUE)"
        ),
        "GET /metrics": (
            "process metrics, Prometheus text format (?format=json for JSON)"
        ),
    },
}


def _route_class(route: str) -> str:
    """Collapse a concrete path to its route template for metric labels.

    ``/campaigns/3f2a.../status`` → ``/campaigns/{id}/status`` — label
    cardinality stays bounded by the endpoint table, never by stored data.
    """
    parts = route.split("/")
    if len(parts) >= 3 and parts[1] == "campaigns" and parts[2]:
        parts[2] = "{id}"
        return "/".join(parts)
    return route


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Route one request, render JSON, never leak a traceback to a client."""

    #: Chunked transfer encoding (the replay stream) needs HTTP/1.1.
    protocol_version = "HTTP/1.1"
    server: "ScenarioServiceServer"

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        _LOGGER.debug("%s - %s", self.address_string(), format % args)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                413,
                "body-too-large",
                f"request body of {length} bytes exceeds {MAX_BODY_BYTES}",
            )
        return self.rfile.read(length) if length else b""

    def _send_json(self, status: int, payload: Mapping[str, Any]) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(
        self, status: int, body: str, content_type: str = "text/plain; charset=utf-8"
    ) -> None:
        encoded = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def _send_error_payload(self, error: ServiceError) -> None:
        self._send_json(error.status, error.payload())

    def _query(self) -> Dict[str, List[str]]:
        return parse_qs(urlsplit(self.path).query)

    @property
    def route(self) -> str:
        return urlsplit(self.path).path.rstrip("/") or "/"

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _dispatch(self, method: str) -> None:
        state = self.server.state
        route_label = _route_class(self.route)
        started = time.perf_counter()
        outcome = "ok"
        try:
            handled = self._route(method, state)
        except ServiceError as error:
            outcome = "error"
            self._send_error_payload(error)
        except BrokenPipeError:
            outcome = "disconnect"  # client went away; nothing to answer
        except Exception:
            outcome = "error"
            _LOGGER.error(
                "unhandled error on %s %s\n%s",
                method,
                self.path,
                traceback.format_exc(),
            )
            self._send_error_payload(
                ServiceError(500, "internal", "internal service error")
            )
        else:
            if not handled:
                outcome = "not-found"
                self._send_error_payload(
                    not_found(f"no such endpoint: {method} {self.route}")
                )
        _REQUESTS.labels(
            method=method, route=route_label, outcome=outcome
        ).inc()
        _REQUEST_SECONDS.labels(route=route_label).observe(
            time.perf_counter() - started
        )

    def _route(self, method: str, state: ServiceState) -> bool:
        route = self.route
        if route == "/" and method == "GET":
            self._send_json(200, _INDEX)
            return True
        if route == "/healthz" and method == "GET":
            self._send_json(
                200, {"status": "ok", "store": state.store_path}
            )
            return True
        if route == "/components" and method == "GET":
            self._send_json(200, handlers.components_payload())
            return True
        if route == "/metrics" and method == "GET":
            wants_json = self._query().get("format", [""])[-1] == "json"
            if wants_json:
                self._send_json(200, handlers.metrics_payload())
            else:
                self._send_text(
                    200,
                    metrics.registry().render_prometheus(),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            return True
        if route == "/scenarios" and method == "POST":
            body = parse_json_body(self._read_body())
            self._send_json(200, handlers.run_scenario_payload(state, body))
            return True
        if route == "/scenarios/replay":
            self._handle_replay(method)
            return True
        if route == "/campaigns":
            if method == "POST":
                body = parse_json_body(self._read_body())
                if "base" not in body and "workers" not in body:
                    body.setdefault(
                        "workers", self.server.config.default_workers
                    )
                self._send_json(
                    202, handlers.submit_campaign_payload(state, body)
                )
                return True
            if method == "GET":
                self._send_json(200, handlers.list_campaigns_payload(state))
                return True
            return False
        if route.startswith("/campaigns/") and method == "GET":
            parts = route.split("/")[2:]  # ["", "campaigns", id, verb]
            if len(parts) != 2:
                return False
            selector, verb = parts
            if verb == "status":
                self._send_json(
                    200, handlers.campaign_status_payload(state, selector)
                )
                return True
            if verb == "points":
                self._send_json(
                    200,
                    handlers.campaign_points_payload(
                        state, selector, self._query()
                    ),
                )
                return True
            if verb == "report":
                self._send_json(
                    200,
                    handlers.campaign_report_payload(
                        state, selector, self._query()
                    ),
                )
                return True
            return False
        return False

    # ------------------------------------------------------------------ #
    # Streaming replay
    # ------------------------------------------------------------------ #
    def _replay_body(self, method: str) -> Dict[str, Any]:
        if method == "POST":
            return parse_json_body(self._read_body())
        values = self._query().get("spec")
        if not values:
            raise bad_request(
                "replay needs a spec: POST a JSON body or pass "
                "?spec=<url-encoded scenario spec JSON>"
            )
        try:
            data = json.loads(values[-1])
        except json.JSONDecodeError as error:
            raise bad_request(
                f"'spec' query parameter is not valid JSON: {error}"
            ) from error
        if not isinstance(data, Mapping):
            raise bad_request("'spec' must decode to a JSON object")
        return dict(data)

    def _handle_replay(self, method: str) -> None:
        body = self._replay_body(method)
        streaming = False

        def emit(record: Dict[str, Any]) -> None:
            nonlocal streaming
            if not streaming:
                # First record: the scenario built, commit to the stream.
                self.send_response(200)
                self.send_header(
                    "Content-Type", "application/x-ndjson; charset=utf-8"
                )
                self.send_header("Transfer-Encoding", "chunked")
                self.end_headers()
                streaming = True
            line = json.dumps(record, sort_keys=True).encode("utf-8") + b"\n"
            self.wfile.write(f"{len(line):x}\r\n".encode("ascii"))
            self.wfile.write(line)
            self.wfile.write(b"\r\n")
            self.wfile.flush()

        try:
            handlers.replay_stream(body, emit)
        except ServiceError as error:
            if not streaming:
                raise
            emit({"type": "error", **error.payload()["error"]})
        except BrokenPipeError:
            return  # reader hung up mid-replay; abandon quietly
        except Exception:
            _LOGGER.error(
                "replay failed mid-stream\n%s", traceback.format_exc()
            )
            if not streaming:
                raise
            emit({"type": "error", "code": "internal", "message": "replay failed"})
        if streaming:
            self.wfile.write(b"0\r\n\r\n")
            self.wfile.flush()

    # ------------------------------------------------------------------ #
    # HTTP verbs
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")


class ScenarioServiceServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` carrying the service state."""

    #: Request threads are daemons: Ctrl-C stops the service even when a
    #: client holds a replay stream open.
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, config: ServiceConfig, state: ServiceState):
        self.config = config
        self.state = state
        super().__init__((config.host, config.port), ServiceRequestHandler)

    @property
    def address(self) -> Tuple[str, int]:
        """The actually bound ``(host, port)`` (resolves port 0)."""
        return self.socket.getsockname()[:2]

    @property
    def url(self) -> str:
        """Base URL of the bound service."""
        host, port = self.address
        if ":" in host:  # IPv6 literal
            host = f"[{host}]"
        return f"http://{host}:{port}"


def create_server(
    config: ServiceConfig, state: Optional[ServiceState] = None
) -> ScenarioServiceServer:
    """Bind a service instance (without entering its serve loop).

    Separated from :func:`serve_forever` so tests and benches can bind an
    ephemeral port, read :attr:`ScenarioServiceServer.url` and drive the
    loop from a thread they control.
    """
    if state is None:
        state = ServiceState(config.store, cache_dir=config.cache_dir)
    try:
        return ScenarioServiceServer(config, state)
    except OSError as error:
        raise ServiceError(
            500,
            "bind-failed",
            f"cannot bind {config.host}:{config.port}: {error}",
        ) from error


def hostname_url(server: ScenarioServiceServer) -> str:
    """A printable URL, substituting a wildcard bind with the hostname."""
    host, port = server.address
    if host in ("0.0.0.0", "::"):
        host = socket.gethostname()
    return f"http://{host}:{port}"


__all__ = [
    "MAX_BODY_BYTES",
    "ScenarioServiceServer",
    "ServiceConfig",
    "ServiceRequestHandler",
    "create_server",
    "hostname_url",
]
