"""Request/response schemas and errors of the scenario service.

Every endpoint's input passes through one of the validators here before it
reaches a handler, so malformed requests die at the edge with a structured
JSON error instead of a traceback deep in the engine.  A failed validation
raises :class:`ServiceError`, which the HTTP layer renders uniformly as::

    {"error": {"code": "<machine-readable-code>", "message": "<detail>"}}

The validators deliberately reuse the repo's own spec classes
(:class:`~repro.scenario.spec.ScenarioSpec`,
:class:`~repro.campaign.spec.CampaignSpec`) as the schema of record: a
spec that runs from the CLI is byte-for-byte the spec the service accepts,
and every :class:`~repro.exceptions.ConfigurationError` those classes
raise is translated into a 400 with the same message.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..campaign.run import DEFAULT_LEASE_SECONDS
from ..campaign.spec import CampaignSpec
from ..campaign.store import CampaignStore
from ..exceptions import ConfigurationError
from ..scenario.spec import ScenarioSpec


class ServiceError(Exception):
    """An HTTP-mappable request failure.

    Attributes:
        status: The HTTP status code to respond with.
        code: A short machine-readable error code.
        message: The human-readable detail.
    """

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def payload(self) -> Dict[str, Any]:
        """The JSON body rendered for this error."""
        return {"error": {"code": self.code, "message": self.message}}


def bad_request(message: str, code: str = "bad-request") -> ServiceError:
    """A 400 with a machine-readable code."""
    return ServiceError(400, code, message)


def not_found(message: str, code: str = "not-found") -> ServiceError:
    """A 404 with a machine-readable code."""
    return ServiceError(404, code, message)


def parse_json_body(raw: bytes) -> Dict[str, Any]:
    """Decode a request body as a JSON object.

    Raises:
        ServiceError: 400 on empty bodies, invalid JSON or non-object roots.
    """
    if not raw:
        raise bad_request("request body is empty; expected a JSON object")
    try:
        data = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise bad_request(f"request body is not valid JSON: {error}") from error
    if not isinstance(data, Mapping):
        raise bad_request(
            f"request body must be a JSON object, got {type(data).__name__}"
        )
    return dict(data)


def scenario_spec_from_request(body: Mapping[str, Any]) -> ScenarioSpec:
    """The validated scenario spec of a ``POST /scenarios`` (or replay) body.

    The body is either ``{"spec": {...}}`` or the bare spec dict itself —
    both forms validate through :class:`~repro.scenario.spec.ScenarioSpec`,
    so the service accepts exactly the documents ``run-scenario --spec``
    does.

    Raises:
        ServiceError: 400 when the spec does not validate.
    """
    data = body.get("spec", body)
    if not isinstance(data, Mapping):
        raise bad_request("'spec' must be a scenario spec object")
    try:
        spec = ScenarioSpec.from_dict(data).validate()
    except ConfigurationError as error:
        raise bad_request(str(error), code="invalid-scenario") from error
    if not spec.schemes:
        raise bad_request(
            "the scenario names no schemes; add at least one to its "
            "'schemes' list",
            code="invalid-scenario",
        )
    return spec


@dataclass(frozen=True)
class CampaignRequest:
    """A validated ``POST /campaigns`` submission.

    Attributes:
        spec: The campaign spec to execute.
        workers: Cooperative lease-worker threads to drain the grid with.
        batch: Group points by batch signature per claim (see
            ``run-campaign --batch``).
        max_points: Optional global bound on newly executed points.
        chunk_size: Lease/persistence granularity per claim.
        lease_seconds: Lease duration without renewal.
    """

    spec: CampaignSpec
    workers: int = 1
    batch: bool = False
    max_points: Optional[int] = None
    chunk_size: Optional[int] = None
    lease_seconds: float = DEFAULT_LEASE_SECONDS


def campaign_request(body: Mapping[str, Any]) -> CampaignRequest:
    """Validate a campaign submission body.

    The body is ``{"spec": <campaign spec>, ...options}`` or a bare
    campaign spec dict (anything with a ``base`` key).  Options:
    ``workers`` (int >= 1), ``batch`` (bool), ``max_points`` (int >= 0),
    ``chunk_size`` (int >= 1), ``lease_seconds`` (float > 0).

    Raises:
        ServiceError: 400 on an invalid spec or option.
    """
    data = body.get("spec", body if "base" in body else None)
    if not isinstance(data, Mapping):
        raise bad_request(
            "'spec' must be a campaign spec object (a document with a "
            "'base' scenario and optional 'axes')"
        )
    try:
        spec = CampaignSpec.from_dict(data)
    except ConfigurationError as error:
        raise bad_request(str(error), code="invalid-campaign") from error
    options = {key: body[key] for key in body if key != "spec" and body is not data}

    unknown = set(options) - {
        "workers", "batch", "max_points", "chunk_size", "lease_seconds"
    }
    if unknown:
        raise bad_request(
            f"unknown campaign options {sorted(unknown)}; expected workers, "
            "batch, max_points, chunk_size, lease_seconds"
        )
    workers = options.get("workers", 1)
    if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
        raise bad_request(f"'workers' must be an integer >= 1, got {workers!r}")
    batch = options.get("batch", False)
    if not isinstance(batch, bool):
        raise bad_request(f"'batch' must be a boolean, got {batch!r}")
    max_points = options.get("max_points")
    if max_points is not None and (
        not isinstance(max_points, int)
        or isinstance(max_points, bool)
        or max_points < 0
    ):
        raise bad_request(f"'max_points' must be an integer >= 0, got {max_points!r}")
    chunk_size = options.get("chunk_size")
    if chunk_size is not None and (
        not isinstance(chunk_size, int)
        or isinstance(chunk_size, bool)
        or chunk_size < 1
    ):
        raise bad_request(f"'chunk_size' must be an integer >= 1, got {chunk_size!r}")
    lease_seconds = options.get("lease_seconds", DEFAULT_LEASE_SECONDS)
    if not isinstance(lease_seconds, (int, float)) or isinstance(
        lease_seconds, bool
    ) or lease_seconds <= 0:
        raise bad_request(f"'lease_seconds' must be > 0, got {lease_seconds!r}")
    return CampaignRequest(
        spec=spec,
        workers=workers,
        batch=batch,
        max_points=max_points,
        chunk_size=chunk_size,
        lease_seconds=float(lease_seconds),
    )


@dataclass(frozen=True)
class PointsQuery:
    """Validated pagination parameters of the points endpoint."""

    status: Optional[str] = None
    limit: Optional[int] = None
    offset: int = 0


def _query_int(
    query: Mapping[str, List[str]], name: str, minimum: int
) -> Optional[int]:
    values = query.get(name)
    if not values:
        return None
    try:
        value = int(values[-1])
    except ValueError:
        raise bad_request(f"query parameter {name!r} must be an integer") from None
    if value < minimum:
        raise bad_request(f"query parameter {name!r} must be >= {minimum}")
    return value


def points_query(query: Mapping[str, List[str]]) -> PointsQuery:
    """Validate ``status``/``limit``/``offset`` query parameters.

    Raises:
        ServiceError: 400 on an unknown status or non-integer/negative
            pagination values.
    """
    status_values = query.get("status")
    status = status_values[-1] if status_values else None
    if status is not None and status not in CampaignStore.POINT_STATUSES:
        raise bad_request(
            f"unknown point status {status!r}; expected one of "
            f"{list(CampaignStore.POINT_STATUSES)}"
        )
    limit = _query_int(query, "limit", minimum=0)
    offset = _query_int(query, "offset", minimum=0)
    return PointsQuery(status=status, limit=limit, offset=offset or 0)


@dataclass(frozen=True)
class ReportQuery:
    """Validated parameters of the report endpoint."""

    metric: str = "mean_power_percent"
    group_by: Tuple[str, ...] = ("scheme",)
    filters: Dict[str, Any] = field(default_factory=dict)


def report_query(query: Mapping[str, List[str]]) -> ReportQuery:
    """Validate ``metric``/``group_by``/``filter`` query parameters.

    ``group_by`` is repeatable (or comma-separated); ``filter`` entries use
    the CLI's ``KEY=VALUE`` form and are parsed by the same
    :func:`~repro.campaign.report.parse_filters` code path.

    Raises:
        ServiceError: 400 on a malformed filter.
    """
    from ..campaign.report import parse_filters  # deferred: keeps import cheap

    metric_values = query.get("metric")
    metric = metric_values[-1] if metric_values else "mean_power_percent"
    group_by: List[str] = []
    for entry in query.get("group_by", []):
        group_by.extend(part for part in entry.split(",") if part)
    try:
        filters = parse_filters(query.get("filter", []))
    except ConfigurationError as error:
        raise bad_request(str(error), code="invalid-filter") from error
    return ReportQuery(
        metric=metric,
        group_by=tuple(group_by) if group_by else ("scheme",),
        filters=filters,
    )


__all__ = [
    "CampaignRequest",
    "PointsQuery",
    "ReportQuery",
    "ServiceError",
    "bad_request",
    "campaign_request",
    "not_found",
    "parse_json_body",
    "points_query",
    "report_query",
    "scenario_spec_from_request",
]
