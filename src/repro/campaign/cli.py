"""Command-line subcommands for campaigns.

Dispatched from ``python -m repro.experiments``:

* ``run-campaign`` — expand a campaign spec and execute (or resume) it
  against a SQLite results store; ``--workers N`` forks N cooperative
  lease-holding workers, ``--worker-id`` joins a shared drain by hand.
* ``campaign-status`` — show stored campaigns, their point statuses and
  any live worker leases (opens the store read-only).
* ``campaign-report`` — aggregate stored results (summary tables, scheme
  dominance, deviation-from-best) and export metric rows as CSV/JSON.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence

from ..exceptions import ConfigurationError
from ..obs import trace
from .report import (
    deviation_from_best,
    filter_rows,
    format_table,
    parse_filters,
    rows_to_csv,
    rows_to_json,
    scheme_dominance,
    summarise,
)
from .run import DEFAULT_LEASE_SECONDS, run_campaign, run_campaign_workers
from .spec import CampaignSpec
from .store import CampaignStore


def _require_store(path: str, parser: argparse.ArgumentParser) -> None:
    """Read-only subcommands refuse a missing store instead of creating one.

    Opening a nonexistent path would silently write an empty schema'd
    SQLite file — a stray store that masks a ``--store`` typo forever.
    """
    if not os.path.exists(path):
        parser.error(f"campaign store {path!r} does not exist (check --store)")


def _load_campaign_spec(path: str) -> CampaignSpec:
    if path == "-":
        return CampaignSpec.from_json(sys.stdin.read())
    with open(path, "r", encoding="utf-8") as handle:
        return CampaignSpec.from_dict(json.load(handle))


def _run_campaign_command(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments run-campaign",
        description=(
            "Expand a declarative campaign spec (base scenario x axes) into "
            "its grid and execute it against a persistent results store. "
            "Completed points (matched by config hash) are skipped, so "
            "re-invoking an interrupted campaign resumes it."
        ),
    )
    parser.add_argument("--spec", required=True, help="campaign spec JSON file ('-' reads stdin)")
    parser.add_argument(
        "--store", default="campaign.sqlite", help="SQLite results store (default: %(default)s)"
    )
    parser.add_argument("--parallel", action="store_true", help="fan out over processes")
    parser.add_argument("--processes", type=int, default=None, help="pool size")
    parser.add_argument(
        "--batch",
        action="store_true",
        help=(
            "group points sharing a topology/power/routing signature and "
            "evaluate each group as one batched problem (bit-identical "
            "results, much higher points/s; composes with --workers)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fork N cooperative workers that drain the grid together via "
            "store leases (crash-safe: a killed worker's points are "
            "reclaimed by the others)"
        ),
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        metavar="ID",
        help=(
            "join the campaign as one cooperative worker under this "
            "identity (run the same command with distinct ids on several "
            "terminals or hosts sharing the store file)"
        ),
    )
    parser.add_argument(
        "--lease-seconds",
        type=float,
        default=DEFAULT_LEASE_SECONDS,
        metavar="S",
        help=(
            "worker mode: how long a claimed batch stays leased without "
            "renewal before peers may reclaim it (default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="points persisted per batch (durability/lease granularity)",
    )
    parser.add_argument(
        "--max-points",
        type=int,
        default=None,
        help="execute at most this many new points, then stop",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="also read/write the sweep runner's per-point pickle cache",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="append an NDJSON span trace of the drain to PATH",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "record a per-point phase-timing breakdown "
            "(build/calibrate/solve/allocate/overhead) into the store for "
            "campaign-report --timings"
        ),
    )
    parser.add_argument("--json", action="store_true", help="print the summary as JSON")
    args = parser.parse_args(argv)

    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.lease_seconds <= 0:
        parser.error(
            f"--lease-seconds must be > 0, got {args.lease_seconds:g} "
            "(a non-positive lease is born expired, so every worker would "
            "claim the same points)"
        )
    exclusive = [
        flag
        for flag, given in (
            ("--workers", args.workers is not None),
            ("--worker-id", args.worker_id is not None),
            ("--parallel", args.parallel),
        )
        if given
    ]
    if len(exclusive) > 1:
        parser.error(
            f"{' and '.join(exclusive)} are mutually exclusive: --parallel "
            "pools point execution in one invocation, --workers forks "
            "cooperating invocations, --worker-id joins as one of them"
        )
    if args.batch and args.parallel:
        parser.error(
            "--batch and --parallel are mutually exclusive: batch mode "
            "evaluates grouped points in-process (combine --batch with "
            "--workers to use more cores)"
        )
    if args.profile and args.parallel:
        parser.error(
            "--profile and --parallel are mutually exclusive: profiling "
            "instruments in-process execution (combine --profile with "
            "--workers or --batch instead)"
        )

    if args.trace:
        trace.configure_tracing(args.trace)
    try:
        spec = _load_campaign_spec(args.spec)
        if args.workers is not None:
            summary = run_campaign_workers(
                spec,
                store_path=args.store,
                workers=args.workers,
                chunk_size=args.chunk_size,
                max_points=args.max_points,
                sweep_cache_dir=args.cache_dir,
                lease_seconds=args.lease_seconds,
                batch=args.batch,
                profile=args.profile,
            )
        else:
            summary = run_campaign(
                spec,
                store_path=args.store,
                parallel=args.parallel,
                processes=args.processes,
                chunk_size=args.chunk_size,
                max_points=args.max_points,
                sweep_cache_dir=args.cache_dir,
                worker_id=args.worker_id,
                lease_seconds=args.lease_seconds,
                batch=args.batch,
                profile=args.profile,
            )
    except ConfigurationError as error:
        parser.error(str(error))
    finally:
        if args.trace:
            trace.disable_tracing()
    if args.json:
        print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
        return 1 if summary.failed else 0
    print(f"campaign: {summary.name} ({summary.campaign_id[:16]})")
    print(f"store: {summary.store_path}")
    if summary.workers > 1:
        print(f"workers: {summary.workers} (lease {args.lease_seconds:g}s)")
    elif summary.worker_id is not None:
        print(f"worker: {summary.worker_id} (lease {args.lease_seconds:g}s)")
    print(
        f"points: {summary.total_points} total, "
        f"{summary.completed_before} already done "
        f"({summary.adopted} adopted by config hash), "
        f"{summary.executed} executed, {summary.failed} failed, "
        f"{summary.remaining} remaining"
    )
    if summary.executed:
        if summary.workers > 1:
            mode = f"{summary.workers} workers"
        elif summary.worker_id is not None:
            mode = "worker"
        else:
            mode = "parallel" if summary.parallel else "serial"
        print(
            f"elapsed: {summary.elapsed_s:.2f}s "
            f"({summary.points_per_second:.2f} points/s, {mode})"
        )
    for error in summary.errors:
        print(f"  FAILED {error}")
    return 1 if summary.failed else 0


def _throughput_fields(
    stats: Dict[str, float], remaining: int
) -> Dict[str, Optional[float]]:
    """Derive ``points_per_second``/``eta_seconds`` from completion stats.

    Both are ``None`` when the campaign has no completed points (or no
    recorded wall-clock) to extrapolate from; ``eta_seconds`` is ``0.0``
    once nothing remains.
    """
    done = stats.get("done", 0)
    elapsed = stats.get("elapsed_s", 0.0)
    points_per_second = done / elapsed if done and elapsed > 0 else None
    if remaining <= 0:
        eta_seconds: Optional[float] = 0.0
    elif points_per_second:
        eta_seconds = remaining / points_per_second
    else:
        eta_seconds = None
    return {
        "points_per_second": points_per_second,
        "eta_seconds": eta_seconds,
    }


def _campaign_status_command(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments campaign-status",
        description="Show stored campaigns and their per-point statuses.",
    )
    parser.add_argument("--store", default="campaign.sqlite", help="SQLite results store")
    parser.add_argument(
        "--campaign", default=None, help="campaign name or id (prefix) for point detail"
    )
    parser.add_argument("--json", action="store_true", help="print as JSON")
    args = parser.parse_args(argv)
    _require_store(args.store, parser)

    try:
        # Read-only: status must never contend with (or mutate) a store a
        # live run-campaign is writing.
        with CampaignStore(args.store, read_only=True) as store:
            campaigns = store.campaigns()
            if not campaigns:
                parser.error(f"campaign store {args.store} holds no campaigns")
            leases = {
                row["campaign_id"]: store.active_leases(row["campaign_id"])
                for row in campaigns
            }
            for row in campaigns:
                remaining = (row["num_points"] or 0) - (row["done"] or 0)
                row.update(
                    _throughput_fields(
                        store.completion_stats(row["campaign_id"]), remaining
                    )
                )
            detail: Optional[List[Dict[str, Any]]] = None
            selected: Optional[Dict[str, Any]] = None
            if args.campaign is not None:
                selected = store.find_campaign(args.campaign)
                detail = store.points(selected["campaign_id"])
    except ConfigurationError as error:
        parser.error(str(error))

    if args.json:
        payload: Dict[str, Any] = {
            "store": args.store,
            "campaigns": campaigns,
            "leases": leases,
        }
        if detail is not None:
            payload["points"] = detail
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"store: {args.store}")
    rows = [
        {
            "campaign": row["name"],
            "id": row["campaign_id"][:12],
            "points": row["num_points"],
            "done": row["done"] or 0,
            "error": row["errors"] or 0,
            "pending": row["pending"] or 0,
            "created": row["created_at"],
        }
        for row in campaigns
    ]
    print(format_table(rows))
    for row in campaigns:
        pps = row.get("points_per_second")
        eta = row.get("eta_seconds")
        if pps is not None and eta not in (None, 0.0):
            print(
                f"  throughput: {row['name']} at {pps:.2f} points/s, "
                f"ETA {eta:.0f}s"
            )
        for lease in leases.get(row["campaign_id"], []):
            print(
                f"  lease: {lease['worker']} holds {lease['points']} point(s) "
                f"of {row['name']} (expires in {lease['expires_in_s']:.0f}s)"
            )
    if detail is not None and selected is not None:
        print(f"\npoints of {selected['name']} ({selected['campaign_id'][:12]}):")
        point_rows = []
        for point in detail:
            entry = {
                "index": point["point_index"],
                "status": point["status"],
                "point": point["name"],
            }
            if point["elapsed_s"] is not None:
                entry["elapsed_s"] = round(point["elapsed_s"], 3)
            if point["error"]:
                entry["error"] = point["error"].strip().splitlines()[-1]
            point_rows.append(entry)
        print(format_table(point_rows))
    return 0


def _format_timings(
    campaign: Dict[str, Any], timings: Dict[str, Any], output_format: str
) -> str:
    """Render a ``campaign-report --timings`` phase breakdown."""
    points = timings["points"]
    totals: Dict[str, float] = timings["totals"]
    if output_format == "json":
        payload = {
            "campaign_id": campaign["campaign_id"],
            "name": campaign["name"],
            "profiled_points": points,
            "totals_s": totals,
            "mean_s": {
                phase: seconds / points for phase, seconds in totals.items()
            }
            if points
            else {},
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"
    header = (
        f"campaign: {campaign['name']} ({campaign['campaign_id'][:12]}, "
        f"{points} profiled points)"
    )
    if not points:
        return (
            header
            + "\nno phase timings recorded — drain the campaign with "
            "run-campaign --profile first\n"
        )
    grand_total = sum(totals.values()) or 1.0
    phases = list(trace.PHASE_NAMES) + sorted(
        set(totals) - set(trace.PHASE_NAMES)
    )
    rows = [
        {
            "phase": phase,
            "total_s": round(totals.get(phase, 0.0), 3),
            "mean_s": round(totals.get(phase, 0.0) / points, 4),
            "share": f"{100.0 * totals.get(phase, 0.0) / grand_total:.1f}%",
        }
        for phase in phases
    ]
    return header + "\n" + format_table(rows) + "\n"


def _campaign_report_command(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments campaign-report",
        description=(
            "Aggregate a stored campaign: per-group summary tables, scheme "
            "dominance and deviation-from-best over the grid, plus CSV/JSON "
            "export of the flat metric rows."
        ),
    )
    parser.add_argument("--store", default="campaign.sqlite", help="SQLite results store")
    parser.add_argument("--campaign", default=None, help="campaign name or id (prefix)")
    parser.add_argument(
        "--metric",
        default="mean_power_percent",
        help="metric to aggregate (default: %(default)s)",
    )
    parser.add_argument(
        "--group-by",
        action="append",
        default=None,
        metavar="COLUMN",
        help="group summary rows by this column (repeatable; default: scheme)",
    )
    parser.add_argument(
        "--filter",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="only rows matching this axis/scheme value (repeatable)",
    )
    parser.add_argument(
        "--format",
        choices=("table", "csv", "json"),
        default="table",
        help="output format (csv/json export the flat metric rows)",
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help=(
            "report the aggregated per-phase timings "
            "(build/calibrate/solve/allocate/overhead) of points drained "
            "with run-campaign --profile, instead of metric aggregates"
        ),
    )
    parser.add_argument("--output", metavar="PATH", help="write the output to PATH")
    args = parser.parse_args(argv)
    _require_store(args.store, parser)

    try:
        # Read-only: reporting alongside a live run must never take (or
        # wait on) write locks.
        with CampaignStore(args.store, read_only=True) as store:
            campaign = store.find_campaign(args.campaign)
            if args.timings:
                timings = store.phase_totals(campaign["campaign_id"])
                text = _format_timings(campaign, timings, args.format)
                if args.output:
                    with open(args.output, "w", encoding="utf-8") as handle:
                        handle.write(text)
                    print(f"wrote {args.format} timings report to {args.output}")
                else:
                    print(text, end="" if text.endswith("\n") else "\n")
                return 0
            known_metrics = store.metric_names(campaign["campaign_id"])
            if known_metrics and args.metric not in known_metrics:
                raise ConfigurationError(
                    f"unknown metric {args.metric!r}; this campaign recorded: "
                    f"{', '.join(known_metrics)}"
                )
            rows = filter_rows(
                store.metric_rows(campaign["campaign_id"]),
                parse_filters(args.filter),
            )
    except ConfigurationError as error:
        parser.error(str(error))

    if args.format == "csv":
        text = rows_to_csv(rows)
    elif args.format == "json":
        text = rows_to_json(rows)
    else:
        group_by = args.group_by or ["scheme"]
        counts = f"{campaign['done'] or 0}/{campaign['num_points']}"
        sections = [
            f"campaign: {campaign['name']} ({campaign['campaign_id'][:12]}, "
            f"{counts} points done)",
            f"\nsummary of {args.metric} by {', '.join(group_by)}:",
            format_table(summarise(rows, metric=args.metric, group_by=group_by)),
        ]
        dominance = scheme_dominance(rows, metric=args.metric)
        direction = "lower" if dominance["lower_is_better"] else "higher"
        if dominance["dominant_scheme"] is not None:
            shares = ", ".join(
                f"{scheme}: {share:.0%}"
                for scheme, share in sorted(dominance["winners"].items())
            )
            sections.append(
                f"\ndominance on {args.metric} ({direction} is better, "
                f"{dominance['points']} points): {dominance['dominant_scheme']} "
                f"wins {dominance['dominant_fraction']:.0%} ({shares})"
            )
        deviation = deviation_from_best(rows, metric=args.metric)
        if deviation:
            sections.append("\ndeviation from per-point best:")
            sections.append(format_table(deviation))
        text = "\n".join(sections) + "\n"

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.format} report to {args.output}")
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    return 0


def campaign_command(name: str, argv: Sequence[str]) -> int:
    """Dispatch one campaign subcommand (called from the experiments CLI)."""
    if name == "run-campaign":
        return _run_campaign_command(argv)
    if name == "campaign-status":
        return _campaign_status_command(argv)
    if name == "campaign-report":
        return _campaign_report_command(argv)
    raise ConfigurationError(f"unknown campaign subcommand {name!r}")


__all__ = ["campaign_command"]
