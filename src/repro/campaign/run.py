"""Resumable campaign execution over the sweep runner's chunked backend.

:func:`run_campaign` expands a :class:`~repro.campaign.spec.CampaignSpec`
into its grid, registers it in the :class:`~repro.campaign.store.CampaignStore`
and executes only the points whose config hash has no stored result yet.
Points run through :func:`repro.experiments.runner.iter_outcome_chunks` —
the same process-pool fan-out the figure sweeps use, but with per-point
error capture — and every chunk's outcomes are persisted before the next
chunk starts.  Killing a run therefore loses at most one in-flight chunk,
and re-invoking it completes exactly the missing points: the store ends up
bit-for-bit identical (modulo wall-clock fields) to an uninterrupted run.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Union

from ..exceptions import ConfigurationError
from ..experiments.runner import iter_outcome_chunks
from ..scenario.engine import ScenarioResult
from .spec import CampaignPoint, CampaignSpec
from .store import CampaignStore

_LOGGER = logging.getLogger(__name__)


@dataclass
class CampaignRunSummary:
    """What one :func:`run_campaign` invocation did.

    Attributes:
        campaign_id: The campaign's stable identity in the store.
        name: The campaign name.
        store_path: Where the results store lives.
        total_points: Size of the expanded grid.
        completed_before: Points already ``done`` when this run started
            (the resume skip set).
        adopted: Points marked done because another campaign had already
            stored a result under the same config hash.
        executed: Points actually run by this invocation.
        failed: How many of the executed points errored (recorded, not
            raised).
        remaining: Points still not done when this run returned (a
            ``max_points`` bound or failures).
        elapsed_s: Wall-clock time spent executing points.
        parallel: Whether the run fanned out over worker processes.
    """

    campaign_id: str
    name: str
    store_path: str
    total_points: int
    completed_before: int = 0
    adopted: int = 0
    executed: int = 0
    failed: int = 0
    remaining: int = 0
    elapsed_s: float = 0.0
    parallel: bool = False
    errors: List[str] = field(default_factory=list)

    @property
    def points_per_second(self) -> float:
        """Throughput of this invocation's executed points."""
        if self.executed == 0 or self.elapsed_s <= 0:
            return 0.0
        return self.executed / self.elapsed_s

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready view (for ``run-campaign --json`` and tooling)."""
        return {
            "campaign_id": self.campaign_id,
            "name": self.name,
            "store_path": self.store_path,
            "total_points": self.total_points,
            "completed_before": self.completed_before,
            "adopted": self.adopted,
            "executed": self.executed,
            "failed": self.failed,
            "remaining": self.remaining,
            "elapsed_s": self.elapsed_s,
            "points_per_second": self.points_per_second,
            "parallel": self.parallel,
            "errors": list(self.errors),
        }


def _coerce_campaign(spec: Any) -> CampaignSpec:
    if isinstance(spec, CampaignSpec):
        return spec
    if isinstance(spec, Mapping):
        return CampaignSpec.from_dict(spec)
    raise ConfigurationError(
        f"expected a CampaignSpec or a campaign spec mapping, got "
        f"{type(spec).__qualname__}"
    )


def run_campaign(
    spec: Any,
    store_path: Union[str, os.PathLike],
    parallel: bool = False,
    processes: Optional[int] = None,
    chunk_size: Optional[int] = None,
    max_points: Optional[int] = None,
    sweep_cache_dir: Optional[Union[str, os.PathLike]] = None,
) -> CampaignRunSummary:
    """Execute (or resume) a campaign against a results store.

    Args:
        spec: A :class:`CampaignSpec` or its dict form.
        store_path: The SQLite store file (created if missing).
        parallel: Fan points out over a ``fork`` process pool.
        processes: Pool size (default: CPU count, bounded by the grid).
        chunk_size: Points persisted per batch; the durability granularity.
            Defaults to one per point serially, the pool size in parallel.
        max_points: Execute at most this many new points, then return with
            ``remaining > 0`` — a bounded slice of a long campaign (and the
            deterministic stand-in for a killed run in tests).
        sweep_cache_dir: Optional per-point pickle cache shared with the
            sweep runner; the store itself is the authoritative record.

    Returns:
        A :class:`CampaignRunSummary`.  Point failures are recorded in the
        store (status ``error``) and counted, never raised; re-invoking the
        campaign retries them.
    """
    campaign = _coerce_campaign(spec)
    points = campaign.expand()
    with CampaignStore(store_path) as store:
        campaign_id = store.register_campaign(campaign, points)
        adopted = store.adopt_existing_results(campaign_id)
        statuses = store.point_statuses(campaign_id)
        pending: List[CampaignPoint] = [
            point for point in points if statuses.get(point.config_hash) != "done"
        ]
        summary = CampaignRunSummary(
            campaign_id=campaign_id,
            name=campaign.name,
            store_path=str(store.path),
            total_points=len(points),
            completed_before=len(points) - len(pending),
            adopted=adopted,
            parallel=parallel,
        )
        if max_points is not None:
            if max_points < 0:
                raise ConfigurationError(f"max_points must be >= 0, got {max_points}")
            pending = pending[:max_points]
        if not pending:
            # Nothing to execute this invocation — but a max_points bound
            # (or prior failures) may still leave points outstanding.
            counts = store.status_counts(campaign_id)
            summary.remaining = counts["total"] - counts["done"]
            return summary

        by_hash = {point.config_hash: point for point in pending}
        sweep_points = [point.spec.sweep_point() for point in pending]
        start = time.perf_counter()
        for chunk in iter_outcome_chunks(
            sweep_points,
            cache_dir=sweep_cache_dir,
            parallel=parallel,
            processes=processes,
            chunk_size=chunk_size,
        ):
            for outcome in chunk:
                point = by_hash[outcome.point.config_hash()]
                summary.executed += 1
                if not outcome.ok:
                    summary.failed += 1
                    summary.errors.append(
                        f"{point.name}: {outcome.error.strip().splitlines()[-1]}"
                    )
                    _LOGGER.warning(
                        "campaign point %r failed:\n%s", point.name, outcome.error
                    )
                    store.record_failure(
                        campaign_id, point, outcome.error, outcome.elapsed_s
                    )
                    continue
                result = outcome.value
                if not isinstance(result, ScenarioResult):
                    result = ScenarioResult.from_dict(result)
                if result.config_hash != point.config_hash:
                    # A hashing regression would silently corrupt resume
                    # bookkeeping — record it as a failure instead.
                    summary.failed += 1
                    message = (
                        f"result config hash {result.config_hash} does not match "
                        f"the expanded point's {point.config_hash}"
                    )
                    summary.errors.append(f"{point.name}: {message}")
                    store.record_failure(campaign_id, point, message, outcome.elapsed_s)
                    continue
                store.record_result(campaign_id, point, result, outcome.elapsed_s)
        summary.elapsed_s = time.perf_counter() - start
        counts = store.status_counts(campaign_id)
        summary.remaining = counts["total"] - counts["done"]
        return summary


__all__ = ["CampaignRunSummary", "run_campaign"]
