"""Resumable campaign execution over the sweep runner's chunked backend.

:func:`run_campaign` expands a :class:`~repro.campaign.spec.CampaignSpec`
into its grid, registers it in the :class:`~repro.campaign.store.CampaignStore`
and executes only the points whose config hash has no stored result yet.
Points run through :func:`repro.experiments.runner.iter_outcome_chunks` —
the same process-pool fan-out the figure sweeps use, but with per-point
error capture — and every chunk's outcomes are persisted in a **single
transaction** before the next chunk starts.  Killing a run therefore loses
at most one in-flight chunk (never part of one), and re-invoking it
completes exactly the missing points: the store ends up bit-for-bit
identical (modulo wall-clock fields) to an uninterrupted run.

Multi-worker drains
-------------------

Passing ``worker_id`` switches :func:`run_campaign` into **cooperative
worker mode**: instead of computing a pending list up-front, the worker
repeatedly claims small batches of points from the store under a lease
(:meth:`~repro.campaign.store.CampaignStore.claim_points`), executes them
in-process while heartbeating the lease, and commits each batch
atomically.  N such workers — separate invocations on separate terminals,
or the :func:`run_campaign_workers` convenience that forks them — drain
one grid together with no coordination beyond the store itself.  A worker
that crashes simply stops renewing its lease; its points become claimable
again once the lease expires, so the survivors finish the grid and the
final store is bit-identical to a serial run.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context
from typing import Any, Dict, List, Mapping, Optional, Union

from ..exceptions import ConfigurationError
from ..experiments.runner import (
    PointOutcome,
    execute_point_outcome,
    execute_scenario_batch,
    iter_outcome_chunks,
    plan_point_batches,
    suggest_chunk_size,
)
from ..obs import trace
from ..scenario.engine import ScenarioResult
from .spec import CampaignPoint, CampaignSpec
from .store import CampaignStore, PointRecord

_LOGGER = logging.getLogger(__name__)

#: How long a worker's claim on a batch of points lasts without renewal.
#: Leases are renewed after every point execution, so this only needs to
#: exceed the slowest single point by a margin.
DEFAULT_LEASE_SECONDS = 60.0

#: How long an idle worker sleeps before re-checking for claimable points
#: (it only waits while peers still hold live leases on pending points).
DEFAULT_POLL_SECONDS = 0.2


@dataclass
class CampaignRunSummary:
    """What one :func:`run_campaign` invocation did.

    Attributes:
        campaign_id: The campaign's stable identity in the store.
        name: The campaign name.
        store_path: Where the results store lives.
        total_points: Size of the expanded grid.
        completed_before: Points already ``done`` when this run started
            (the resume skip set).
        adopted: Points marked done because another campaign had already
            stored a result under the same config hash.
        executed: Points actually run by this invocation.
        failed: How many of the executed points errored (recorded, not
            raised).
        remaining: Points still not done when this run returned (a
            ``max_points`` bound, failures, or points other workers still
            hold).
        elapsed_s: Wall-clock time spent executing points.
        parallel: Whether the run fanned out over worker processes.
        workers: How many cooperating worker processes drained the grid
            (1 for plain and single-worker invocations).
        worker_id: This invocation's worker identity in the lease
            protocol, ``None`` outside worker mode.
    """

    campaign_id: str
    name: str
    store_path: str
    total_points: int
    completed_before: int = 0
    adopted: int = 0
    executed: int = 0
    failed: int = 0
    remaining: int = 0
    elapsed_s: float = 0.0
    parallel: bool = False
    workers: int = 1
    worker_id: Optional[str] = None
    errors: List[str] = field(default_factory=list)

    @property
    def points_per_second(self) -> float:
        """Throughput of this invocation's executed points."""
        if self.executed == 0 or self.elapsed_s <= 0:
            return 0.0
        return self.executed / self.elapsed_s

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready view (for ``run-campaign --json`` and tooling)."""
        return {
            "campaign_id": self.campaign_id,
            "name": self.name,
            "store_path": self.store_path,
            "total_points": self.total_points,
            "completed_before": self.completed_before,
            "adopted": self.adopted,
            "executed": self.executed,
            "failed": self.failed,
            "remaining": self.remaining,
            "elapsed_s": self.elapsed_s,
            "points_per_second": self.points_per_second,
            "parallel": self.parallel,
            "workers": self.workers,
            "worker_id": self.worker_id,
            "errors": list(self.errors),
        }


def _coerce_campaign(spec: Any) -> CampaignSpec:
    if isinstance(spec, CampaignSpec):
        return spec
    if isinstance(spec, Mapping):
        return CampaignSpec.from_dict(spec)
    raise ConfigurationError(
        f"expected a CampaignSpec or a campaign spec mapping, got "
        f"{type(spec).__qualname__}"
    )


def _outcome_record(
    point: CampaignPoint,
    outcome: PointOutcome,
    phases: Optional[Dict[str, float]] = None,
) -> PointRecord:
    """Turn one executed outcome into its persistable record.

    Besides passing failures through, this guards the store's resume
    bookkeeping: a result whose config hash disagrees with the expanded
    point's would silently corrupt the idempotency key, so it is recorded
    as a failure instead.
    """
    if not outcome.ok:
        return PointRecord(
            point=point,
            error=outcome.error,
            elapsed_s=outcome.elapsed_s,
            phases=phases,
        )
    result = outcome.value
    if not isinstance(result, ScenarioResult):
        result = ScenarioResult.from_dict(result)
    if result.config_hash != point.config_hash:
        message = (
            f"result config hash {result.config_hash} does not match "
            f"the expanded point's {point.config_hash}"
        )
        return PointRecord(point=point, error=message, elapsed_s=outcome.elapsed_s)
    return PointRecord(
        point=point, result=result, elapsed_s=outcome.elapsed_s, phases=phases
    )


def _profiled_outcome(
    sweep_point: Any, cache_dir: Optional[Union[str, os.PathLike]]
) -> tuple:
    """Execute one point under a fresh phase collector.

    Returns ``(outcome, phases)`` where *phases* is the exclusive
    build/calibrate/solve/allocate/overhead attribution of the point's
    own wall-clock time.
    """
    collector = trace.PhaseCollector()
    with trace.collect(collector):
        outcome = execute_point_outcome(sweep_point, cache_dir)
    return outcome, collector.phases(outcome.elapsed_s)


def _shared_phases(
    collector: trace.PhaseCollector, elapsed_s: float, count: int
) -> Dict[str, float]:
    """A batch group's phase totals split evenly across its points.

    Mirrors the group's ``elapsed_s``-share semantics: each point carries
    ``1/count`` of every phase, so per-point rows still sum to the group.
    """
    share = max(1, count)
    return {
        phase: seconds / share
        for phase, seconds in collector.phases(elapsed_s).items()
    }


def _tally(summary: CampaignRunSummary, record: PointRecord) -> None:
    """Fold one record into the invocation summary."""
    summary.executed += 1
    if record.error is not None:
        summary.failed += 1
        summary.errors.append(
            f"{record.point.name}: {record.error.strip().splitlines()[-1]}"
        )
        _LOGGER.warning(
            "campaign point %r failed:\n%s", record.point.name, record.error
        )


def _drain_as_worker(
    store: CampaignStore,
    campaign_id: str,
    by_hash: Dict[str, CampaignPoint],
    summary: CampaignRunSummary,
    worker_id: str,
    lease_seconds: float,
    chunk_size: int,
    max_points: Optional[int],
    sweep_cache_dir: Optional[Union[str, os.PathLike]],
    poll_seconds: float,
    batch: bool = False,
    profile: bool = False,
) -> None:
    """The cooperative drain loop of one lease-holding worker.

    Claim a batch → execute it in-process (renewing the lease after every
    point) → commit the batch in one transaction → repeat.  When nothing
    is claimable but pending points remain, they are leased to peers: the
    worker polls until they complete, error out, or their leases expire
    (the crash-recovery path, where this worker reclaims them).

    With *batch* set, each claim's points are additionally grouped by
    :func:`~repro.experiments.runner.plan_point_batches` and every group
    runs as one batched evaluation; the lease heartbeat moves to group
    boundaries, and the claim still commits atomically as before.
    """
    while True:
        budget = None if max_points is None else max_points - summary.executed
        if budget is not None and budget <= 0:
            break
        limit = chunk_size if budget is None else min(chunk_size, budget)
        claimed = store.claim_points(campaign_id, worker_id, limit, lease_seconds)
        if not claimed:
            if store.status_counts(campaign_id)["pending"] == 0:
                break
            # Pending points exist but are leased to live peers.  Wait for
            # them: they will finish, fail, or stop renewing (crash), and
            # in every case this loop makes progress next iteration.
            time.sleep(poll_seconds)
            continue
        records: List[PointRecord] = []
        try:
            if batch:
                points = [by_hash[config_hash] for config_hash in claimed]
                sweep_points = [point.spec.sweep_point() for point in points]
                for group in plan_point_batches(sweep_points):
                    group_points = [sweep_points[index] for index in group]
                    if profile:
                        collector = trace.PhaseCollector()
                        group_start = time.perf_counter()
                        with trace.collect(collector):
                            outcomes = execute_scenario_batch(
                                group_points, sweep_cache_dir
                            )
                        phases = _shared_phases(
                            collector,
                            time.perf_counter() - group_start,
                            len(group),
                        )
                    else:
                        outcomes = execute_scenario_batch(
                            group_points, sweep_cache_dir
                        )
                        phases = None
                    for index, outcome in zip(group, outcomes, strict=True):
                        records.append(
                            _outcome_record(points[index], outcome, phases=phases)
                        )
                    # Heartbeat between groups: the lease only expires if
                    # this worker actually stops making progress.
                    store.renew_leases(campaign_id, worker_id, lease_seconds)
            else:
                for config_hash in claimed:
                    point = by_hash[config_hash]
                    if profile:
                        outcome, phases = _profiled_outcome(
                            point.spec.sweep_point(), sweep_cache_dir
                        )
                    else:
                        outcome = execute_point_outcome(
                            point.spec.sweep_point(), sweep_cache_dir
                        )
                        phases = None
                    records.append(_outcome_record(point, outcome, phases=phases))
                    # Heartbeat between points: the lease only expires if
                    # this worker actually stops making progress.
                    store.renew_leases(campaign_id, worker_id, lease_seconds)
            for record in records:
                _tally(summary, record)
            store.record_chunk(campaign_id, records)
        except BaseException:
            # Interrupted mid-batch: nothing of this batch was persisted
            # (record_chunk is atomic), so hand the leases straight back
            # instead of making peers wait out the expiry.
            store.release_leases(campaign_id, worker_id)
            raise


def run_campaign(
    spec: Any,
    store_path: Union[str, os.PathLike],
    parallel: bool = False,
    processes: Optional[int] = None,
    chunk_size: Optional[int] = None,
    max_points: Optional[int] = None,
    sweep_cache_dir: Optional[Union[str, os.PathLike]] = None,
    worker_id: Optional[str] = None,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    poll_seconds: float = DEFAULT_POLL_SECONDS,
    reset_errors: bool = True,
    batch: bool = False,
    profile: bool = False,
) -> CampaignRunSummary:
    """Execute (or resume) a campaign against a results store.

    Args:
        spec: A :class:`CampaignSpec` or its dict form.
        store_path: The SQLite store file (created if missing).
        parallel: Fan points out over a ``fork`` process pool (plain mode
            only — workers execute their claims in-process).
        processes: Pool size (default: CPU count, bounded by the grid).
        chunk_size: Points persisted per batch; the durability (and, in
            worker mode, lease) granularity.  Each batch commits in one
            transaction.  Defaults to one per point serially and in
            worker mode (durability first; :func:`run_campaign_workers`
            passes a claim-spreading size computed by
            :func:`~repro.experiments.runner.suggest_chunk_size`), and to
            the pool size in parallel.
        max_points: Execute at most this many new points, then return with
            ``remaining > 0`` — a bounded slice of a long campaign (and the
            deterministic stand-in for a killed run in tests).
        worker_id: Join the campaign as one cooperative worker under this
            identity: claim points under a lease instead of executing a
            precomputed pending list, so N invocations with distinct
            worker ids drain one grid together (see
            :func:`run_campaign_workers` for the fork-them-all wrapper).
        lease_seconds: Worker mode: how long a claim lasts without renewal
            (renewed after every point).
        poll_seconds: Worker mode: idle re-check interval while peers hold
            the remaining pending points.
        reset_errors: Worker mode: flip unleased ``error`` points back to
            ``pending`` at startup so previous invocations' failures are
            retried.  :func:`run_campaign_workers` performs this reset
            once before forking and passes ``False`` here — otherwise a
            late-starting worker could flip a point a fast peer *just*
            failed back to pending and retry it within the same fleet
            invocation.
        batch: Group pending points by their
            :func:`~repro.experiments.runner.batch_signature` and evaluate
            each group as one batched problem (bit-identical results; see
            :func:`~repro.experiments.runner.execute_scenario_batch`).
            Each group commits as one atomic chunk.  Mutually exclusive
            with ``parallel``; composes with worker mode (each claim is
            grouped internally).
        profile: Collect a per-point phase-timing breakdown
            (build/calibrate/solve/allocate/overhead) and persist it on
            the point rows (``phases_json``) for ``campaign-report
            --timings``.  In-process execution only — mutually exclusive
            with ``parallel``.  Batched groups split their phase totals
            evenly across the group's points, mirroring the ``elapsed_s``
            share.

    Returns:
        A :class:`CampaignRunSummary`.  Point failures are recorded in the
        store (status ``error``) and counted, never raised; re-invoking the
        campaign retries them.
    """
    if worker_id is not None and parallel:
        raise ConfigurationError(
            "worker mode executes its claims in-process; drop parallel=True "
            "and start more workers instead"
        )
    if batch and parallel:
        raise ConfigurationError(
            "batch mode evaluates grouped points in-process; drop "
            "parallel=True (combine batch with workers to use more cores)"
        )
    if profile and parallel:
        raise ConfigurationError(
            "profiling instruments in-process execution; drop parallel=True "
            "(combine profile with workers or batch mode instead)"
        )
    if max_points is not None and max_points < 0:
        raise ConfigurationError(f"max_points must be >= 0, got {max_points}")
    if lease_seconds <= 0:
        # A non-positive lease is born expired: every peer would claim the
        # same points and the protocol degrades to duplicate work.
        raise ConfigurationError(f"lease_seconds must be > 0, got {lease_seconds}")
    campaign = _coerce_campaign(spec)
    points = campaign.expand()
    with CampaignStore(store_path, read_only=False) as store:
        campaign_id = store.register_campaign(campaign, points)
        adopted = store.adopt_existing_results(campaign_id)
        if worker_id is not None and reset_errors:
            # Retry earlier invocations' failures, exactly like the serial
            # resume path re-executes error points.
            store.reset_error_points(campaign_id)
        statuses = store.point_statuses(campaign_id)
        pending: List[CampaignPoint] = [
            point for point in points if statuses.get(point.config_hash) != "done"
        ]
        summary = CampaignRunSummary(
            campaign_id=campaign_id,
            name=campaign.name,
            store_path=str(store.path),
            total_points=len(points),
            completed_before=len(points) - len(pending),
            adopted=adopted,
            parallel=parallel,
            worker_id=worker_id,
        )
        if worker_id is not None:
            by_hash = {point.config_hash: point for point in points}
            size = chunk_size if chunk_size is not None else 1
            if size < 1:
                raise ConfigurationError(f"chunk_size must be >= 1, got {size}")
            start = time.perf_counter()
            _drain_as_worker(
                store,
                campaign_id,
                by_hash,
                summary,
                worker_id=worker_id,
                lease_seconds=lease_seconds,
                chunk_size=size,
                max_points=max_points,
                sweep_cache_dir=sweep_cache_dir,
                poll_seconds=poll_seconds,
                batch=batch,
                profile=profile,
            )
            summary.elapsed_s = time.perf_counter() - start
            counts = store.status_counts(campaign_id)
            summary.remaining = counts["total"] - counts["done"]
            return summary
        if max_points is not None:
            pending = pending[:max_points]
        if not pending:
            # Nothing to execute this invocation — but a max_points bound
            # (or prior failures) may still leave points outstanding.
            counts = store.status_counts(campaign_id)
            summary.remaining = counts["total"] - counts["done"]
            return summary

        by_hash = {point.config_hash: point for point in pending}
        sweep_points = [point.spec.sweep_point() for point in pending]
        if batch:
            # Batched execution: one grouped evaluation — and one atomic
            # store transaction — per batch group.  A kill mid-group loses
            # at most that group; re-invoking completes exactly the missing
            # points, as in serial mode.
            start = time.perf_counter()
            for group in plan_point_batches(sweep_points):
                group_points = [sweep_points[index] for index in group]
                if profile:
                    collector = trace.PhaseCollector()
                    group_start = time.perf_counter()
                    with trace.collect(collector):
                        outcomes = execute_scenario_batch(
                            group_points, sweep_cache_dir
                        )
                    phases = _shared_phases(
                        collector, time.perf_counter() - group_start, len(group)
                    )
                else:
                    outcomes = execute_scenario_batch(group_points, sweep_cache_dir)
                    phases = None
                records = [
                    _outcome_record(pending[index], outcome, phases=phases)
                    for index, outcome in zip(group, outcomes, strict=True)
                ]
                for record in records:
                    _tally(summary, record)
                store.record_chunk(campaign_id, records)
            summary.elapsed_s = time.perf_counter() - start
            counts = store.status_counts(campaign_id)
            summary.remaining = counts["total"] - counts["done"]
            return summary
        start = time.perf_counter()
        if profile:
            # Per-point phase collection needs in-process execution (the
            # parallel combination is rejected above), so the profiled
            # serial path chunks explicitly instead of going through
            # iter_outcome_chunks.
            size = 1 if chunk_size is None else chunk_size
            if size < 1:
                raise ConfigurationError(f"chunk_size must be >= 1, got {size}")
            for chunk_start in range(0, len(pending), size):
                chunk_points = pending[chunk_start : chunk_start + size]
                records = []
                for point in chunk_points:
                    outcome, phases = _profiled_outcome(
                        point.spec.sweep_point(), sweep_cache_dir
                    )
                    records.append(_outcome_record(point, outcome, phases=phases))
                for record in records:
                    _tally(summary, record)
                store.record_chunk(campaign_id, records)
            summary.elapsed_s = time.perf_counter() - start
            counts = store.status_counts(campaign_id)
            summary.remaining = counts["total"] - counts["done"]
            return summary
        for chunk in iter_outcome_chunks(
            sweep_points,
            cache_dir=sweep_cache_dir,
            parallel=parallel,
            processes=processes,
            chunk_size=chunk_size,
        ):
            records = [
                _outcome_record(by_hash[outcome.point.config_hash()], outcome)
                for outcome in chunk
            ]
            for record in records:
                _tally(summary, record)
            # One transaction per chunk: a kill between rows never leaves
            # a partially persisted chunk behind.
            store.record_chunk(campaign_id, records)
        summary.elapsed_s = time.perf_counter() - start
        counts = store.status_counts(campaign_id)
        summary.remaining = counts["total"] - counts["done"]
        return summary


def _worker_process_entry(args: tuple) -> Dict[str, Any]:
    """Run one forked worker; module-level so the pool can dispatch it."""
    (
        spec_dict,
        store_path,
        worker_id,
        lease_seconds,
        chunk_size,
        max_points,
        sweep_cache_dir,
        poll_seconds,
        batch,
        profile,
    ) = args
    summary = run_campaign(
        spec_dict,
        store_path=store_path,
        chunk_size=chunk_size,
        max_points=max_points,
        sweep_cache_dir=sweep_cache_dir,
        worker_id=worker_id,
        lease_seconds=lease_seconds,
        poll_seconds=poll_seconds,
        batch=batch,
        profile=profile,
        # The fleet launcher already reset error points once, before any
        # worker started; resetting again here would race against peers
        # that have just re-failed a point.
        reset_errors=False,
    )
    return summary.to_dict()


def run_campaign_workers(
    spec: Any,
    store_path: Union[str, os.PathLike],
    workers: int,
    chunk_size: Optional[int] = None,
    max_points: Optional[int] = None,
    sweep_cache_dir: Optional[Union[str, os.PathLike]] = None,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    poll_seconds: float = DEFAULT_POLL_SECONDS,
    batch: bool = False,
    profile: bool = False,
) -> CampaignRunSummary:
    """Fork N cooperative workers that drain one campaign together.

    The campaign is registered once up-front (so no worker pays the
    expansion race), then *workers* processes each run
    :func:`run_campaign` in worker mode against the shared store.  The
    returned summary aggregates their work; ``elapsed_s`` is the
    wall-clock time of the whole drain, so ``points_per_second`` measures
    the fleet, not one worker.

    Without the ``fork`` start method (or with ``workers=1``) the workers
    run sequentially in-process — same lease protocol, no concurrency.

    Args:
        spec: A :class:`CampaignSpec` or its dict form.
        store_path: The shared SQLite store.
        workers: How many worker processes to fork.
        chunk_size: Lease/persistence batch size per claim (default: a
            claim-spreading size from the pending-point count).
        max_points: Global bound on newly executed points, split across
            the workers.
        sweep_cache_dir: Optional per-point pickle cache shared by all
            workers (safe: cache publishes are atomic).
        lease_seconds: Lease duration without renewal.
        poll_seconds: Idle re-check interval.
        batch: Each worker groups the points of every claim by their batch
            signature and evaluates each group as one batched problem (see
            :func:`run_campaign`).
        profile: Each worker records per-point phase timings into the
            store (see :func:`run_campaign`).

    Returns:
        The aggregated :class:`CampaignRunSummary` (``workers`` set).
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if lease_seconds <= 0:
        raise ConfigurationError(f"lease_seconds must be > 0, got {lease_seconds}")
    campaign = _coerce_campaign(spec)
    points = campaign.expand()
    # Register (and adopt shared results) before forking, with the store
    # closed again afterwards: SQLite connections must never cross a fork.
    # Error points are also reset exactly once, here, so the retry of
    # previous invocations' failures cannot race a late-starting worker
    # against a fast peer's fresh failure.
    with CampaignStore(store_path, read_only=False) as store:
        campaign_id = store.register_campaign(campaign, points)
        adopted = store.adopt_existing_results(campaign_id)
        store.reset_error_points(campaign_id)
        counts = store.status_counts(campaign_id)
    pending_count = counts["total"] - counts["done"]
    size = (
        chunk_size
        if chunk_size is not None
        else suggest_chunk_size(pending_count, workers=workers)
    )
    if size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {size}")
    # Split a global max_points bound into per-worker quotas.
    quotas: List[Optional[int]] = [max_points] * workers
    if max_points is not None:
        quotas = [
            max_points // workers + (1 if index < max_points % workers else 0)
            for index in range(workers)
        ]
    run_tag = os.getpid()
    worker_args = [
        (
            campaign.to_dict(),
            str(store_path),
            f"worker-{run_tag}-{index}",
            lease_seconds,
            size,
            quotas[index],
            str(sweep_cache_dir) if sweep_cache_dir is not None else None,
            poll_seconds,
            batch,
            profile,
        )
        for index in range(workers)
    ]
    start = time.perf_counter()
    if workers > 1 and "fork" in get_all_start_methods():
        context = get_context("fork")
        with context.Pool(processes=workers) as pool:
            worker_summaries = pool.map(_worker_process_entry, worker_args)
    else:
        worker_summaries = [_worker_process_entry(args) for args in worker_args]
    elapsed_s = time.perf_counter() - start

    summary = CampaignRunSummary(
        campaign_id=campaign_id,
        name=campaign.name,
        store_path=str(store_path),
        total_points=len(points),
        completed_before=counts["done"],
        adopted=adopted,
        executed=sum(entry["executed"] for entry in worker_summaries),
        failed=sum(entry["failed"] for entry in worker_summaries),
        elapsed_s=elapsed_s,
        workers=workers,
        errors=[error for entry in worker_summaries for error in entry["errors"]],
    )
    # A pure read: the fleet has exited, so a read-only WAL connection is
    # enough (and can never stall a late writer).
    with CampaignStore(store_path, read_only=True) as store:
        final = store.status_counts(campaign_id)
    summary.remaining = final["total"] - final["done"]
    return summary


__all__ = [
    "DEFAULT_LEASE_SECONDS",
    "DEFAULT_POLL_SECONDS",
    "CampaignRunSummary",
    "run_campaign",
    "run_campaign_workers",
]
