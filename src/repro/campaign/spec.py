"""Declarative campaign specifications: a base scenario plus sweep axes.

A :class:`CampaignSpec` is to a grid of experiments what a
:class:`~repro.scenario.spec.ScenarioSpec` is to one experiment: plain,
JSON-round-tripping data.  It holds a **base** scenario spec dict plus
**axes** — lists of topologies, traffic models, power models, routing
tables, scheme sets, event schedules, seeds and ``--set``-style parameter
ranges.  :meth:`CampaignSpec.expand` takes the cartesian product of the
axes, applies each combination to the base spec and yields one validated
:class:`CampaignPoint` per grid point, each carrying its axis coordinates
and the scenario's :meth:`~repro.scenario.spec.ScenarioSpec.config_hash` —
the idempotency key the results store and resume logic are built on.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from ..experiments.runner import apply_spec_setting
from ..scenario.spec import ScenarioSpec

#: Bump when the campaign spec schema or expansion semantics change in a
#: way that makes stored campaign ids incomparable.
CAMPAIGN_SCHEMA_VERSION = 1

#: Component axes that replace a whole spec section per grid point.
_SECTION_AXES = ("topology", "traffic", "power", "routing")

#: Every axis key a campaign spec may declare, in canonical expansion
#: order (the rightmost axis varies fastest, like :func:`itertools.product`).
AXIS_KEYS = _SECTION_AXES + ("schemes", "events", "seed", "set")


def _compact(value: Any) -> str:
    """A short deterministic rendering of an axis value for labels/names."""
    if isinstance(value, str):
        return value
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _component_label(entry: Any) -> str:
    """``name`` or ``name(param=value,...)`` for one component axis entry."""
    if isinstance(entry, str):
        return entry
    name = entry.get("name", "?")
    params = entry.get("params") or {}
    if not params:
        return str(name)
    inner = ",".join(f"{key}={_compact(value)}" for key, value in sorted(params.items()))
    return f"{name}({inner})"


def _scheme_set_label(entry: Sequence[Any]) -> str:
    """Joined scheme labels of one scheme-set axis entry."""
    labels = []
    for scheme in entry:
        if isinstance(scheme, str):
            labels.append(scheme)
        else:
            labels.append(str(scheme.get("label") or scheme.get("name", "?")))
    return "+".join(labels) if labels else "none"


def _event_schedule_label(entry: Sequence[Any]) -> str:
    """Joined event kinds of one event-schedule axis entry."""
    names = [
        event if isinstance(event, str) else str(event.get("name", "?"))
        for event in entry
    ]
    return "+".join(names) if names else "none"


def _require_list(axis: str, values: Any) -> List[Any]:
    if not isinstance(values, (list, tuple)) or not values:
        raise ConfigurationError(
            f"campaign axis {axis!r} must be a non-empty list, got {values!r}"
        )
    return list(values)


@dataclass(frozen=True)
class CampaignPoint:
    """One expanded grid point of a campaign.

    Attributes:
        index: Position in the expanded grid (axis order, rightmost axis
            fastest).
        name: Deterministic point name — the campaign name plus the axis
            coordinates — which is also the scenario's name (and therefore
            part of its config hash).
        axes: Axis coordinates as ``{axis: label}`` (``set`` axes are keyed
            by their ``SECTION.KEY`` target).
        spec: The fully applied, validated scenario spec.
        config_hash: The scenario's sweep-cache hash — the store's
            idempotency key.
    """

    index: int
    name: str
    axes: Dict[str, Any]
    spec: ScenarioSpec
    config_hash: str


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative grid of scenarios: base spec × axes.

    Attributes:
        name: Campaign name (also the prefix of every point name).
        base: The base scenario spec as a plain dict; each axis overrides
            one aspect of it per grid point.
        axes: Mapping of axis key to its values — see :data:`AXIS_KEYS`:
            ``topology``/``traffic``/``power``/``routing`` list component
            entries (bare name or ``{"name", "params"}``), ``schemes`` lists
            scheme *sets* (each a list), ``events`` lists event *schedules*
            (each a list, possibly empty), ``seed`` lists integers applied
            as the traffic workload's ``seed`` parameter and ``set`` maps
            ``SECTION.KEY`` targets to value lists (the ``--set`` axis).
    """

    name: str
    base: Dict[str, Any]
    axes: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError(
                f"campaign name must be a non-empty string, got {self.name!r}"
            )
        if not isinstance(self.base, Mapping):
            raise ConfigurationError(
                f"campaign base must be a scenario spec mapping, got {self.base!r}"
            )
        if not isinstance(self.axes, Mapping):
            raise ConfigurationError(
                f"campaign axes must be a mapping, got {self.axes!r}"
            )
        unknown = set(self.axes) - set(AXIS_KEYS)
        if unknown:
            raise ConfigurationError(
                f"unknown campaign axes {sorted(unknown)}; expected {list(AXIS_KEYS)}"
            )
        # Freeze plain-data copies so the spec cannot alias caller state.
        object.__setattr__(self, "base", copy.deepcopy(dict(self.base)))
        object.__setattr__(self, "axes", copy.deepcopy(dict(self.axes)))
        for axis in _SECTION_AXES + ("schemes", "events"):
            if axis in self.axes:
                _require_list(axis, self.axes[axis])
        if "seed" in self.axes:
            for seed in _require_list("seed", self.axes["seed"]):
                if not isinstance(seed, int) or isinstance(seed, bool):
                    raise ConfigurationError(
                        f"campaign seed axis values must be integers, got {seed!r}"
                    )
        if "set" in self.axes:
            ranges = self.axes["set"]
            if not isinstance(ranges, Mapping) or not ranges:
                raise ConfigurationError(
                    "campaign 'set' axis must be a non-empty mapping of "
                    f"SECTION.KEY targets to value lists, got {ranges!r}"
                )
            for target, values in ranges.items():
                if "." not in target:
                    raise ConfigurationError(
                        f"campaign 'set' target must look like SECTION.KEY, got {target!r}"
                    )
                _require_list(f"set.{target}", values)

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """The plain-dict (JSON-ready) form consumed by :meth:`from_dict`."""
        return {
            "name": self.name,
            "base": copy.deepcopy(self.base),
            "axes": copy.deepcopy(self.axes),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Rebuild a campaign spec from :meth:`to_dict` output (or JSON)."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(f"a campaign spec must be a mapping, got {data!r}")
        unknown = set(data) - {"name", "base", "axes"}
        if unknown:
            raise ConfigurationError(f"unknown campaign spec keys: {sorted(unknown)}")
        if "base" not in data:
            raise ConfigurationError("campaign spec is missing its 'base' scenario")
        # Pass values through raw: __post_init__ owns the type validation
        # (a dict() here would turn a non-mapping base into a raw
        # ValueError before the ConfigurationError guard could fire).
        return cls(
            name=str(data.get("name", "campaign")),
            base=data["base"],
            axes=data.get("axes", {}),
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        """Parse a JSON document into a campaign spec."""
        return cls.from_dict(json.loads(text))

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The campaign spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def campaign_id(self) -> str:
        """Stable identity of this campaign (schema-versioned spec hash)."""
        payload = json.dumps(
            {"campaign_schema": CAMPAIGN_SCHEMA_VERSION, "spec": self.to_dict()},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #
    def _axis_items(self) -> List[Tuple[str, List[Any]]]:
        """``(axis key, values)`` in canonical expansion order."""
        items: List[Tuple[str, List[Any]]] = []
        for axis in AXIS_KEYS:
            if axis not in self.axes:
                continue
            if axis == "set":
                for target in sorted(self.axes["set"]):
                    items.append((target, list(self.axes["set"][target])))
            else:
                items.append((axis, list(self.axes[axis])))
        return items

    def _apply(self, data: Dict[str, Any], axis: str, value: Any) -> Any:
        """Apply one axis value to a spec dict; returns the coordinate label."""
        if axis in _SECTION_AXES:
            data[axis] = copy.deepcopy(value)
            return _component_label(value)
        if axis == "schemes":
            if not isinstance(value, (list, tuple)):
                raise ConfigurationError(
                    f"each 'schemes' axis entry must be a list of schemes, got {value!r}"
                )
            data["schemes"] = copy.deepcopy(list(value))
            return _scheme_set_label(value)
        if axis == "events":
            if not isinstance(value, (list, tuple)):
                raise ConfigurationError(
                    f"each 'events' axis entry must be a list of events, got {value!r}"
                )
            data["events"] = copy.deepcopy(list(value))
            return _event_schedule_label(value)
        if axis == "seed":
            apply_spec_setting(data, "traffic.seed", value)
            return value
        # Remaining axes are SECTION.KEY parameter-range targets.
        apply_spec_setting(data, axis, copy.deepcopy(value))
        return value if isinstance(value, (int, float, bool, str)) else _compact(value)

    def grid_size(self) -> int:
        """Number of points :meth:`expand` will produce."""
        size = 1
        for _axis, values in self._axis_items():
            size *= len(values)
        return size

    def expand(self) -> List[CampaignPoint]:
        """The full grid: one validated :class:`CampaignPoint` per combination.

        Raises:
            ConfigurationError: If any expanded scenario is invalid, or two
                grid points collapse to the same config hash (the axes are
                redundant — resume bookkeeping would silently merge them).
        """
        axis_items = self._axis_items()
        names = [axis for axis, _values in axis_items]
        combos = itertools.product(*[values for _axis, values in axis_items])
        points: List[CampaignPoint] = []
        seen: Dict[str, str] = {}
        for index, combo in enumerate(combos):
            data = copy.deepcopy(self.base)
            coordinates: Dict[str, Any] = {}
            try:
                for axis, value in zip(names, combo, strict=True):
                    coordinates[axis] = self._apply(data, axis, value)
                point_name = self.name + "".join(
                    f"/{axis}={_compact(coordinates[axis])}" for axis in names
                )
                data["name"] = point_name
                spec = ScenarioSpec.from_dict(data).validate()
                if not spec.schemes:
                    raise ConfigurationError(
                        "the expanded scenario names no schemes; give the base "
                        "spec a 'schemes' list or add a 'schemes' axis"
                    )
            except ConfigurationError as error:
                raise ConfigurationError(
                    f"campaign {self.name!r}, point {index} "
                    f"({coordinates or 'no axes'}): {error}"
                ) from error
            # Redundancy check on the name-independent *normalised* spec
            # (bare names and {"name", "params"} forms compare equal): the
            # point name encodes the coordinates, so config hashes always
            # differ, but two points whose scenarios are otherwise
            # identical mean one axis overwrites (or repeats) another —
            # the grid would silently double-run and miscount points.
            identity = json.dumps(
                {
                    key: value
                    for key, value in spec.to_dict().items()
                    if key != "name"
                },
                sort_keys=True,
            )
            if identity in seen:
                raise ConfigurationError(
                    f"campaign {self.name!r}: points {seen[identity]!r} and "
                    f"{point_name!r} expand to identical scenarios — the axes "
                    "are redundant (e.g. a repeated axis entry, or a 'seed' "
                    "axis plus a 'set' range over traffic.seed); remove one"
                )
            seen[identity] = point_name
            config_hash = spec.config_hash()
            points.append(
                CampaignPoint(
                    index=index,
                    name=point_name,
                    axes=coordinates,
                    spec=spec,
                    config_hash=config_hash,
                )
            )
        if not points:
            raise ConfigurationError(f"campaign {self.name!r} expands to no points")
        return points


__all__ = [
    "AXIS_KEYS",
    "CAMPAIGN_SCHEMA_VERSION",
    "CampaignPoint",
    "CampaignSpec",
]
