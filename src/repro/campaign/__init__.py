"""Campaigns: declarative scenario grids with a persistent results store.

A **campaign** turns "run the paper's evaluation across many topologies ×
traffic models × schemes × event schedules × seeds" into one declarative
JSON document and one resumable command:

* :class:`~repro.campaign.spec.CampaignSpec` — a base
  :class:`~repro.scenario.spec.ScenarioSpec` plus axes; ``expand()`` yields
  the config-hashed grid of :class:`~repro.campaign.spec.CampaignPoint`.
* :class:`~repro.campaign.store.CampaignStore` — a SQLite store (campaigns,
  points, results, metrics) keyed by config hash, so completed points are
  never recomputed and a killed run loses at most one in-flight chunk.
  Multi-process safe: WAL + busy timeout, atomic chunk transactions,
  read-only connections and a lease protocol for cooperative workers.
* :func:`~repro.campaign.run.run_campaign` — executes the missing points
  through the sweep runner's error-isolating chunked process-pool backend
  (or, with ``worker_id``, joins a shared drain as one lease-holding
  worker); :func:`~repro.campaign.run.run_campaign_workers` forks N such
  workers that drain one grid together with crash recovery.
* :mod:`~repro.campaign.report` — filter/aggregate stored rows, per-scheme
  summary tables, scheme dominance and deviation-from-best over the grid
  (via :mod:`repro.analysis`), CSV/JSON export.

Command line::

    python -m repro.experiments run-campaign --spec campaign.json --store results.sqlite
    python -m repro.experiments run-campaign --spec campaign.json --store results.sqlite --workers 4
    python -m repro.experiments campaign-status --store results.sqlite
    python -m repro.experiments campaign-report --store results.sqlite --format csv
"""

from .report import (
    LOWER_IS_BETTER,
    deviation_from_best,
    filter_rows,
    format_table,
    parse_filters,
    rows_to_csv,
    rows_to_json,
    scheme_dominance,
    summarise,
)
from .run import (
    DEFAULT_LEASE_SECONDS,
    CampaignRunSummary,
    run_campaign,
    run_campaign_workers,
)
from .spec import AXIS_KEYS, CAMPAIGN_SCHEMA_VERSION, CampaignPoint, CampaignSpec
from .store import (
    STORE_SCHEMA_VERSION,
    CampaignStore,
    PointRecord,
    canonical_result_dict,
)

__all__ = [
    "AXIS_KEYS",
    "CAMPAIGN_SCHEMA_VERSION",
    "DEFAULT_LEASE_SECONDS",
    "LOWER_IS_BETTER",
    "STORE_SCHEMA_VERSION",
    "CampaignPoint",
    "CampaignRunSummary",
    "CampaignSpec",
    "CampaignStore",
    "PointRecord",
    "canonical_result_dict",
    "deviation_from_best",
    "filter_rows",
    "format_table",
    "parse_filters",
    "rows_to_csv",
    "rows_to_json",
    "run_campaign",
    "run_campaign_workers",
    "scheme_dominance",
    "summarise",
]
