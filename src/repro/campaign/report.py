"""Query, aggregate and export campaign results.

The report layer answers grid-level questions from the store without
re-running anything: *which scheme dominates on mean power across the whole
grid?  how far from the per-point best does each scheme stay?  what does
the topology axis do to savings?*  It works on the flat **metric rows** the
store derives from every result (one row per completed point × scheme,
carrying the point's axis coordinates plus scalar metrics) and reuses the
:mod:`repro.analysis` toolkit: per-group distributions come from
:func:`~repro.analysis.metrics.percentile_summary` and the cross-grid
winner distribution from
:func:`~repro.analysis.dominance.configuration_dominance` — the same
machinery the paper's Figure 2a uses for routing configurations, applied to
schemes across a campaign.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.dominance import DominanceResult, configuration_dominance
from ..analysis.metrics import percentile_summary
from ..exceptions import ConfigurationError

#: Metrics where smaller values win (used by dominance/deviation defaults).
LOWER_IS_BETTER = {
    "mean_power_percent": True,
    "mean_savings_percent": False,
    "recomputations": True,
    "peak_utilisation": True,
    "violation_intervals": True,
    "mean_compute_s": True,
    "total_compute_s": True,
}


def parse_filters(expressions: Sequence[str]) -> Dict[str, str]:
    """``["scheme=response", "seed=0"]`` → ``{"scheme": "response", "seed": "0"}``."""
    filters: Dict[str, str] = {}
    for expression in expressions:
        key, separator, value = expression.partition("=")
        if not separator or not key:
            raise ConfigurationError(
                f"filters look like KEY=VALUE (an axis, 'scheme' or 'point'), "
                f"got {expression!r}"
            )
        filters[key] = value
    return filters


def filter_rows(
    rows: Sequence[Mapping[str, Any]], filters: Optional[Mapping[str, str]] = None
) -> List[Dict[str, Any]]:
    """Rows whose columns match every filter (string-compared).

    Raises:
        ConfigurationError: If a filter names a column no row has.
    """
    if not filters:
        return [dict(row) for row in rows]
    known = set()
    for row in rows:
        known.update(row)
    unknown = [key for key in filters if key not in known]
    if unknown and rows:
        raise ConfigurationError(
            f"unknown filter column(s) {unknown}; rows have: {sorted(known)}"
        )
    kept = []
    for row in rows:
        if all(str(row.get(key)) == value for key, value in filters.items()):
            kept.append(dict(row))
    return kept


def _group_key(row: Mapping[str, Any], group_by: Sequence[str]) -> Tuple[str, ...]:
    return tuple(str(row.get(column)) for column in group_by)


def summarise(
    rows: Sequence[Mapping[str, Any]],
    metric: str = "mean_power_percent",
    group_by: Sequence[str] = ("scheme",),
) -> List[Dict[str, Any]]:
    """Aggregate one metric over row groups.

    Returns one record per group (in first-seen order): the group columns,
    ``count`` and the min/median/mean/p95/max distribution of the metric
    (:func:`~repro.analysis.metrics.percentile_summary`).  Rows missing the
    metric (schemes that do not track it) are skipped.
    """
    groups: Dict[Tuple[str, ...], List[float]] = {}
    for row in rows:
        if metric not in row:
            continue
        groups.setdefault(_group_key(row, group_by), []).append(float(row[metric]))
    records = []
    for key, values in groups.items():
        record: Dict[str, Any] = dict(zip(group_by, key, strict=True))
        record["metric"] = metric
        record["count"] = len(values)
        record.update(percentile_summary(values))
        records.append(record)
    return records


def scheme_dominance(
    rows: Sequence[Mapping[str, Any]],
    metric: str = "mean_power_percent",
    lower_is_better: Optional[bool] = None,
) -> Dict[str, Any]:
    """Which scheme wins each grid point, and how dominant the winner is.

    Every completed point contributes one winner (the scheme with the best
    metric value at that point); the winner sequence feeds
    :func:`~repro.analysis.dominance.configuration_dominance`, exactly as
    the paper measures routing-configuration dwell time.  Returns the
    per-scheme win share plus the dominance distribution.
    """
    if lower_is_better is None:
        lower_is_better = LOWER_IS_BETTER.get(metric, True)
    by_point: Dict[str, List[Tuple[float, str]]] = {}
    for row in rows:
        if metric not in row:
            continue
        by_point.setdefault(str(row["config_hash"]), []).append(
            (float(row[metric]), str(row["scheme"]))
        )
    winners: List[str] = []
    for candidates in by_point.values():
        best = min(candidates) if lower_is_better else max(candidates)
        winners.append(best[1])
    dominance: DominanceResult = configuration_dominance(winners)
    shares: Dict[str, float] = {}
    if winners:
        for scheme in sorted(set(winners)):
            shares[scheme] = winners.count(scheme) / len(winners)
    dominant = max(shares, key=shares.get) if shares else None
    return {
        "metric": metric,
        "lower_is_better": lower_is_better,
        "points": len(winners),
        "winners": shares,
        "dominant_scheme": dominant,
        "dominant_fraction": dominance.dominant_fraction,
        "num_winning_schemes": dominance.num_configurations,
    }


def deviation_from_best(
    rows: Sequence[Mapping[str, Any]],
    metric: str = "mean_power_percent",
    lower_is_better: Optional[bool] = None,
) -> List[Dict[str, Any]]:
    """Per-scheme distribution of the gap to each point's best value.

    The campaign-level analogue of the paper's "REsPoNse stays within a few
    percent of the optimum": for every grid point, each scheme's deviation
    is its metric value minus the best value any scheme achieved at that
    point (sign-adjusted so 0 is optimal and larger is worse); deviations
    are then summarised per scheme with
    :func:`~repro.analysis.metrics.percentile_summary`.
    """
    if lower_is_better is None:
        lower_is_better = LOWER_IS_BETTER.get(metric, True)
    by_point: Dict[str, List[Mapping[str, Any]]] = {}
    for row in rows:
        if metric not in row:
            continue
        by_point.setdefault(str(row["config_hash"]), []).append(row)
    deviations: Dict[str, List[float]] = {}
    for candidates in by_point.values():
        values = [float(row[metric]) for row in candidates]
        best = min(values) if lower_is_better else max(values)
        for row in candidates:
            gap = float(row[metric]) - best
            if not lower_is_better:
                gap = -gap
            deviations.setdefault(str(row["scheme"]), []).append(gap)
    records = []
    for scheme in sorted(deviations):
        record: Dict[str, Any] = {"scheme": scheme, "metric": metric}
        record["count"] = len(deviations[scheme])
        record.update(percentile_summary(deviations[scheme]))
        records.append(record)
    return records


# --------------------------------------------------------------------- #
# Rendering and export
# --------------------------------------------------------------------- #
def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, Any]]) -> str:
    """Render records as a fixed-width text table (column order preserved)."""
    if not rows:
        return "(no rows)"
    columns: List[str] = []
    for row in rows:
        for column in row:
            if column not in columns:
                columns.append(column)
    table = [
        columns,
        *([_format_cell(row.get(column, "")) for column in columns] for row in rows),
    ]
    widths = [max(len(line[i]) for line in table) for i in range(len(columns))]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths, strict=True)).rstrip()
        for line in table
    ]
    lines.insert(1, "  ".join("-" * width for width in widths))
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Mapping[str, Any]]) -> str:
    """Records as a CSV document (union of columns, row order preserved)."""
    buffer = io.StringIO()
    columns: List[str] = []
    for row in rows:
        for column in row:
            if column not in columns:
                columns.append(column)
    writer = csv.DictWriter(buffer, fieldnames=columns)
    writer.writeheader()
    for row in rows:
        writer.writerow({column: row.get(column, "") for column in columns})
    return buffer.getvalue()


def rows_to_json(rows: Sequence[Mapping[str, Any]]) -> str:
    """Records as a JSON array document."""
    return json.dumps(list(rows), indent=2, sort_keys=True) + "\n"


__all__ = [
    "LOWER_IS_BETTER",
    "deviation_from_best",
    "filter_rows",
    "format_table",
    "parse_filters",
    "rows_to_csv",
    "rows_to_json",
    "scheme_dominance",
    "summarise",
]
