"""The persistent campaign results store (SQLite), safe for many processes.

Every campaign run records what it did into one SQLite file, so a grid of
hundreds of scenarios has a durable record — what ran, what failed, how
long each point took and every :class:`~repro.scenario.engine.ScenarioResult`
row — instead of a directory of anonymous pickles.  The schema:

* ``campaigns`` — one row per registered campaign (identity = the
  schema-versioned hash of its spec), holding the spec JSON.
* ``points`` — one row per expanded grid point and campaign, carrying the
  point's axis coordinates, scenario spec, status (``pending`` → ``done`` /
  ``error``), error traceback, timing and the point's current **lease**
  (worker id + expiry) while a worker is computing it.
* ``results`` — one row per **config hash**, holding the result JSON.  The
  config hash is the idempotency key: a point whose hash already has a
  result is complete by definition, which is what makes campaigns
  resumable (and lets separate campaigns share identical points).
* ``metrics`` — flattened per-scheme scalar metrics
  (:meth:`~repro.scenario.engine.ScenarioResult.headline_metrics`) per
  config hash, so the report layer aggregates without re-parsing JSON.

Concurrency model
-----------------

Many processes may hold the store open at once — N ``run-campaign``
workers draining one grid while ``campaign-status`` polls it.  Three
mechanisms make that safe:

* **WAL journal mode** plus a ``busy_timeout``: readers never block on the
  writer, and a second writer waits (bounded) instead of raising
  ``database is locked``.  Writable connections also retry ``BEGIN
  IMMEDIATE`` with exponential backoff as a belt-and-braces layer on top
  of the timeout.
* **Short, explicit transactions**: every mutation runs inside one
  ``BEGIN IMMEDIATE … COMMIT`` block (:meth:`CampaignStore.transaction`),
  and a whole chunk of outcomes persists in a *single* transaction
  (:meth:`CampaignStore.record_chunk`) — a killed writer can never leave
  a partially persisted chunk behind.
* **Leases**: workers claim pending points atomically
  (:meth:`CampaignStore.claim_points`), renew their leases while
  computing (:meth:`CampaignStore.renew_leases`) and implicitly release
  them when the chunk commits.  A worker that dies simply stops renewing;
  once its lease expires the points are claimable again, so a crashed
  worker's share of the grid is reclaimed by its peers.

Read-only consumers (``campaign-status``/``campaign-report``) should open
the store with ``read_only=True``: such a connection cannot take write
locks at all, so it can never contend with (or corrupt) a live run.
"""

from __future__ import annotations

import copy
import json
import os
import sqlite3
import time
from contextlib import contextmanager
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..exceptions import ConfigurationError
from ..obs import metrics
from ..scenario.engine import ScenarioResult
from .spec import CampaignPoint, CampaignSpec

#: Bump on incompatible schema changes (checked against ``PRAGMA user_version``).
#: Version 2 added the lease columns (``lease_owner``, ``lease_expires_at``)
#: to ``points``; version 3 added the optional ``phases_json`` profile
#: column.  Older stores are migrated in place on a writable open.
STORE_SCHEMA_VERSION = 3

#: How long a writable connection waits on a locked database before SQLite
#: itself gives up (seconds).  Generous by design: campaign transactions
#: are short, so waiting always beats failing.
DEFAULT_BUSY_TIMEOUT_S = 30.0

#: How often ``BEGIN IMMEDIATE`` is retried on top of the busy timeout.
_LOCK_RETRIES = 5
_LOCK_RETRY_INITIAL_DELAY_S = 0.05

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    campaign_id TEXT PRIMARY KEY,
    name        TEXT NOT NULL,
    spec_json   TEXT NOT NULL,
    num_points  INTEGER NOT NULL,
    created_at  TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS points (
    campaign_id      TEXT NOT NULL REFERENCES campaigns(campaign_id),
    config_hash      TEXT NOT NULL,
    point_index      INTEGER NOT NULL,
    name             TEXT NOT NULL,
    axes_json        TEXT NOT NULL,
    spec_json        TEXT NOT NULL,
    status           TEXT NOT NULL DEFAULT 'pending',
    error            TEXT,
    elapsed_s        REAL,
    completed_at     TEXT,
    lease_owner      TEXT,
    lease_expires_at REAL,
    phases_json      TEXT,
    PRIMARY KEY (campaign_id, config_hash)
);
CREATE TABLE IF NOT EXISTS results (
    config_hash TEXT PRIMARY KEY,
    result_json TEXT NOT NULL,
    created_at  TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS metrics (
    config_hash TEXT NOT NULL REFERENCES results(config_hash),
    scheme      TEXT NOT NULL,
    metric      TEXT NOT NULL,
    value       REAL,
    PRIMARY KEY (config_hash, scheme, metric)
);
CREATE INDEX IF NOT EXISTS idx_points_status ON points(campaign_id, status);
"""

#: Statements migrating a version-1 store (no lease columns) in place.
_MIGRATE_V1_TO_V2 = (
    "ALTER TABLE points ADD COLUMN lease_owner TEXT",
    "ALTER TABLE points ADD COLUMN lease_expires_at REAL",
)

#: Statements migrating a version-2 store (no profile column) in place.
_MIGRATE_V2_TO_V3 = (
    "ALTER TABLE points ADD COLUMN phases_json TEXT",
)

#: In-place migrations, keyed by the version they upgrade *from*.  Each
#: entry moves a store one version forward; a writable open chains them
#: until the store reaches :data:`STORE_SCHEMA_VERSION`.
_MIGRATIONS: Dict[int, Tuple[str, ...]] = {
    1: _MIGRATE_V1_TO_V2,
    2: _MIGRATE_V2_TO_V3,
}

_LEASE_CLAIMS = metrics.counter(
    "repro_campaign_lease_claims_total", "Points leased to workers"
)
_LEASE_TAKEOVERS = metrics.counter(
    "repro_campaign_lease_takeovers_total",
    "Points re-leased after their previous owner's lease expired",
)
_LEASE_RENEWALS = metrics.counter(
    "repro_campaign_lease_renewals_total", "Lease heartbeat renewals"
)
_LEASE_RELEASES = metrics.counter(
    "repro_campaign_lease_releases_total", "Leases dropped on clean shutdown"
)

#: Result/metric fields that carry wall-clock measurements.  They differ
#: between otherwise identical runs, so determinism-sensitive comparisons
#: (``canonical_dump``) strip them.
VOLATILE_RESULT_FIELDS = ("compute_seconds",)
VOLATILE_REACTION_KEYS = ("compute_seconds",)


def _now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _is_locked_error(error: sqlite3.OperationalError) -> bool:
    message = str(error).lower()
    return "locked" in message or "busy" in message


def canonical_result_dict(result: Mapping[str, Any]) -> Dict[str, Any]:
    """A result dict with every wall-clock field stripped.

    Two runs of the same grid produce bit-identical canonical dicts — the
    basis of the resume guarantee ("an interrupted-and-resumed store matches
    an uninterrupted serial run") — while raw stored rows keep their
    timings.
    """
    canonical = copy.deepcopy(dict(result))
    for field in VOLATILE_RESULT_FIELDS:
        canonical.pop(field, None)
    reaction = canonical.get("reaction")
    if isinstance(reaction, Mapping):
        canonical["reaction"] = {
            label: [
                {k: v for k, v in record.items() if k not in VOLATILE_REACTION_KEYS}
                for record in records
            ]
            for label, records in reaction.items()
        }
    return canonical


@dataclass(frozen=True)
class PointRecord:
    """One point's outcome, ready to persist.

    ``record_chunk`` takes a sequence of these and commits them in a single
    transaction.  Exactly one of *result*/*error* is set.

    Attributes:
        point: The executed campaign point.
        result: The scenario result on success, ``None`` on failure.
        error: The failure traceback, ``None`` on success.
        elapsed_s: Wall-clock execution time of the point.
        phases: Optional phase-timing breakdown (``--profile`` runs only),
            keyed by :data:`repro.obs.PHASE_NAMES`.
    """

    point: CampaignPoint
    result: Optional[ScenarioResult] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0
    phases: Optional[Dict[str, float]] = None

    @property
    def ok(self) -> bool:
        """Whether the point succeeded."""
        return self.error is None


class CampaignStore:
    """One SQLite results store, usable as a context manager.

    Args:
        path: The store file (created, with its parents, unless read-only).
        read_only: Open a connection that cannot take write locks — the
            right mode for status/report consumers running alongside a
            live campaign.  Requires the store to exist.
        busy_timeout_s: How long writes wait on a locked database before
            the in-process retry loop (and finally the caller) sees the
            error.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        read_only: bool = False,
        busy_timeout_s: float = DEFAULT_BUSY_TIMEOUT_S,
    ):
        self.path = Path(path)
        self.read_only = read_only
        self._busy_timeout_s = busy_timeout_s
        if read_only:
            if not self.path.exists():
                raise ConfigurationError(
                    f"campaign store {self.path} does not exist "
                    "(read-only connections never create one)"
                )
            try:
                self._connection = sqlite3.connect(
                    f"file:{self.path}?mode=ro", uri=True
                )
            except sqlite3.OperationalError as error:
                raise ConfigurationError(
                    f"cannot open campaign store {self.path} read-only ({error})"
                ) from error
        else:
            if self.path.parent and not self.path.parent.exists():
                self.path.parent.mkdir(parents=True, exist_ok=True)
            self._connection = sqlite3.connect(str(self.path))
        self._connection.row_factory = sqlite3.Row
        # Explicit transaction control: the connection stays in autocommit
        # mode and every mutation runs inside BEGIN IMMEDIATE ... COMMIT
        # (see :meth:`transaction`), keeping write transactions short and
        # their lock acquisition up-front.
        self._connection.isolation_level = None
        try:
            self._connection.execute(
                f"PRAGMA busy_timeout = {int(busy_timeout_s * 1000)}"
            )
            self._connection.execute("PRAGMA foreign_keys = ON")
            version = self._connection.execute("PRAGMA user_version").fetchone()[0]
        except sqlite3.DatabaseError as error:
            self._connection.close()
            raise ConfigurationError(
                f"{self.path} is not a SQLite campaign store ({error})"
            ) from error
        if not read_only:
            # WAL journalling is what lets readers run beside the writer
            # (and writers queue instead of erroring).  NORMAL synchronous
            # is the standard WAL pairing: commits are durable against
            # process crashes, and an OS crash can only lose whole
            # transactions, never corrupt the store.
            self._connection.execute("PRAGMA journal_mode = WAL")
            self._connection.execute("PRAGMA synchronous = NORMAL")
        if version == 0:
            if read_only:
                self._connection.close()
                raise ConfigurationError(
                    f"campaign store {self.path} is empty (no schema); "
                    "run a campaign against it first"
                )
            # executescript() commits any pending transaction first, so the
            # schema runs in autocommit mode instead of self.transaction().
            # That is safe to race: every statement is IF NOT EXISTS, and a
            # crash mid-schema leaves user_version at 0, so the next open
            # simply finishes the job.
            self._connection.executescript(_SCHEMA)
            self._connection.execute(
                f"PRAGMA user_version = {STORE_SCHEMA_VERSION}"
            )
        elif version in _MIGRATIONS and not read_only:
            # In-place migration: every step only adds nullable columns, so
            # stored rows survive and older stores stay resumable by this
            # code.  The version is re-read after the write lock is held:
            # two processes opening an old store concurrently both pass the
            # check above, and the one that loses the lock race must not
            # repeat the ALTERs.
            try:
                with self.transaction():
                    current = self._connection.execute(
                        "PRAGMA user_version"
                    ).fetchone()[0]
                    while current in _MIGRATIONS:
                        for statement in _MIGRATIONS[current]:
                            self._connection.execute(statement)
                        current += 1
                        self._connection.execute(
                            f"PRAGMA user_version = {current}"
                        )
            except BaseException:
                self._connection.close()
                raise
        elif version in _MIGRATIONS and read_only:
            # An old store is readable as-is: the query layer tolerates the
            # missing columns.  Migration happens on the next writable open.
            pass
        elif version != STORE_SCHEMA_VERSION:
            self._connection.close()
            raise ConfigurationError(
                f"campaign store {self.path} has schema version {version}, "
                f"this code expects {STORE_SCHEMA_VERSION}"
            )

    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Transactions
    # ------------------------------------------------------------------ #
    @contextmanager
    def transaction(self) -> Iterator[sqlite3.Connection]:
        """One short write transaction: ``BEGIN IMMEDIATE`` … ``COMMIT``.

        The write lock is taken up-front (so concurrent writers queue on
        the busy timeout instead of deadlocking on a lock upgrade) and
        ``BEGIN`` itself is retried with backoff when the database stays
        locked past the timeout.  *Any* exception — including
        ``KeyboardInterrupt`` — rolls the whole transaction back: partial
        writes can never become visible.

        Raises:
            ConfigurationError: When the store was opened read-only.
        """
        if self.read_only:
            raise ConfigurationError(
                f"campaign store {self.path} is open read-only; writes need a "
                "writable CampaignStore"
            )
        delay = _LOCK_RETRY_INITIAL_DELAY_S
        for attempt in range(_LOCK_RETRIES):
            try:
                self._connection.execute("BEGIN IMMEDIATE")
                break
            except sqlite3.OperationalError as error:
                if not _is_locked_error(error) or attempt == _LOCK_RETRIES - 1:
                    raise
                time.sleep(delay)
                delay = min(delay * 2, 1.0)
        try:
            yield self._connection
        except BaseException:
            self._connection.execute("ROLLBACK")
            raise
        self._connection.execute("COMMIT")

    # ------------------------------------------------------------------ #
    # Registration and status
    # ------------------------------------------------------------------ #
    def register_campaign(
        self, spec: CampaignSpec, points: Sequence[CampaignPoint]
    ) -> str:
        """Idempotently record a campaign and its expanded points.

        Re-registering the same campaign (same spec, hence same id) leaves
        existing point statuses untouched — that is what makes re-invoking
        ``run-campaign`` a resume rather than a restart, and lets N workers
        register concurrently without stepping on each other.
        """
        campaign_id = spec.campaign_id()
        with self.transaction() as connection:
            connection.execute(
                "INSERT OR IGNORE INTO campaigns "
                "(campaign_id, name, spec_json, num_points, created_at) "
                "VALUES (?, ?, ?, ?, ?)",
                (
                    campaign_id,
                    spec.name,
                    json.dumps(spec.to_dict(), sort_keys=True),
                    len(points),
                    _now(),
                ),
            )
            connection.executemany(
                "INSERT OR IGNORE INTO points "
                "(campaign_id, config_hash, point_index, name, axes_json, spec_json) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                [
                    (
                        campaign_id,
                        point.config_hash,
                        point.index,
                        point.name,
                        json.dumps(point.axes, sort_keys=True),
                        json.dumps(point.spec.to_dict(), sort_keys=True),
                    )
                    for point in points
                ],
            )
        return campaign_id

    def adopt_existing_results(self, campaign_id: str) -> int:
        """Mark pending points complete when their result row already exists.

        The config hash is the idempotency key across the whole store, so a
        point another campaign (or an interrupted run) already computed is
        done — no execution needed.  Returns how many points were adopted.
        """
        with self.transaction() as connection:
            cursor = connection.execute(
                "UPDATE points SET status = 'done', error = NULL, "
                "completed_at = ?, lease_owner = NULL, lease_expires_at = NULL "
                "WHERE campaign_id = ? AND status != 'done' "
                "AND config_hash IN (SELECT config_hash FROM results)",
                (_now(), campaign_id),
            )
            return cursor.rowcount

    def reset_error_points(
        self, campaign_id: str, now: Optional[float] = None
    ) -> int:
        """Flip unleased ``error`` points back to ``pending`` for a retry.

        Worker-mode invocations call this once at startup so failures from
        *previous* invocations are retried, exactly like the serial resume
        path re-executes them.  Points under a live lease are left alone —
        their owner is still working on them.  Returns how many points were
        reset.
        """
        now = time.time() if now is None else now
        with self.transaction() as connection:
            cursor = connection.execute(
                "UPDATE points SET status = 'pending', error = NULL "
                "WHERE campaign_id = ? AND status = 'error' "
                "AND (lease_owner IS NULL OR lease_expires_at IS NULL "
                "     OR lease_expires_at <= ?)",
                (campaign_id, now),
            )
            return cursor.rowcount

    def point_statuses(self, campaign_id: str) -> Dict[str, str]:
        """``config_hash -> status`` for every point of a campaign."""
        rows = self._connection.execute(
            "SELECT config_hash, status FROM points WHERE campaign_id = ?",
            (campaign_id,),
        )
        return {row["config_hash"]: row["status"] for row in rows}

    def status_counts(self, campaign_id: str) -> Dict[str, int]:
        """``{'total', 'done', 'error', 'pending'}`` counts for a campaign."""
        rows = self._connection.execute(
            "SELECT status, COUNT(*) AS n FROM points "
            "WHERE campaign_id = ? GROUP BY status",
            (campaign_id,),
        )
        counts = {"done": 0, "error": 0, "pending": 0}
        for row in rows:
            counts[row["status"]] = row["n"]
        counts["total"] = sum(counts.values())
        return counts

    # ------------------------------------------------------------------ #
    # Leases
    # ------------------------------------------------------------------ #
    def claim_points(
        self,
        campaign_id: str,
        worker_id: str,
        limit: int,
        lease_seconds: float,
        now: Optional[float] = None,
    ) -> List[str]:
        """Atomically lease up to *limit* pending points to *worker_id*.

        A point is claimable when its status is ``pending`` and it carries
        no live lease — never leased, explicitly released, or leased by a
        worker whose lease has expired (the crash-recovery path: a dead
        worker stops renewing, so its points become claimable again).
        Selection follows grid order, and the SELECT + UPDATE pair runs
        inside one ``BEGIN IMMEDIATE`` transaction, so two workers can
        never claim the same point.

        Args:
            campaign_id: The campaign to claim from.
            worker_id: The claiming worker's identity.
            limit: Maximum number of points to claim.
            lease_seconds: How long the lease lasts without renewal.
            now: Injectable clock (seconds, ``time.time`` scale) for tests.

        Returns:
            The claimed points' config hashes, in grid order (empty when
            nothing is claimable).
        """
        if limit < 1:
            return []
        now = time.time() if now is None else now
        with self.transaction() as connection:
            rows = connection.execute(
                "SELECT config_hash, lease_owner FROM points "
                "WHERE campaign_id = ? AND status = 'pending' "
                "AND (lease_owner IS NULL OR lease_expires_at IS NULL "
                "     OR lease_expires_at <= ?) "
                "ORDER BY point_index LIMIT ?",
                (campaign_id, now, limit),
            ).fetchall()
            hashes = [row["config_hash"] for row in rows]
            takeovers = sum(
                1
                for row in rows
                if row["lease_owner"] is not None and row["lease_owner"] != worker_id
            )
            connection.executemany(
                "UPDATE points SET lease_owner = ?, lease_expires_at = ? "
                "WHERE campaign_id = ? AND config_hash = ?",
                [
                    (worker_id, now + lease_seconds, campaign_id, config_hash)
                    for config_hash in hashes
                ],
            )
        if hashes:
            _LEASE_CLAIMS.inc(len(hashes))
        if takeovers:
            _LEASE_TAKEOVERS.inc(takeovers)
        return hashes

    def renew_leases(
        self,
        campaign_id: str,
        worker_id: str,
        lease_seconds: float,
        now: Optional[float] = None,
    ) -> int:
        """Heartbeat: extend every lease *worker_id* still holds.

        Workers call this between point executions, so a lease only
        expires when its owner actually stopped making progress.  Returns
        how many leases were renewed.
        """
        now = time.time() if now is None else now
        with self.transaction() as connection:
            cursor = connection.execute(
                "UPDATE points SET lease_expires_at = ? "
                "WHERE campaign_id = ? AND lease_owner = ? AND status = 'pending'",
                (now + lease_seconds, campaign_id, worker_id),
            )
            renewed = cursor.rowcount
        if renewed:
            _LEASE_RENEWALS.inc(renewed)
        return renewed

    def release_leases(self, campaign_id: str, worker_id: str) -> int:
        """Drop every lease *worker_id* holds (clean shutdown / interrupt).

        The points stay ``pending`` and become immediately claimable by
        other workers — no need to wait out the expiry.  Returns how many
        leases were released.
        """
        with self.transaction() as connection:
            cursor = connection.execute(
                "UPDATE points SET lease_owner = NULL, lease_expires_at = NULL "
                "WHERE campaign_id = ? AND lease_owner = ?",
                (campaign_id, worker_id),
            )
            released = cursor.rowcount
        if released:
            _LEASE_RELEASES.inc(released)
        return released

    def active_leases(
        self, campaign_id: str, now: Optional[float] = None
    ) -> List[Dict[str, Any]]:
        """Live leases per worker.

        One row per worker holding unexpired leases on pending points:
        ``worker_id`` (and the legacy alias ``worker``), how many
        ``points`` it holds, the earliest absolute ``expires_at``
        (``time.time`` scale) and the derived ``expires_in_s`` countdown.
        This single method backs both the ``campaign-status --json``
        output and the service's status endpoint, so every consumer sees
        the same lease view.
        """
        now = time.time() if now is None else now
        try:
            rows = self._connection.execute(
                "SELECT lease_owner AS worker, COUNT(*) AS points, "
                "MIN(lease_expires_at) AS earliest_expiry "
                "FROM points WHERE campaign_id = ? AND status = 'pending' "
                "AND lease_owner IS NOT NULL AND lease_expires_at > ? "
                "GROUP BY lease_owner ORDER BY lease_owner",
                (campaign_id, now),
            ).fetchall()
        except sqlite3.OperationalError:
            # A read-only view of an unmigrated v1 store has no lease
            # columns — and therefore no leases to report.
            return []
        return [
            {
                "worker": row["worker"],
                "worker_id": row["worker"],
                "points": row["points"],
                "expires_at": row["earliest_expiry"],
                "expires_in_s": max(0.0, row["earliest_expiry"] - now),
            }
            for row in rows
        ]

    # ------------------------------------------------------------------ #
    # Recording outcomes
    # ------------------------------------------------------------------ #
    def _persist_record(
        self, connection: sqlite3.Connection, campaign_id: str, record: PointRecord
    ) -> None:
        """Write one outcome's rows (no transaction management here)."""
        point = record.point
        phases_json = (
            json.dumps(record.phases, sort_keys=True)
            if record.phases is not None
            else None
        )
        if record.error is not None:
            connection.execute(
                "UPDATE points SET status = 'error', error = ?, elapsed_s = ?, "
                "completed_at = ?, lease_owner = NULL, lease_expires_at = NULL, "
                "phases_json = ? "
                "WHERE campaign_id = ? AND config_hash = ?",
                (
                    record.error,
                    record.elapsed_s,
                    _now(),
                    phases_json,
                    campaign_id,
                    point.config_hash,
                ),
            )
            return
        result_dict = record.result.to_dict()
        connection.execute(
            "INSERT OR REPLACE INTO results (config_hash, result_json, created_at) "
            "VALUES (?, ?, ?)",
            (point.config_hash, json.dumps(result_dict, sort_keys=True), _now()),
        )
        connection.execute(
            "DELETE FROM metrics WHERE config_hash = ?", (point.config_hash,)
        )
        connection.executemany(
            "INSERT INTO metrics (config_hash, scheme, metric, value) "
            "VALUES (?, ?, ?, ?)",
            [
                (point.config_hash, scheme, metric, float(value))
                for scheme, entry in record.result.headline_metrics().items()
                for metric, value in entry.items()
            ],
        )
        connection.execute(
            "UPDATE points SET status = 'done', error = NULL, elapsed_s = ?, "
            "completed_at = ?, lease_owner = NULL, lease_expires_at = NULL, "
            "phases_json = ? "
            "WHERE campaign_id = ? AND config_hash = ?",
            (record.elapsed_s, _now(), phases_json, campaign_id, point.config_hash),
        )

    def record_chunk(
        self, campaign_id: str, records: Sequence[PointRecord]
    ) -> None:
        """Persist a whole chunk of outcomes in one transaction.

        All-or-nothing durability: a ``KeyboardInterrupt`` (or any other
        failure) while the chunk is being written rolls every row back, so
        an interrupted run never leaves a half-persisted chunk — the
        affected points simply stay ``pending`` and re-run on resume.
        Successful records also clear the points' leases.
        """
        if not records:
            return
        with self.transaction() as connection:
            for record in records:
                self._persist_record(connection, campaign_id, record)

    def record_result(
        self,
        campaign_id: str,
        point: CampaignPoint,
        result: ScenarioResult,
        elapsed_s: float,
    ) -> None:
        """Persist one successful point: result row, metrics, point status."""
        self.record_chunk(
            campaign_id,
            [PointRecord(point=point, result=result, elapsed_s=elapsed_s)],
        )

    def record_failure(
        self, campaign_id: str, point: CampaignPoint, error: str, elapsed_s: float
    ) -> None:
        """Persist one failed point (status ``error`` plus the traceback)."""
        self.record_chunk(
            campaign_id,
            [PointRecord(point=point, error=error, elapsed_s=elapsed_s)],
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def campaigns(self) -> List[Dict[str, Any]]:
        """Every stored campaign with its status counts, oldest first."""
        rows = self._connection.execute(
            "SELECT c.campaign_id, c.name, c.num_points, c.created_at, "
            "SUM(p.status = 'done') AS done, SUM(p.status = 'error') AS errors, "
            "SUM(p.status = 'pending') AS pending "
            "FROM campaigns c LEFT JOIN points p USING (campaign_id) "
            "GROUP BY c.campaign_id ORDER BY c.created_at, c.campaign_id"
        )
        return [dict(row) for row in rows]

    def find_campaign(self, selector: Optional[str] = None) -> Dict[str, Any]:
        """Resolve a campaign by name, full id or id prefix.

        With no selector the store must hold exactly one campaign.

        Raises:
            ConfigurationError: On no match, an ambiguous match, or an
                empty store.
        """
        campaigns = self.campaigns()
        if not campaigns:
            raise ConfigurationError(f"campaign store {self.path} holds no campaigns")
        if selector is None:
            if len(campaigns) == 1:
                return campaigns[0]
            names = ", ".join(
                f"{row['name']} ({row['campaign_id'][:12]})" for row in campaigns
            )
            raise ConfigurationError(
                f"campaign store holds {len(campaigns)} campaigns — select one "
                f"by name or id: {names}"
            )
        matches = [
            row
            for row in campaigns
            if row["name"] == selector or row["campaign_id"].startswith(selector)
        ]
        if len(matches) == 1:
            return matches[0]
        names = ", ".join(
            f"{row['name']} ({row['campaign_id'][:12]})" for row in campaigns
        )
        if not matches:
            raise ConfigurationError(
                f"no campaign matches {selector!r}; stored campaigns: {names}"
            )
        raise ConfigurationError(
            f"{selector!r} is ambiguous; stored campaigns: {names}"
        )

    #: The point statuses a :meth:`points` filter may name.
    POINT_STATUSES = ("pending", "done", "error")

    def points(
        self,
        campaign_id: str,
        status: Optional[str] = None,
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> List[Dict[str, Any]]:
        """Point rows of a campaign, in grid order (axes decoded).

        Filtering and pagination happen SQL-side, so consumers serving a
        slice of a huge grid (the service's points endpoint) never
        materialise every row.

        Args:
            campaign_id: The campaign to list.
            status: Only rows with this status (``pending``/``done``/
                ``error``); ``None`` returns every status.
            limit: At most this many rows (``None`` = no bound).
            offset: Skip this many rows (after the status filter, in grid
                order) — the pagination cursor.

        Raises:
            ConfigurationError: On an unknown status or a negative
                limit/offset.
        """
        if status is not None and status not in self.POINT_STATUSES:
            raise ConfigurationError(
                f"unknown point status {status!r}; expected one of "
                f"{list(self.POINT_STATUSES)}"
            )
        if limit is not None and limit < 0:
            raise ConfigurationError(f"limit must be >= 0, got {limit}")
        if offset < 0:
            raise ConfigurationError(f"offset must be >= 0, got {offset}")
        query = "SELECT * FROM points WHERE campaign_id = ?"
        params: List[Any] = [campaign_id]
        if status is not None:
            query += " AND status = ?"
            params.append(status)
        query += " ORDER BY point_index"
        if limit is not None or offset:
            # SQLite requires LIMIT before OFFSET; -1 means unbounded.
            query += " LIMIT ? OFFSET ?"
            params.extend([-1 if limit is None else limit, offset])
        rows = self._connection.execute(query, params)
        decoded = []
        for row in rows:
            entry = dict(row)
            entry["axes"] = json.loads(entry.pop("axes_json"))
            entry["spec"] = json.loads(entry.pop("spec_json"))
            phases_json = entry.pop("phases_json", None)
            entry["phases"] = json.loads(phases_json) if phases_json else None
            decoded.append(entry)
        return decoded

    def result(self, config_hash: str) -> Optional[ScenarioResult]:
        """The stored result for a config hash, if any."""
        row = self._connection.execute(
            "SELECT result_json FROM results WHERE config_hash = ?", (config_hash,)
        ).fetchone()
        if row is None:
            return None
        return ScenarioResult.from_dict(json.loads(row["result_json"]))

    def iter_results(
        self, campaign_id: str
    ) -> Iterator[Tuple[Dict[str, Any], ScenarioResult]]:
        """``(point row, result)`` pairs for every completed point, in order."""
        rows = self._connection.execute(
            "SELECT p.*, r.result_json FROM points p "
            "JOIN results r USING (config_hash) "
            "WHERE p.campaign_id = ? AND p.status = 'done' ORDER BY p.point_index",
            (campaign_id,),
        )
        for row in rows:
            entry = dict(row)
            result_json = entry.pop("result_json")
            entry["axes"] = json.loads(entry.pop("axes_json"))
            entry["spec"] = json.loads(entry.pop("spec_json"))
            phases_json = entry.pop("phases_json", None)
            entry["phases"] = json.loads(phases_json) if phases_json else None
            yield entry, ScenarioResult.from_dict(json.loads(result_json))

    def metric_rows(self, campaign_id: str) -> List[Dict[str, Any]]:
        """One flat row per (completed point, scheme): axes + metric columns.

        The report layer's working set — every row carries the point's axis
        coordinates plus that scheme's scalar metrics, ready to filter,
        group and export.
        """
        rows = self._connection.execute(
            "SELECT p.point_index, p.name, p.config_hash, p.axes_json, "
            "m.scheme, m.metric, m.value "
            "FROM points p JOIN metrics m USING (config_hash) "
            "WHERE p.campaign_id = ? AND p.status = 'done' "
            "ORDER BY p.point_index, m.scheme, m.metric",
            (campaign_id,),
        )
        flattened: Dict[Tuple[int, str], Dict[str, Any]] = {}
        for row in rows:
            key = (row["point_index"], row["scheme"])
            entry = flattened.get(key)
            if entry is None:
                entry = {
                    "point_index": row["point_index"],
                    "point": row["name"],
                    "config_hash": row["config_hash"],
                    "scheme": row["scheme"],
                }
                entry.update(json.loads(row["axes_json"]))
                flattened[key] = entry
            entry[row["metric"]] = row["value"]
        return [flattened[key] for key in sorted(flattened)]

    def completion_stats(self, campaign_id: str) -> Dict[str, float]:
        """Throughput basis: done-point count and their summed wall-clock.

        ``campaign-status`` derives ``points_per_second`` and an ETA from
        these two numbers; both are zero for a campaign with no completed
        points yet.
        """
        row = self._connection.execute(
            "SELECT COUNT(*) AS done, COALESCE(SUM(elapsed_s), 0.0) AS elapsed "
            "FROM points WHERE campaign_id = ? AND status = 'done'",
            (campaign_id,),
        ).fetchone()
        return {"done": int(row["done"]), "elapsed_s": float(row["elapsed"])}

    def phase_totals(self, campaign_id: str) -> Dict[str, Any]:
        """Aggregate stored ``--profile`` phase timings across done points.

        Returns ``{"points": N, "totals": {phase: seconds}}`` summed over
        every completed point that carries a phase breakdown.  Empty when
        the campaign was drained without ``--profile`` (or the store
        predates the column).
        """
        try:
            rows = self._connection.execute(
                "SELECT phases_json FROM points "
                "WHERE campaign_id = ? AND status = 'done' "
                "AND phases_json IS NOT NULL",
                (campaign_id,),
            ).fetchall()
        except sqlite3.OperationalError:
            # A read-only view of an unmigrated store has no phases column.
            return {"points": 0, "totals": {}}
        totals: Dict[str, float] = {}
        for row in rows:
            for phase, seconds in json.loads(row["phases_json"]).items():
                totals[phase] = totals.get(phase, 0.0) + float(seconds)
        return {"points": len(rows), "totals": totals}

    def metric_names(self, campaign_id: str) -> List[str]:
        """Every metric recorded for a campaign (for input validation)."""
        rows = self._connection.execute(
            "SELECT DISTINCT m.metric FROM points p JOIN metrics m "
            "USING (config_hash) WHERE p.campaign_id = ? ORDER BY m.metric",
            (campaign_id,),
        )
        return [row["metric"] for row in rows]

    def canonical_dump(self, campaign_id: str) -> Dict[str, Any]:
        """A deterministic view of a campaign's stored state.

        Strips every wall-clock field (point timings, timestamps, leases,
        the per-step compute series inside results) so that an interrupted-
        and-resumed campaign — or one drained by N concurrent workers —
        compares bit-for-bit equal to an uninterrupted serial run.
        """
        campaign = self._connection.execute(
            "SELECT campaign_id, name, spec_json, num_points FROM campaigns "
            "WHERE campaign_id = ?",
            (campaign_id,),
        ).fetchone()
        if campaign is None:
            raise ConfigurationError(f"campaign {campaign_id!r} is not in the store")
        points = self._connection.execute(
            "SELECT config_hash, point_index, name, axes_json, spec_json, "
            "status, error FROM points WHERE campaign_id = ? ORDER BY point_index",
            (campaign_id,),
        ).fetchall()
        result_rows = self._connection.execute(
            "SELECT p.config_hash, r.result_json FROM points p "
            "JOIN results r USING (config_hash) WHERE p.campaign_id = ?",
            (campaign_id,),
        )
        results: Dict[str, Any] = {
            row["config_hash"]: canonical_result_dict(json.loads(row["result_json"]))
            for row in result_rows
        }
        return {
            "campaign": dict(campaign),
            "points": [dict(row) for row in points],
            "results": results,
        }


__all__ = [
    "DEFAULT_BUSY_TIMEOUT_S",
    "STORE_SCHEMA_VERSION",
    "CampaignStore",
    "PointRecord",
    "canonical_result_dict",
]
